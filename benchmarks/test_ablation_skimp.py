"""Ablation (extension) — VALMOD vs. a SKIMP-style pan matrix profile.

Both approaches answer "what are the motifs of every length in the range?"
exactly; the pan profile pays the full per-length matrix-profile cost while
VALMOD prunes it with its lower bound.  The benchmark confirms (a) the two
agree on the best pair of every length and (b) VALMOD is faster on a dense
range — the very work the lower bound is designed to remove.

Both sides run on the ``"oracle"`` sweep kernel: the ablation measures
*algorithmic* pruning at equal per-distance cost, and the fast kernels
shrink exactly the dense per-length sweeps the lower bound avoids (on the
native kernel SKIMP's brute re-computation can outrun VALMOD's python-side
per-length evaluation, which says something about kernel throughput — see
``BENCH_engine_scaling.json`` — not about the pruning).
"""

from __future__ import annotations

import pytest

from repro.core.skimp import skimp
from repro.core.valmod import valmod

SERIES_LENGTH = 2048
MIN_LENGTH = 64
RANGE_WIDTH = 16

_RESULTS: dict[str, object] = {}


def test_skimp_pan_profile(benchmark, workload_cache):
    benchmark.group = "ablation: VALMOD vs SKIMP pan profile (ecg)"
    series = workload_cache("ecg", SERIES_LENGTH)
    pan = benchmark.pedantic(
        skimp,
        args=(series, MIN_LENGTH, MIN_LENGTH + RANGE_WIDTH - 1),
        kwargs={"kernel": "oracle"},
        rounds=1,
        iterations=1,
    )
    _RESULTS["skimp"] = (pan.elapsed_seconds, pan)
    benchmark.extra_info.update(
        {"algorithm": "skimp", "lengths_evaluated": len(pan), "range_width": RANGE_WIDTH}
    )


def test_valmod_same_range(benchmark, workload_cache):
    benchmark.group = "ablation: VALMOD vs SKIMP pan profile (ecg)"
    series = workload_cache("ecg", SERIES_LENGTH)
    result = benchmark.pedantic(
        valmod,
        args=(series, MIN_LENGTH, MIN_LENGTH + RANGE_WIDTH - 1),
        kwargs={"top_k": 1, "kernel": "oracle"},
        rounds=1,
        iterations=1,
    )
    _RESULTS["valmod"] = (result.elapsed_seconds, result)
    benchmark.extra_info.update(
        {"algorithm": "valmod", "range_width": RANGE_WIDTH, **result.pruning_summary()}
    )

    skimp_entry = _RESULTS.get("skimp")
    if skimp_entry is not None:
        skimp_seconds, pan = skimp_entry
        valmod_seconds = _RESULTS["valmod"][0]
        # Exactness: best pair per length agrees between the two approaches.
        for length in range(MIN_LENGTH, MIN_LENGTH + RANGE_WIDTH):
            assert pan.best_pair_at(length).distance == pytest.approx(
                result.length_results[length].best.distance, abs=1e-6
            )
        # Performance: the lower-bound pruning must beat the dense re-computation.
        assert valmod_seconds < skimp_seconds
