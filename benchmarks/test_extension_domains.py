"""Extension benchmark — variable-length discovery on the additional domains.

The paper's introduction motivates motif discovery with robotics, entomology,
seismology, medicine and climatology; the evaluation itself only shows ECG and
ASTRO.  This benchmark runs VALMOD on the synthetic stand-ins for the extra
domains (climatology, robot gait, respiration) with a range centred on each
domain's nominal event length, and records whether the best variable-length
motif lands on a ground-truth event.
"""

from __future__ import annotations

import pytest

from repro.harness.extensions import extension_domains_table

SERIES_LENGTH = 2048


@pytest.mark.parametrize("workload", ["climate", "gait", "respiration"])
def test_extension_domain_discovery(benchmark, workload):
    benchmark.group = "extension: additional application domains"
    rows = benchmark.pedantic(
        extension_domains_table,
        kwargs={"series_length": SERIES_LENGTH, "random_state": 0, "workloads": (workload,)},
        rounds=1,
        iterations=1,
    )
    row = rows[0]
    benchmark.extra_info.update(
        {
            "workload": workload,
            "nominal_event_length": row["nominal_event_length"],
            "best_motif_length": row["best_motif_length"],
            "normalized_distance": row["normalized_distance"],
            "onset_error_points": row["onset_error_points"],
        }
    )
    low, high = row["length_range"]
    assert low <= row["best_motif_length"] <= high
    # The length-normalised distance of z-normalised subsequences is bounded
    # by sqrt(2); a structured workload must produce a clearly better match.
    assert 0.0 <= row["normalized_distance"] < 1.0
    # The onset error w.r.t. the nearest ground-truth event is reported as
    # data (extra_info); it is only asserted for the workloads whose dominant
    # repeated structure *is* the annotated event (the respiration stand-in's
    # dominant motif is the breathing cycle, which occurs everywhere, and the
    # climate stand-in also contains strong diurnal repetition).
    if workload == "gait":
        assert row["onset_error_points"] <= row["nominal_event_length"]
