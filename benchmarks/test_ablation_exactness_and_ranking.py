"""Ablation B — exactness & speed-up vs. brute force; ranking normalisation demo.

Two small studies motivated in DESIGN.md:

* **Exactness/speed-up**: on a planted-motif workload, VALMOD's per-length
  motif distances must be identical to the brute-force oracle while being
  substantially faster.
* **Ranking**: with a short noisy motif and a long clean motif planted in the
  same series, the length-normalised ranking promotes the longer pattern —
  the behaviour the paper's length-normalised distance is designed for.
"""

from __future__ import annotations

from repro.harness.figures import ablation_exactness, ranking_normalization_table


def test_ablation_exactness_vs_brute_force(benchmark):
    benchmark.group = "ablation B (exactness)"
    row = benchmark.pedantic(
        ablation_exactness,
        kwargs={"series_length": 1024, "min_length": 24, "range_width": 12, "random_state": 0},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "lengths_compared": row["lengths_compared"],
            "mismatches": row["mismatches"],
            "speedup_vs_brute_force": round(row["speedup"], 1),
        }
    )
    assert row["mismatches"] == 0
    assert row["speedup"] > 1.0


def test_ranking_normalization_prefers_longer_motifs(benchmark):
    benchmark.group = "ranking (length-normalised distance)"
    row = benchmark.pedantic(
        ranking_normalization_table,
        kwargs={
            "series_length": 2048,
            "short_length": 32,
            "long_length": 96,
            "random_state": 0,
        },
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "best_raw_length": row["best_raw_length"],
            "best_normalized_length": row["best_normalized_length"],
        }
    )
    # raw Euclidean distances favour short windows; the normalised ranking
    # must rank the longer planted pattern at least as high
    assert row["best_normalized_length"] >= row["best_raw_length"]
