"""Serial-vs-parallel and kernel scaling of the STOMP computations.

Times one full STOMP profile at n ∈ {2048, 8192, 32768} through the plain
serial sweep (pinned to the ``"oracle"`` kernel — the frozen per-row
reference the fast kernels are measured against), through the engine's
:class:`ParallelExecutor`, and through the fast sweep kernels
(``"numpy"`` row-block, compiled ``"native"`` when buildable), plus
VALMOD's base-pass ingest (STOMP + block-local
:class:`~repro.core.partial_profile.PartialProfileStore` fragments merged
back — the path the mergeable-store refactor parallelised), and records
the wall-clock numbers (plus the derived speedups) into
``BENCH_engine_scaling.json`` at the repository root, so the speedup
trajectory is tracked from this PR onwards.

On a single-core machine the parallel numbers measure pure overhead —
every parallel speedup assertion is therefore gated on the *effective*
core count (scheduler affinity, not ``os.cpu_count()``, which ignores
cgroup and affinity limits); single-core runs still check exactness.
The kernel speedups are same-process single-thread ratios and are
asserted regardless of core count (advisory warnings by default,
enforced under ``ENGINE_SPEEDUP_STRICT=1``); every skipped gate says so
loudly with a warning, so a green run that didn't check anything is
visible in the log.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.partial_profile import PartialProfileStore
from repro.engine import ParallelExecutor, partitioned_stomp
from repro.generators import generate_random_walk
from repro.matrix_profile.kernels import available_kernels
from repro.matrix_profile.stomp import stomp
from repro.stats.sliding import SlidingStats

SIZES = (2048, 8192, 32768)
WINDOW = 128
VALMOD_INGEST_SIZE = 8192
VALMOD_CAPACITY = 16
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_scaling.json"

#: Sweep kernels timed against the oracle baseline.
FAST_KERNELS = tuple(
    name for name in ("numpy", "native") if name in available_kernels()
)

#: Wall-clock seconds per (size, mode), filled by the timing tests and
#: flushed to RESULT_PATH once complete.
_TIMINGS: dict[int, dict[str, float]] = {}

#: Wall-clock seconds of the VALMOD base-pass ingest case, same shape.
_VALMOD_TIMINGS: dict[str, float] = {}

#: Oracle-kernel profiles stashed by the serial runs so the kernel runs
#: can assert bit-for-bit equality on the benchmark workload itself.
_SERIAL_PROFILES: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _loud_skip(reason: str) -> None:
    """Skip a gate, but leave a warning in the log — a skipped speedup
    assertion must never masquerade as a checked one."""
    import warnings

    warnings.warn(f"speedup gate skipped: {reason}")
    pytest.skip(reason)


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _series(n: int) -> np.ndarray:
    return np.array(generate_random_walk(n, random_state=0).values)


def _flush_results() -> None:
    # Merge with whatever a previous (possibly partial / deselected) run
    # recorded: a `-k valmod` run must not clobber the sizes trajectory,
    # and the sizes flush must not erase an earlier ingest section.
    existing: dict = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    sizes = dict(existing.get("sizes", {}))
    for n, times in sorted(_TIMINGS.items()):
        merged = {**sizes.get(str(n), {}), **times}
        serial = merged.get("serial_seconds")
        merged["speedup"] = (
            serial / merged["parallel_seconds"]
            if serial and merged.get("parallel_seconds")
            else None
        )
        for kernel in ("numpy", "native"):
            seconds = merged.get(f"{kernel}_kernel_seconds")
            if serial and seconds:
                merged[f"{kernel}_kernel_speedup"] = serial / seconds
        sizes[str(n)] = merged
    payload = {
        "window": WINDOW,
        "effective_cores": _effective_cores(),
        "cpu_count": os.cpu_count(),
        "n_jobs": _n_jobs(),
        "serial_kernel": "oracle",
        "sizes": sizes,
    }
    if _VALMOD_TIMINGS:
        payload["valmod_base_pass_ingest"] = {
            "n": VALMOD_INGEST_SIZE,
            "capacity": VALMOD_CAPACITY,
            **_VALMOD_TIMINGS,
            "speedup": (
                _VALMOD_TIMINGS["serial_seconds"] / _VALMOD_TIMINGS["parallel_seconds"]
                if _VALMOD_TIMINGS.get("parallel_seconds")
                else None
            ),
        }
    elif "valmod_base_pass_ingest" in existing:
        payload["valmod_base_pass_ingest"] = existing["valmod_base_pass_ingest"]
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _n_jobs() -> int:
    return max(2, min(4, _effective_cores()))


@pytest.mark.parametrize("n", SIZES)
def test_scaling_serial(benchmark, n):
    """The serial baseline, pinned to the oracle kernel.

    Without the pin, ``stomp``'s default would auto-resolve to the fast
    kernels this file measures — the baseline must stay the historical
    per-row sweep.
    """
    benchmark.group = f"engine scaling n={n}"
    values = _series(n)
    started = time.perf_counter()
    profile = benchmark.pedantic(
        stomp, args=(values, WINDOW), kwargs={"kernel": "oracle"}, rounds=1, iterations=1
    )
    _TIMINGS.setdefault(n, {})["serial_seconds"] = time.perf_counter() - started
    _SERIAL_PROFILES[n] = (profile.distances, profile.indices)


@pytest.mark.parametrize("kernel", FAST_KERNELS)
@pytest.mark.parametrize("n", SIZES)
def test_scaling_kernels(benchmark, n, kernel):
    """The fast sweep kernels on the same workload, bit-checked against
    the oracle baseline of :func:`test_scaling_serial`."""
    benchmark.group = f"engine scaling n={n}"
    values = _series(n)
    started = time.perf_counter()
    profile = benchmark.pedantic(
        stomp, args=(values, WINDOW), kwargs={"kernel": kernel}, rounds=1, iterations=1
    )
    _TIMINGS.setdefault(n, {})[f"{kernel}_kernel_seconds"] = (
        time.perf_counter() - started
    )
    if n in _SERIAL_PROFILES:
        distances, indices = _SERIAL_PROFILES[n]
        np.testing.assert_array_equal(profile.distances, distances)
        np.testing.assert_array_equal(profile.indices, indices)
    if n == SIZES[-1] and kernel == FAST_KERNELS[-1]:
        _flush_results()


@pytest.mark.parametrize("n", SIZES)
def test_scaling_parallel(benchmark, n):
    benchmark.group = f"engine scaling n={n}"
    values = _series(n)
    with ParallelExecutor(n_jobs=_n_jobs()) as executor:
        started = time.perf_counter()
        benchmark.pedantic(
            partitioned_stomp,
            args=(values, WINDOW),
            kwargs={"executor": executor},
            rounds=1,
            iterations=1,
        )
        _TIMINGS.setdefault(n, {})["parallel_seconds"] = time.perf_counter() - started
    if len(_TIMINGS) == len(SIZES) and all(
        {"serial_seconds", "parallel_seconds"} <= set(times)
        for times in _TIMINGS.values()
    ):
        _flush_results()


def _base_pass_serial(values):
    stats = SlidingStats(values)
    store = PartialProfileStore(values, stats, WINDOW, VALMOD_CAPACITY)
    stomp(values, WINDOW, stats=stats, ingest_store=store)
    return store


def _base_pass_parallel(values, executor):
    stats = SlidingStats(values)
    store = PartialProfileStore(values, stats, WINDOW, VALMOD_CAPACITY)
    partitioned_stomp(
        values, WINDOW, stats=stats, executor=executor, ingest_store=store
    )
    return store


def test_scaling_valmod_base_pass_ingest(benchmark):
    """VALMOD's dominant cost — the base STOMP pass that seeds the
    partial-profile store — through the serial sweep and through
    block-local fragment ingest on the process pool (shared-memory series
    transport when available).  Exactness of the merged store is asserted
    unconditionally; wall-clock lands in ``BENCH_engine_scaling.json``.
    """
    benchmark.group = "valmod base-pass ingest"
    values = _series(VALMOD_INGEST_SIZE)

    started = time.perf_counter()
    serial_store = _base_pass_serial(values)
    _VALMOD_TIMINGS["serial_seconds"] = time.perf_counter() - started

    with ParallelExecutor(n_jobs=_n_jobs()) as executor:
        started = time.perf_counter()
        parallel_store = benchmark.pedantic(
            _base_pass_parallel, args=(values, executor), rounds=1, iterations=1
        )
        _VALMOD_TIMINGS["parallel_seconds"] = time.perf_counter() - started

    # Single-core runs check exactness only: the merged per-block store must
    # agree with the serial sweep's store — pairs identical, distances
    # within the library's standard 1e-8 (the monolithic chain and the
    # block-seeded chains accumulate different ~1e-11 recurrence drift at
    # this size; identical-plan merges are bit-for-bit, pinned in
    # tests/test_partial_profile_merge.py).
    length = WINDOW + 8
    eval_serial = serial_store.evaluate(length)
    eval_parallel = parallel_store.evaluate(length)
    np.testing.assert_array_equal(eval_serial.min_indices, eval_parallel.min_indices)
    finite = np.isfinite(eval_serial.min_distances)
    np.testing.assert_allclose(
        eval_serial.min_distances[finite],
        eval_parallel.min_distances[finite],
        atol=1e-8,
        rtol=0,
    )
    _flush_results()


def test_valmod_ingest_speedup_on_multicore():
    """Speedup gate for the base-pass ingest — skipped below 2 effective
    cores (single-core tier-1 runs only check exactness above); advisory
    unless ``ENGINE_SPEEDUP_STRICT=1``."""
    if not {"serial_seconds", "parallel_seconds"} <= set(_VALMOD_TIMINGS):
        _loud_skip("ingest timing test did not run (deselected)")
    if _effective_cores() < 2:
        _loud_skip(f"needs 2+ effective cores, have {_effective_cores()}")
    speedup = _VALMOD_TIMINGS["serial_seconds"] / _VALMOD_TIMINGS["parallel_seconds"]
    message = f"valmod ingest speedup {speedup:.2f}x below the 1.2x floor"
    if os.environ.get("ENGINE_SPEEDUP_STRICT") == "1":
        assert speedup >= 1.2, message
    elif speedup < 1.2:
        import warnings

        warnings.warn(message + " (set ENGINE_SPEEDUP_STRICT=1 to enforce)")


def test_parallel_speedup_on_multicore():
    """Acceptance gate: ≥1.3× at n=32768 — only meaningful on 2+ cores.

    Wall-clock assertions are inherently nondeterministic on shared or
    throttled machines, so by default this records the speedup (and
    warns when it is below the floor) without failing the build; set
    ``ENGINE_SPEEDUP_STRICT=1`` to enforce the 1.3× floor, e.g. on a
    quiet multi-core box when checking the acceptance criterion.
    """
    largest = _TIMINGS.get(SIZES[-1], {})
    if not {"serial_seconds", "parallel_seconds"} <= set(largest):
        _loud_skip("timing tests did not run (deselected)")
    if _effective_cores() < 2:
        _loud_skip(f"needs 2+ effective cores, have {_effective_cores()}")
    speedup = largest["serial_seconds"] / largest["parallel_seconds"]
    message = f"parallel speedup {speedup:.2f}x below the 1.3x floor"
    if os.environ.get("ENGINE_SPEEDUP_STRICT") == "1":
        assert speedup >= 1.3, message
    elif speedup < 1.3:
        import warnings

        warnings.warn(message + " (set ENGINE_SPEEDUP_STRICT=1 to enforce)")


#: Acceptance floors for the fast kernels at the largest size: the numpy
#: row-block kernel must be ≥8x over the oracle baseline, the compiled
#: kernel an order of magnitude.
_KERNEL_FLOORS = {"numpy": 8.0, "native": 10.0}


@pytest.mark.parametrize("kernel", ("numpy", "native"))
def test_kernel_speedup_floor(kernel):
    """Acceptance gate: kernel speedups at n=32768 over the oracle sweep.

    Same-process single-thread wall-clock ratios, so no core gate; still
    advisory by default (``ENGINE_SPEEDUP_STRICT=1`` enforces) because the
    baseline and the kernel run are separate timings on possibly noisy
    machines.  A missing native build skips loudly.
    """
    if kernel not in FAST_KERNELS:
        _loud_skip(f"{kernel} kernel unavailable (no C compiler or disabled)")
    largest = _TIMINGS.get(SIZES[-1], {})
    needed = {"serial_seconds", f"{kernel}_kernel_seconds"}
    if not needed <= set(largest):
        _loud_skip("timing tests did not run (deselected)")
    floor = _KERNEL_FLOORS[kernel]
    speedup = largest["serial_seconds"] / largest[f"{kernel}_kernel_seconds"]
    message = f"{kernel} kernel speedup {speedup:.2f}x below the {floor:g}x floor"
    if os.environ.get("ENGINE_SPEEDUP_STRICT") == "1":
        assert speedup >= floor, message
    elif speedup < floor:
        import warnings

        warnings.warn(message + " (set ENGINE_SPEEDUP_STRICT=1 to enforce)")
