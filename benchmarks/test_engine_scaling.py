"""Serial-vs-parallel scaling of the block-partitioned engine.

Times one full STOMP profile at n ∈ {2048, 8192, 32768} through the plain
serial sweep and through the engine's :class:`ParallelExecutor`, and
records the wall-clock pairs (plus the derived speedups) into
``BENCH_engine_scaling.json`` at the repository root, so the speedup
trajectory is tracked from this PR onwards.

On a single-core machine the parallel numbers measure pure overhead —
the speedup assertion is therefore gated on the *effective* core count
(scheduler affinity, not ``os.cpu_count()``, which ignores cgroup and
affinity limits).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.engine import ParallelExecutor, partitioned_stomp
from repro.generators import generate_random_walk
from repro.matrix_profile.stomp import stomp

SIZES = (2048, 8192, 32768)
WINDOW = 128
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine_scaling.json"

#: Wall-clock seconds per (size, mode), filled by the timing tests and
#: flushed to RESULT_PATH once complete.
_TIMINGS: dict[int, dict[str, float]] = {}


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _series(n: int) -> np.ndarray:
    return np.array(generate_random_walk(n, random_state=0).values)


def _flush_results() -> None:
    payload = {
        "window": WINDOW,
        "effective_cores": _effective_cores(),
        "cpu_count": os.cpu_count(),
        "n_jobs": _n_jobs(),
        "sizes": {
            str(n): {
                **times,
                "speedup": (
                    times["serial_seconds"] / times["parallel_seconds"]
                    if times.get("parallel_seconds")
                    else None
                ),
            }
            for n, times in sorted(_TIMINGS.items())
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _n_jobs() -> int:
    return max(2, min(4, _effective_cores()))


@pytest.mark.parametrize("n", SIZES)
def test_scaling_serial(benchmark, n):
    benchmark.group = f"engine scaling n={n}"
    values = _series(n)
    started = time.perf_counter()
    benchmark.pedantic(stomp, args=(values, WINDOW), rounds=1, iterations=1)
    _TIMINGS.setdefault(n, {})["serial_seconds"] = time.perf_counter() - started


@pytest.mark.parametrize("n", SIZES)
def test_scaling_parallel(benchmark, n):
    benchmark.group = f"engine scaling n={n}"
    values = _series(n)
    with ParallelExecutor(n_jobs=_n_jobs()) as executor:
        started = time.perf_counter()
        benchmark.pedantic(
            partitioned_stomp,
            args=(values, WINDOW),
            kwargs={"executor": executor},
            rounds=1,
            iterations=1,
        )
        _TIMINGS.setdefault(n, {})["parallel_seconds"] = time.perf_counter() - started
    if len(_TIMINGS) == len(SIZES) and all(
        {"serial_seconds", "parallel_seconds"} <= set(times)
        for times in _TIMINGS.values()
    ):
        _flush_results()


def test_parallel_speedup_on_multicore():
    """Acceptance gate: ≥1.3× at n=32768 — only meaningful on 2+ cores.

    Wall-clock assertions are inherently nondeterministic on shared or
    throttled machines, so by default this records the speedup (and
    warns when it is below the floor) without failing the build; set
    ``ENGINE_SPEEDUP_STRICT=1`` to enforce the 1.3× floor, e.g. on a
    quiet multi-core box when checking the acceptance criterion.
    """
    largest = _TIMINGS.get(SIZES[-1], {})
    if not {"serial_seconds", "parallel_seconds"} <= set(largest):
        pytest.skip("timing tests did not run (deselected)")
    if _effective_cores() < 2:
        pytest.skip(f"needs 2+ effective cores, have {_effective_cores()}")
    speedup = largest["serial_seconds"] / largest["parallel_seconds"]
    message = f"parallel speedup {speedup:.2f}x below the 1.3x floor"
    if os.environ.get("ENGINE_SPEEDUP_STRICT") == "1":
        assert speedup >= 1.3, message
    elif speedup < 1.3:
        import warnings

        warnings.warn(message + " (set ENGINE_SPEEDUP_STRICT=1 to enforce)")
