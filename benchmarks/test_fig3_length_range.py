"""Figure 3 (top) — runtime vs. motif length-range width, on ECG and ASTRO.

The paper's headline performance result: as the range of lengths widens,
VALMOD's runtime stays nearly flat while re-running STOMP or QUICKMOTIF per
length, or running MOEN, grows steeply (in the paper some competitors exceed
the 24-hour timeout).  The benchmark reproduces the comparison at laptop
scale: one benchmark entry per (workload, algorithm, range width); the
pytest-benchmark table grouped by workload *is* the figure.

The STOMP-backed algorithms run on the ``"oracle"`` sweep kernel: the
figure is about *algorithmic* growth with the range width at equal
per-distance cost, and the fast kernels of
:mod:`repro.matrix_profile.kernels` shrink exactly the per-length re-run
sweeps the figure measures (kernel throughput has its own benchmark,
``test_engine_scaling.py``).
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_algorithm

SERIES_LENGTH = 2048
BASE_LENGTH = 64
RANGE_WIDTHS = (8, 16, 32)
ALGORITHMS = ("valmod", "stomp-range", "moen", "quickmotif")
#: Competitors that, like in the paper, are adapted by re-running a
#: fixed-length algorithm once per length of the range.  The paper's headline
#: claim (near-flat growth of VALMOD vs. steep growth of the re-run
#: approaches) is asserted against these; MOEN is measured and reported but
#: not asserted against, because at laptop scale its vectorised inner loop
#: behaves better than the original does at the paper's 0.5M-point scale
#: (see EXPERIMENTS.md, Figure 3 discussion).
PER_LENGTH_RERUN = ("stomp-range", "quickmotif")

#: shared across parametrised runs so the widest-range case can assert the
#: paper's qualitative claim (VALMOD fastest by a widening margin).
_RESULTS: dict[tuple[str, str, int], float] = {}


@pytest.mark.parametrize("workload", ["ecg", "astro"])
@pytest.mark.parametrize("width", RANGE_WIDTHS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig3_top_time_vs_range_width(benchmark, workload_cache, workload, width, algorithm):
    benchmark.group = f"figure-3 top ({workload}, time vs range width)"
    series = workload_cache(workload, SERIES_LENGTH)
    max_length = BASE_LENGTH + width - 1

    result = benchmark.pedantic(
        run_algorithm,
        args=(algorithm, series, BASE_LENGTH, max_length),
        kwargs={"top_k": 1, "kernel": "oracle"},
        rounds=1,
        iterations=1,
    )
    _RESULTS[(workload, algorithm, width)] = result.elapsed_seconds
    benchmark.extra_info.update(
        {
            "workload": workload,
            "algorithm": algorithm,
            "range_width": width,
            "best_distance": round(result.best_at(BASE_LENGTH).distance, 4),
        }
    )

    # The paper's qualitative claims, checked once every algorithm has been
    # measured on every range width for this workload:
    #   1. on the widest range VALMOD beats every per-length re-run competitor;
    #   2. VALMOD's growth from the narrowest to the widest range is flatter
    #      than that of every per-length re-run competitor.
    if width == max(RANGE_WIDTHS) and algorithm == ALGORITHMS[-1]:
        valmod_wide = _RESULTS.get((workload, "valmod", max(RANGE_WIDTHS)))
        valmod_narrow = _RESULTS.get((workload, "valmod", min(RANGE_WIDTHS)))
        rerun_wide = [_RESULTS.get((workload, name, max(RANGE_WIDTHS))) for name in PER_LENGTH_RERUN]
        rerun_narrow = [_RESULTS.get((workload, name, min(RANGE_WIDTHS))) for name in PER_LENGTH_RERUN]
        measured = (
            valmod_wide is not None
            and valmod_narrow is not None
            and all(t is not None for t in rerun_wide + rerun_narrow)
        )
        if measured:
            assert valmod_wide < min(rerun_wide), (
                f"VALMOD ({valmod_wide:.2f}s) should beat every per-length re-run "
                f"competitor on the widest range; measured: {rerun_wide}"
            )
            valmod_growth = valmod_wide - valmod_narrow
            for name, wide, narrow in zip(PER_LENGTH_RERUN, rerun_wide, rerun_narrow):
                assert valmod_growth < (wide - narrow), (
                    f"VALMOD's growth with the range width ({valmod_growth:.2f}s) "
                    f"should be flatter than {name}'s ({wide - narrow:.2f}s)"
                )
