"""Overhead of the observability layer on the hot kernel path.

The ``repro.obs`` design contract is that a *disabled* registry costs one
shared-flag check per recording call — cheap enough that the kernels can
stay instrumented unconditionally.  This benchmark holds that contract on
a 16k-point STOMP:

* **analytic gate (strict)** — count the instrumentation calls one STOMP
  actually makes (the ``kernel.sweeps`` counter ticks once per
  ``_record_sweep``, and each ``_record_sweep`` issues a fixed number of
  recording calls), measure the per-call cost of a disabled registry in
  isolation, and require ``calls x cost < 2%`` of the disabled-run wall
  time;
* **wall-clock A/B (advisory)** — time the same STOMP with metrics
  enabled and disabled and warn (never fail — wall clocks on shared CI
  are noisy) if the enabled run is more than 10% slower.

Results land in ``BENCH_obs_overhead.json`` at the repository root.
"""

from __future__ import annotations

import json
import time
import warnings
from pathlib import Path

import numpy as np

from repro import obs
from repro.generators import generate_random_walk
from repro.matrix_profile.stomp import stomp

SERIES_LENGTH = 16384
WINDOW = 256
#: Recording calls per ``_record_sweep``: histogram observe, two counter
#: incs, one gauge set, one ``record_span`` (see kernels._record_sweep) —
#: padded by one as margin against future instrumentation.
CALLS_PER_SWEEP = 6
OVERHEAD_BUDGET = 0.02
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"


def _disabled_call_cost(calls: int = 200_000) -> float:
    """Seconds per recording call against a disabled registry."""
    registry = obs.MetricsRegistry(enabled=False)
    counter = registry.counter("bench.calls")
    histogram = registry.histogram("bench.seconds")
    gauge = registry.gauge("bench.rate")
    rounds = calls // 3
    started = time.perf_counter()
    for _ in range(rounds):
        counter.inc()
        histogram.observe(1e-3)
        gauge.set(1.0)
    return (time.perf_counter() - started) / (rounds * 3)


def _timed_stomp(values: np.ndarray) -> float:
    started = time.perf_counter()
    stomp(values, WINDOW)
    return time.perf_counter() - started


def test_obs_disabled_overhead_on_16k_stomp() -> None:
    values = np.array(
        generate_random_walk(SERIES_LENGTH, random_state=0).values
    )
    was_enabled = obs.metrics_enabled()
    try:
        # Untimed warm-up: FFT plans, allocator pools, import-time lazies.
        obs.set_metrics_enabled(False)
        _timed_stomp(values)

        # Enabled run: how many instrumented sweeps does one STOMP issue?
        obs.set_metrics_enabled(True)
        before = obs.snapshot()
        enabled_seconds = _timed_stomp(values)
        delta = obs.snapshot_delta(obs.snapshot(), before)
        sweeps = int(delta["counters"].get("kernel.sweeps", 0))
        assert sweeps > 0, "the STOMP run recorded no kernel sweeps"

        obs.set_metrics_enabled(False)
        disabled_seconds = _timed_stomp(values)
    finally:
        obs.set_metrics_enabled(was_enabled)

    per_call = _disabled_call_cost()
    instrumented_calls = sweeps * CALLS_PER_SWEEP
    analytic_overhead = (instrumented_calls * per_call) / max(
        disabled_seconds, 1e-9
    )
    wallclock_overhead = enabled_seconds / max(disabled_seconds, 1e-9) - 1.0

    payload = {
        "series_length": SERIES_LENGTH,
        "window": WINDOW,
        "sweeps": sweeps,
        "calls_per_sweep": CALLS_PER_SWEEP,
        "disabled_call_seconds": per_call,
        "enabled_seconds": enabled_seconds,
        "disabled_seconds": disabled_seconds,
        "analytic_overhead": analytic_overhead,
        "wallclock_overhead": wallclock_overhead,
        "budget": OVERHEAD_BUDGET,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert analytic_overhead < OVERHEAD_BUDGET, (
        f"disabled-path instrumentation cost {analytic_overhead:.4%} of a "
        f"{SERIES_LENGTH}-point STOMP (budget {OVERHEAD_BUDGET:.0%}): "
        f"{instrumented_calls} calls x {per_call:.2e}s vs "
        f"{disabled_seconds:.3f}s"
    )
    if wallclock_overhead > 0.10:  # advisory only: wall clocks are noisy
        warnings.warn(
            f"enabled-metrics wall-clock overhead {wallclock_overhead:.1%} "
            f"on a {SERIES_LENGTH}-point STOMP (advisory threshold 10%)"
        )
