"""Figure 3 (bottom) — runtime vs. series length (prefix snippets).

The paper evaluates prefixes of 0.1M-1M points with a fixed range width of
100; the scaled benchmark keeps the doubling structure (1k...8k points, width
16).  Claim to reproduce: all algorithms grow super-linearly with the series
length, and VALMOD is consistently the fastest for the whole range.
"""

from __future__ import annotations

import pytest

from repro.harness.runner import run_algorithm

BASE_LENGTH = 64
RANGE_WIDTH = 16
SERIES_LENGTHS = (512, 1024, 2048, 4096)
ALGORITHMS = ("valmod", "stomp-range", "moen", "quickmotif")
#: See test_fig3_length_range: the paper's timing claim is asserted against
#: the per-length re-run adaptations; MOEN is measured and reported only.
PER_LENGTH_RERUN = ("stomp-range", "quickmotif")

_RESULTS: dict[tuple[str, str, int], float] = {}


@pytest.mark.parametrize("workload", ["ecg", "astro"])
@pytest.mark.parametrize("series_length", SERIES_LENGTHS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig3_bottom_time_vs_series_length(
    benchmark, workload_cache, workload, series_length, algorithm
):
    benchmark.group = f"figure-3 bottom ({workload}, time vs series length)"
    series = workload_cache(workload, max(SERIES_LENGTHS)).prefix(series_length)
    max_length = BASE_LENGTH + RANGE_WIDTH - 1

    result = benchmark.pedantic(
        run_algorithm,
        args=(algorithm, series, BASE_LENGTH, max_length),
        # Oracle kernel: the figure compares algorithmic growth at equal
        # per-distance cost (see test_fig3_length_range's docstring).
        kwargs={"top_k": 1, "kernel": "oracle"},
        rounds=1,
        iterations=1,
    )
    _RESULTS[(workload, algorithm, series_length)] = result.elapsed_seconds
    benchmark.extra_info.update(
        {
            "workload": workload,
            "algorithm": algorithm,
            "series_length": series_length,
            "best_distance": round(result.best_at(BASE_LENGTH).distance, 4),
        }
    )

    # On the largest prefix, once every algorithm has run, check the paper's
    # qualitative claim: VALMOD is faster than every per-length re-run
    # adaptation (the gap widens with the series length).
    if series_length == max(SERIES_LENGTHS) and algorithm == ALGORITHMS[-1]:
        valmod_time = _RESULTS.get((workload, "valmod", series_length))
        rerun_times = [
            _RESULTS.get((workload, name, series_length)) for name in PER_LENGTH_RERUN
        ]
        if valmod_time is not None and all(t is not None for t in rerun_times):
            assert valmod_time < min(rerun_times), (
                f"VALMOD ({valmod_time:.2f}s) should beat every per-length re-run "
                f"competitor on the longest prefix; measured: {rerun_times}"
            )
