"""Cold / warm / persisted latency of the analysis service.

Measures the three regimes of one identical request through a live
localhost server and writes them to ``BENCH_service.json`` at the
repository root:

* **cold** — first submission: full HTTP round trip + profile computation;
* **warm** — repeated identical submission against the same server: the
  session's in-memory LRU cache answers;
* **persisted** — the server is torn down and a fresh one (same spill
  directory) answers the same request from the persistent cache: disk
  read + envelope parse instead of the O(n^2) computation.

The acceptance gates are single-core safe: they check the cache *source*
markers and that the cached regimes beat the cold one — cache reuse, not
parallelism.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.api.cache import CacheConfig
from repro.api.requests import AnalysisRequest
from repro.generators import generate_random_walk
from repro.service import BackgroundService, ServiceClient, ServiceConfig

SERIES_LENGTH = 4096
WINDOW = 128
WARM_REPEATS = 10
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _timed_request(client: ServiceClient, values: np.ndarray, request) -> tuple:
    started = time.perf_counter()
    _result, source = client.analyze(values, request)
    return time.perf_counter() - started, source


def test_service_latency_regimes() -> None:
    values = np.array(generate_random_walk(SERIES_LENGTH, random_state=11).values)
    request = AnalysisRequest(kind="matrix_profile", params={"window": WINDOW})

    with tempfile.TemporaryDirectory() as spill:
        config = ServiceConfig(
            port=0, workers=1, cache=CacheConfig(persist_dir=spill)
        )
        with BackgroundService(config) as background:
            client = ServiceClient(port=background.port, timeout=300)
            cold_seconds, cold_source = _timed_request(client, values, request)
            warm_samples = []
            warm_sources = set()
            for _ in range(WARM_REPEATS):
                seconds, source = _timed_request(client, values, request)
                warm_samples.append(seconds)
                warm_sources.add(source)
            warm_seconds = sum(warm_samples) / len(warm_samples)

        fresh_config = ServiceConfig(
            port=0, workers=1, cache=CacheConfig(persist_dir=spill)
        )
        with BackgroundService(fresh_config) as background:
            client = ServiceClient(port=background.port, timeout=300)
            persisted_seconds, persisted_source = _timed_request(
                client, values, request
            )

    assert cold_source == "computed"
    assert warm_sources == {"memory"}
    assert persisted_source == "persistent"
    # Single-core-safe gates: cached regimes must beat recomputation.
    assert warm_seconds < cold_seconds
    assert persisted_seconds < cold_seconds

    payload = {
        "series_length": SERIES_LENGTH,
        "window": WINDOW,
        "warm_repeats": WARM_REPEATS,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "persisted_seconds": persisted_seconds,
        "warm_speedup_vs_cold": cold_seconds / max(warm_seconds, 1e-9),
        "persisted_speedup_vs_cold": cold_seconds / max(persisted_seconds, 1e-9),
        "regime_sources": {
            "cold": cold_source,
            "warm": sorted(warm_sources),
            "persisted": persisted_source,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
