"""Ablation A — pruning power of the paper's lower bound vs. the tight bound.

Not a figure of the demo paper; motivated in DESIGN.md.  Both bounds keep
VALMOD exact; the ablation measures how much of the work each of them prunes
and what that does to the runtime.
"""

from __future__ import annotations

import pytest

from repro.core.valmod import valmod

SERIES_LENGTH = 4096
BASE_LENGTH = 64
RANGE_WIDTH = 32

_FRACTIONS: dict[str, float] = {}


@pytest.mark.parametrize("kind", ["paper", "tight"])
def test_ablation_lower_bound_kind(benchmark, workload_cache, kind):
    benchmark.group = "ablation A (lower bound)"
    series = workload_cache("ecg", SERIES_LENGTH)
    max_length = BASE_LENGTH + RANGE_WIDTH - 1

    result = benchmark.pedantic(
        valmod,
        args=(series, BASE_LENGTH, max_length),
        kwargs={"top_k": 1, "lower_bound_kind": kind},
        rounds=1,
        iterations=1,
    )
    summary = result.pruning_summary()
    _FRACTIONS[kind] = summary["valid_fraction"]
    benchmark.extra_info["lower_bound_kind"] = kind
    benchmark.extra_info["valid_fraction"] = round(summary["valid_fraction"], 4)
    benchmark.extra_info["recomputed_fraction"] = round(summary["recomputed_fraction"], 4)

    if len(_FRACTIONS) == 2:
        # the tight bound can only prune at least as much as the paper bound
        assert _FRACTIONS["tight"] >= _FRACTIONS["paper"] - 1e-9
