"""Cost of answering from the motif index vs recomputing.

Two regimes land in ``BENCH_index.json`` at the repository root:

* **query vs recompute** — answering ``kind=motif top=5`` from the
  catalog against producing the same answer by recomputing every profile
  in the corpus (even with every result sitting warm in the persistent
  cache, assembling a cross-series top-k without the index means
  re-running one request per indexed result);
* **backfill throughput** — walking a ~50-result persisted corpus into a
  cold catalog: results/second and rows/second.

The query path must beat recompute-from-cache deterministically — it is
a few SQLite point reads against ~50 envelope loads — so the speedup
gate asserts on every box, single-core CI included.  The flush merges
into an existing ``BENCH_index.json``, so a partial ``-k`` run never
clobbers the other section.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.api.cache import CacheConfig
from repro.api.requests import AnalysisRequest
from repro.api.session import analyze
from repro.index import MotifIndex, open_motif_index

SERIES_COUNT = 5
WINDOWS = tuple(range(32, 112, 8))  # 10 windows x 5 series = 50 results
SERIES_LENGTH = 1024
QUERY = "kind=motif top=5"
QUERY_REPEATS = 25
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_index.json"

_RESULTS: dict = {}


def _flush() -> None:
    existing: dict = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    payload = {
        **existing,
        "series_count": SERIES_COUNT,
        "windows": list(WINDOWS),
        "series_length": SERIES_LENGTH,
        **_RESULTS,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _corpus_series():
    rng = np.random.default_rng(47)
    return [
        np.cumsum(rng.standard_normal(SERIES_LENGTH)) for _ in range(SERIES_COUNT)
    ]


def _populate(root: Path, all_series) -> int:
    """Compute the 50-result corpus (persist + live-index it); returns rows."""
    cache = CacheConfig(persist_dir=root / "results")
    with open_motif_index(root) as index:
        for position, values in enumerate(all_series):
            with analyze(
                values, name=f"series-{position}", cache_config=cache, index=index
            ) as session:
                session.run_many(
                    [
                        AnalysisRequest(
                            kind="matrix_profile", algo="stomp", params={"window": w}
                        )
                        for w in WINDOWS
                    ]
                )
        return index.count()


def test_query_vs_recompute_from_cache(tmp_path) -> None:
    all_series = _corpus_series()
    rows = _populate(tmp_path, all_series)
    assert rows > 0

    # The indexed answer: repeated cross-series top-k queries.
    with open_motif_index(tmp_path) as index:
        assert index.series_count() == SERIES_COUNT  # the query ranks across all
        started = time.perf_counter()
        for _ in range(QUERY_REPEATS):
            answer = index.answer(QUERY)
        query_seconds = (time.perf_counter() - started) / QUERY_REPEATS
    assert answer["count"] == 5

    # The same answer without an index: re-run every request of the corpus
    # (all of them warm persistent-cache hits) and rank the motifs by hand.
    cache = CacheConfig(persist_dir=tmp_path / "results")
    started = time.perf_counter()
    best = []
    for values in all_series:
        with analyze(values, cache_config=cache) as session:
            for window in WINDOWS:
                result, source = session.run_with_info(
                    AnalysisRequest(
                        kind="matrix_profile", algo="stomp", params={"window": window}
                    )
                )
                assert source == "persistent", "recompute must hit the warm cache"
                best.extend(
                    pair.normalized_distance for pair in result.payload.motifs(3)
                )
    recompute_seconds = time.perf_counter() - started
    top_recomputed = sorted(best)[:5]

    # Same answer, both ways (the oracle, at benchmark scale).
    assert [row["score"] for row in answer["rows"]] == sorted(
        row["score"] for row in answer["rows"]
    )
    assert np.allclose([row["score"] for row in answer["rows"]], top_recomputed)

    speedup = recompute_seconds / max(query_seconds, 1e-9)
    _RESULTS["query_vs_recompute"] = {
        "indexed_results": SERIES_COUNT * len(WINDOWS),
        "rows": rows,
        "query_seconds": query_seconds,
        "recompute_from_cache_seconds": recompute_seconds,
        "speedup": speedup,
        "query_repeats": QUERY_REPEATS,
    }
    _flush()
    # A handful of SQLite point reads vs ~50 envelope loads: the index must
    # win by an order of magnitude even on a loaded single core.
    assert speedup > 10.0


def test_backfill_throughput_on_50_result_corpus(tmp_path) -> None:
    _populate(tmp_path, _corpus_series())
    cold = MotifIndex(tmp_path / "cold.db")
    started = time.perf_counter()
    report = cold.backfill(tmp_path)
    backfill_seconds = time.perf_counter() - started
    rows = cold.count()
    cold.close()
    assert report["envelopes"] == SERIES_COUNT * len(WINDOWS)
    assert report["skipped"] == 0
    assert rows == report["rows_added"]

    _RESULTS["backfill"] = {
        "envelopes": report["envelopes"],
        "rows": rows,
        "seconds": backfill_seconds,
        "results_per_second": report["envelopes"] / max(backfill_seconds, 1e-9),
        "rows_per_second": rows / max(backfill_seconds, 1e-9),
    }
    _flush()
