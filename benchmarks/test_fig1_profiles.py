"""Figure 1 — fixed-length matrix profile vs. VALMAP on ECG.

The paper's Figure 1 is qualitative (profiles over an ECG snippet): with a
fixed subsequence length of 50 the motif covers only a fraction of a
heartbeat, while the variable-length analysis (VALMAP) records, position by
position, the lengths at which longer patterns become better matches.  The
benchmark measures the cost of producing each panel on a comparable snippet
and records the qualitative outcome as extra info.
"""

from __future__ import annotations

import pytest

from repro.core.valmod import valmod
from repro.generators import generate_ecg
from repro.matrix_profile.stomp import stomp

SERIES_LENGTH = 3000
BEAT_PERIOD = 220
FIXED_WINDOW = 50
MIN_LENGTH, MAX_LENGTH = 50, 200


@pytest.fixture(scope="module")
def ecg_snippet():
    """A regular ECG snippet (low jitter), comparable to the paper's Figure 1 data."""
    return generate_ecg(
        SERIES_LENGTH,
        beat_period=BEAT_PERIOD,
        period_jitter=0.02,
        amplitude_jitter=0.02,
        noise_level=0.01,
        random_state=0,
    )


def test_fig1_left_fixed_length_matrix_profile(benchmark, ecg_snippet):
    """Figure 1 (left): matrix profile at the fixed length 50."""
    benchmark.group = "figure-1"

    profile = benchmark.pedantic(
        stomp, args=(ecg_snippet, FIXED_WINDOW), rounds=1, iterations=1
    )
    best = profile.best()
    benchmark.extra_info["fixed_window"] = FIXED_WINDOW
    benchmark.extra_info["beat_period"] = BEAT_PERIOD
    benchmark.extra_info["motif_offsets"] = list(best.offsets)
    benchmark.extra_info["fraction_of_beat_covered"] = round(FIXED_WINDOW / BEAT_PERIOD, 3)
    # paper claim: the fixed length is far below the natural pattern length,
    # so the fixed-length motif can only describe a fraction of a heartbeat
    assert FIXED_WINDOW < BEAT_PERIOD


def test_fig1_right_valmap(benchmark, ecg_snippet):
    """Figure 1 (right): VALMAP over lengths [50, 200]."""
    benchmark.group = "figure-1"

    result = benchmark.pedantic(
        valmod,
        args=(ecg_snippet, MIN_LENGTH, MAX_LENGTH),
        kwargs={"top_k": 3, "profile_capacity": 64},
        rounds=1,
        iterations=1,
    )
    best = result.best_motif()
    updated = len(result.valmap.updated_positions())
    benchmark.extra_info["best_motif_length"] = best.window
    benchmark.extra_info["beat_period"] = BEAT_PERIOD
    benchmark.extra_info["valmap_updated_positions"] = int(updated)
    benchmark.extra_info["max_length_profile_value"] = int(result.valmap.length_profile.max())
    # paper claim: VALMAP records positions where longer patterns are better
    # matches than the base-length ones (the length profile is not flat)
    assert updated > 0
    assert int(result.valmap.length_profile.max()) > MIN_LENGTH
