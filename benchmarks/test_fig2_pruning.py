"""Figure 2 — partial distance profiles and the pruning they enable.

The paper illustrates the mechanism (valid vs. non-valid partial profiles);
this benchmark quantifies it by sweeping the profile capacity ``p`` and
recording the fraction of profiles that stay valid and the fraction that must
be recomputed exactly.
"""

from __future__ import annotations

import pytest

from repro.core.valmod import valmod

SERIES_LENGTH = 4096
BASE_LENGTH = 64
RANGE_WIDTH = 32


@pytest.mark.parametrize("capacity", [4, 8, 16, 32])
def test_fig2_pruning_vs_profile_capacity(benchmark, workload_cache, capacity):
    """VALMOD run time and pruning counters as the capacity ``p`` grows."""
    benchmark.group = "figure-2 (pruning vs p)"
    series = workload_cache("ecg", SERIES_LENGTH)
    max_length = BASE_LENGTH + RANGE_WIDTH - 1

    result = benchmark.pedantic(
        valmod,
        args=(series, BASE_LENGTH, max_length),
        kwargs={"top_k": 1, "profile_capacity": capacity},
        rounds=1,
        iterations=1,
    )
    summary = result.pruning_summary()
    benchmark.extra_info["profile_capacity"] = capacity
    benchmark.extra_info["valid_fraction"] = round(summary["valid_fraction"], 4)
    benchmark.extra_info["recomputed_fraction"] = round(summary["recomputed_fraction"], 4)
    # the whole point of the partial profiles: only a small fraction of the
    # distance profiles ever needs to be recomputed exactly
    assert summary["recomputed_fraction"] < 0.25
