"""Ablation (extension) — anytime convergence of the SCRIMP substrate.

Not a figure of the paper: it quantifies the anytime behaviour of the
diagonal-order substrate the library adds on top of the paper's STOMP-based
pipeline.  One benchmark entry per processed fraction of the diagonals; the
extra info records how far the partial profile is from the exact one, which
must shrink monotonically and reach zero at fraction 1.0.
"""

from __future__ import annotations

import pytest

from repro.matrix_profile.scrimp import profile_error, scrimp
from repro.matrix_profile.stomp import stomp

SERIES_LENGTH = 2048
WINDOW = 64
FRACTIONS = (0.1, 0.25, 0.5, 1.0)

_ERRORS: dict[float, float] = {}


@pytest.fixture(scope="module")
def exact_profile(workload_cache):
    series = workload_cache("ecg", SERIES_LENGTH)
    return series, stomp(series, WINDOW)


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_anytime_scrimp_convergence(benchmark, exact_profile, fraction):
    benchmark.group = "ablation: anytime SCRIMP convergence (ecg)"
    series, exact = exact_profile

    approximate = benchmark.pedantic(
        scrimp,
        args=(series, WINDOW),
        kwargs={"fraction": fraction, "random_state": 0},
        rounds=1,
        iterations=1,
    )
    error = profile_error(approximate, exact)
    _ERRORS[fraction] = error
    benchmark.extra_info.update(
        {"fraction": fraction, "profile_mae": round(error, 6), "window": WINDOW}
    )

    if fraction == FRACTIONS[-1]:
        assert _ERRORS[1.0] == pytest.approx(0.0, abs=1e-6)
        measured = [_ERRORS[f] for f in FRACTIONS if f in _ERRORS]
        assert measured == sorted(measured, reverse=True) or all(
            later <= earlier + 1e-9 for earlier, later in zip(measured, measured[1:])
        )
