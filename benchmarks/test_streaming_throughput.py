"""Extension benchmark — streaming (STAMPI) maintenance vs. batch recomputation.

The monitored scenario behind the paper's application domains: points keep
arriving and the matrix profile must stay exact.  The incremental update is
benchmarked against the naive strategy of re-running batch STOMP after every
arrival; both end with the identical profile, and the incremental path must
be faster by a widening margin as the series grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness.timing import timed_call
from repro.matrix_profile.stomp import stomp
from repro.streaming.stampi import StreamingMatrixProfile

INITIAL_LENGTH = 1024
APPENDED_POINTS = 128
WINDOW = 64

_RESULTS: dict[str, tuple[float, float]] = {}


@pytest.fixture(scope="module")
def stream_values(workload_cache):
    series = workload_cache("ecg", INITIAL_LENGTH + APPENDED_POINTS)
    return np.asarray(series)


def _run_incremental(values: np.ndarray) -> float:
    streaming = StreamingMatrixProfile(values[:INITIAL_LENGTH], WINDOW)
    streaming.extend(values[INITIAL_LENGTH:])
    return float(streaming.profile().distances[-1])


def _run_batch_per_point(values: np.ndarray) -> float:
    last = 0.0
    for count in range(1, APPENDED_POINTS + 1):
        profile = stomp(values[: INITIAL_LENGTH + count], WINDOW)
        last = float(profile.distances[-1])
    return last


def _timed(function, values):
    """Run once under the benchmark *and* record (tail distance, seconds)."""
    tail, seconds = timed_call(function, values)
    return tail, seconds


def test_streaming_incremental(benchmark, stream_values):
    benchmark.group = "extension: streaming maintenance (ecg)"
    tail, seconds = benchmark.pedantic(
        _timed, args=(_run_incremental, stream_values), rounds=1, iterations=1
    )
    _RESULTS["incremental"] = (tail, seconds)
    benchmark.extra_info.update(
        {"strategy": "incremental", "appended_points": APPENDED_POINTS, "tail_distance": tail}
    )


def test_streaming_batch_recompute(benchmark, stream_values):
    benchmark.group = "extension: streaming maintenance (ecg)"
    tail, seconds = benchmark.pedantic(
        _timed, args=(_run_batch_per_point, stream_values), rounds=1, iterations=1
    )
    _RESULTS["batch"] = (tail, seconds)
    benchmark.extra_info.update(
        {"strategy": "batch per arrival", "appended_points": APPENDED_POINTS, "tail_distance": tail}
    )
    # Both strategies are exact, so they agree on the final profile tail; the
    # incremental one must be faster.
    incremental = _RESULTS.get("incremental")
    if incremental is not None:
        incremental_tail, incremental_seconds = incremental
        assert incremental_seconds < seconds
        assert tail == pytest.approx(incremental_tail, abs=1e-6)
