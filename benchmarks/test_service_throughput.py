"""Thread vs process data plane throughput of the analysis service.

Submits the same batch of CPU-bound requests (the pure-Python ``"oracle"``
sweep kernel, which never releases the GIL) to two otherwise identical
services — ``worker_kind="thread"`` and ``worker_kind="process"`` — and
writes both wall times to ``BENCH_service_mp.json`` at the repository root.

Each request targets a *distinct* series: same-digest jobs share one
session (and its lock), which would serialise the batch regardless of the
executor and measure nothing.

The speedup gate follows the engine-scaling convention: it only runs where
it can physically hold (≥ 2 effective cores, a working process pool) and
is warn-only unless ``ENGINE_SPEEDUP_STRICT=1``; every skipped or soft
gate leaves a warning in the log.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.api.requests import AnalysisRequest
from repro.api.session import EngineConfig
from repro.generators import generate_random_walk
from repro.service import BackgroundService, ServiceClient, ServiceConfig

SERIES_LENGTH = 1600
WINDOW = 64
N_SERIES = 4
WORKERS = 2
MIN_SPEEDUP = 1.3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_service_mp.json"


def _loud_skip(reason: str) -> None:
    warnings.warn(f"speedup gate skipped: {reason}")
    pytest.skip(reason)


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _series_batch() -> list:
    return [
        np.array(generate_random_walk(SERIES_LENGTH, random_state=seed).values)
        for seed in range(N_SERIES)
    ]


def _run_batch(worker_kind: str, store_dir: str) -> tuple:
    """One service, one warmup, one timed cold batch; returns (seconds, stats)."""
    batch = _series_batch()
    request = AnalysisRequest(kind="matrix_profile", params={"window": WINDOW})
    config = ServiceConfig(
        port=0,
        workers=WORKERS,
        worker_kind=worker_kind,
        engine=EngineConfig(kernel="oracle"),
        store_dir=Path(store_dir) / worker_kind,
    )
    with BackgroundService(config) as background:
        # Warm up the pool (process workers spawn lazily on first use) and
        # pre-upload every series so the timed phase measures computation,
        # not digest negotiation.
        warmup = ServiceClient(port=background.port, timeout=600)
        warmup.analyze(
            np.array(generate_random_walk(256, random_state=99).values),
            AnalysisRequest(kind="matrix_profile", params={"window": 16}),
        )
        for values in batch:
            warmup.put_series(values)

        sources: list = [None] * N_SERIES

        def submit(index: int) -> None:
            client = ServiceClient(port=background.port, timeout=600)
            _result, source = client.analyze(batch[index], request)
            sources[index] = source

        threads = [
            threading.Thread(target=submit, args=(index,))
            for index in range(N_SERIES)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        stats = warmup.stats()
    assert sources == ["computed"] * N_SERIES
    return elapsed, stats


def test_service_thread_vs_process_throughput() -> None:
    with tempfile.TemporaryDirectory() as store_dir:
        thread_seconds, thread_stats = _run_batch("thread", store_dir)
        process_seconds, process_stats = _run_batch("process", store_dir)

    assert thread_stats["worker_kind"] == "thread"
    speedup = thread_seconds / max(process_seconds, 1e-9)
    payload = {
        "series_length": SERIES_LENGTH,
        "window": WINDOW,
        "n_series": N_SERIES,
        "workers": WORKERS,
        "kernel": "oracle",
        "effective_cores": _effective_cores(),
        "cpu_count": os.cpu_count(),
        "thread_seconds": thread_seconds,
        "process_seconds": process_seconds,
        "process_speedup": speedup,
        "process_worker_kind": process_stats["worker_kind"],
        "process_zero_copy_jobs": process_stats.get("zero_copy_jobs", 0),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    if process_stats["worker_kind"] != "process":
        _loud_skip("the environment cannot host a process pool (degraded to threads)")
    # The blob-backed zero-copy path must actually have been taken.
    assert process_stats["zero_copy_jobs"] >= N_SERIES
    if _effective_cores() < 2:
        _loud_skip(f"{_effective_cores()} effective core(s): no parallel speedup to gate")
    if speedup < MIN_SPEEDUP:
        message = (
            f"process workers {speedup:.2f}x vs threads "
            f"(wanted >= {MIN_SPEEDUP}x on {_effective_cores()} cores)"
        )
        if os.environ.get("ENGINE_SPEEDUP_STRICT") == "1":
            raise AssertionError(message)
        warnings.warn(message)
