"""Kernel scaling of the AB-join and the batched SCRIMP diagonal sweep.

Times one full one-sided AB-join at n ∈ {4096, 16384} (both series of
length n) through the historical per-subsequence MASS loop (pinned as
``kernel="oracle"`` — the frozen reference the fast kernels are measured
against) and through the fast join kernels (``"numpy"`` STOMP-recurrence
sweep, compiled ``"native"`` when buildable), plus one exact SCRIMP pass
at n = 8192 through the one-diagonal-at-a-time oracle and the batched
diagonal kernels.  Wall-clock numbers and derived speedups land in
``BENCH_join_scaling.json`` at the repository root so the speedup
trajectory is tracked from this PR onwards.

The acceptance floors (numpy ≥ 8x, native ≥ 10x over the oracle join at
the largest size) are same-process single-thread ratios; they are
advisory warnings by default and enforced under ``ENGINE_SPEEDUP_STRICT=1``
because separate timings on noisy machines are inherently jittery.  Every
skipped gate (missing compiler, deselected timing run) says so loudly
with a warning, so a green run that didn't check anything is visible in
the log.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.generators import generate_random_walk
from repro.matrix_profile.ab_join import ab_join
from repro.matrix_profile.kernels import available_kernels
from repro.matrix_profile.scrimp import scrimp

SIZES = (4096, 16384)
WINDOW = 128
SCRIMP_SIZE = 8192
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_join_scaling.json"

#: Join/diagonal kernels timed against the oracle baselines.
FAST_KERNELS = tuple(
    name for name in ("numpy", "native") if name in available_kernels()
)

#: Acceptance floors for the join kernels at the largest size.
_JOIN_FLOORS = {"numpy": 8.0, "native": 10.0}

#: Wall-clock seconds per (size, mode), filled by the timing tests.
_TIMINGS: dict[int, dict[str, float]] = {}

#: Wall-clock seconds of the SCRIMP diagonal-sweep case, same shape.
_SCRIMP_TIMINGS: dict[str, float] = {}

#: Oracle join profiles stashed by the baseline runs so the kernel runs
#: can assert parity on the benchmark workload itself.
_ORACLE_JOINS: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _loud_skip(reason: str) -> None:
    """Skip a gate, but leave a warning in the log — a skipped speedup
    assertion must never masquerade as a checked one."""
    import warnings

    warnings.warn(f"speedup gate skipped: {reason}")
    pytest.skip(reason)


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _series_pair(n: int) -> tuple[np.ndarray, np.ndarray]:
    return (
        np.array(generate_random_walk(n, random_state=0).values),
        np.array(generate_random_walk(n, random_state=1).values),
    )


def _flush_results() -> None:
    # Merge with whatever a previous (possibly partial / deselected) run
    # recorded: a `-k scrimp` run must not clobber the join trajectory and
    # the join flush must not erase an earlier scrimp section.
    existing: dict = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    sizes = dict(existing.get("sizes", {}))
    for n, times in sorted(_TIMINGS.items()):
        merged = {**sizes.get(str(n), {}), **times}
        oracle = merged.get("oracle_seconds")
        for kernel in ("numpy", "native"):
            seconds = merged.get(f"{kernel}_kernel_seconds")
            if oracle and seconds:
                merged[f"{kernel}_kernel_speedup"] = oracle / seconds
        sizes[str(n)] = merged
    payload = {
        "window": WINDOW,
        "effective_cores": _effective_cores(),
        "cpu_count": os.cpu_count(),
        "baseline_kernel": "oracle",
        "sizes": sizes,
    }
    if _SCRIMP_TIMINGS:
        section = dict(_SCRIMP_TIMINGS)
        oracle = section.get("oracle_seconds")
        for kernel in ("numpy", "native"):
            seconds = section.get(f"{kernel}_kernel_seconds")
            if oracle and seconds:
                section[f"{kernel}_kernel_speedup"] = oracle / seconds
        payload["scrimp_diagonal_sweep"] = {"n": SCRIMP_SIZE, **section}
    elif "scrimp_diagonal_sweep" in existing:
        payload["scrimp_diagonal_sweep"] = existing["scrimp_diagonal_sweep"]
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.parametrize("n", SIZES)
def test_join_scaling_oracle(benchmark, n):
    """The per-subsequence MASS baseline, pinned to the oracle kernel.

    Without the pin, ``ab_join``'s default would auto-resolve to the fast
    kernels this file measures — the baseline must stay the historical
    per-row MASS loop.
    """
    benchmark.group = f"join scaling n={n}"
    values_a, values_b = _series_pair(n)
    started = time.perf_counter()
    profile = benchmark.pedantic(
        ab_join,
        args=(values_a, values_b, WINDOW),
        kwargs={"kernel": "oracle"},
        rounds=1,
        iterations=1,
    )
    _TIMINGS.setdefault(n, {})["oracle_seconds"] = time.perf_counter() - started
    _ORACLE_JOINS[n] = (profile.distances, profile.indices)


@pytest.mark.parametrize("kernel", FAST_KERNELS)
@pytest.mark.parametrize("n", SIZES)
def test_join_scaling_kernels(benchmark, n, kernel):
    """The fast join kernels on the same workload, parity-checked against
    the oracle baseline of :func:`test_join_scaling_oracle` (indices
    bit-for-bit, distances to 1e-8 — the default reseed interval trades
    per-row FFT seeds for recurrence advances, see tests/test_join_kernels.py
    for the reseed-free bitwise pins)."""
    benchmark.group = f"join scaling n={n}"
    values_a, values_b = _series_pair(n)
    started = time.perf_counter()
    profile = benchmark.pedantic(
        ab_join,
        args=(values_a, values_b, WINDOW),
        kwargs={"kernel": kernel},
        rounds=1,
        iterations=1,
    )
    _TIMINGS.setdefault(n, {})[f"{kernel}_kernel_seconds"] = (
        time.perf_counter() - started
    )
    if n in _ORACLE_JOINS:
        distances, indices = _ORACLE_JOINS[n]
        np.testing.assert_array_equal(profile.indices, indices)
        np.testing.assert_allclose(profile.distances, distances, atol=1e-8, rtol=0)
    if n == SIZES[-1] and kernel == FAST_KERNELS[-1]:
        _flush_results()


def test_scrimp_diagonal_sweep_scaling(benchmark):
    """One exact SCRIMP pass through the one-diagonal-at-a-time oracle and
    the batched diagonal kernels — all three produce bit-identical
    profiles (the anytime contract), so equality is asserted outright."""
    benchmark.group = "scrimp diagonal sweep"
    values = np.array(generate_random_walk(SCRIMP_SIZE, random_state=2).values)

    started = time.perf_counter()
    reference = scrimp(values, WINDOW, random_state=0, kernel="oracle")
    _SCRIMP_TIMINGS["oracle_seconds"] = time.perf_counter() - started

    profiles = {}
    for kernel in FAST_KERNELS:
        started = time.perf_counter()
        profiles[kernel] = scrimp(values, WINDOW, random_state=0, kernel=kernel)
        _SCRIMP_TIMINGS[f"{kernel}_kernel_seconds"] = time.perf_counter() - started

    benchmark.pedantic(
        scrimp,
        args=(values, WINDOW),
        kwargs={"random_state": 0},
        rounds=1,
        iterations=1,
    )
    for kernel, profile in profiles.items():
        np.testing.assert_array_equal(profile.distances, reference.distances)
        np.testing.assert_array_equal(profile.indices, reference.indices)
    _flush_results()


@pytest.mark.parametrize("kernel", ("numpy", "native"))
def test_join_kernel_speedup_floor(kernel):
    """Acceptance gate: join kernel speedups at the largest size over the
    oracle MASS loop (numpy ≥ 8x, native ≥ 10x).

    Same-process single-thread wall-clock ratios, so no core gate; still
    advisory by default (``ENGINE_SPEEDUP_STRICT=1`` enforces) because the
    baseline and the kernel run are separate timings on possibly noisy
    machines.  A missing native build skips loudly.
    """
    if kernel not in FAST_KERNELS:
        _loud_skip(f"{kernel} kernel unavailable (no C compiler or disabled)")
    largest = _TIMINGS.get(SIZES[-1], {})
    needed = {"oracle_seconds", f"{kernel}_kernel_seconds"}
    if not needed <= set(largest):
        _loud_skip("timing tests did not run (deselected)")
    floor = _JOIN_FLOORS[kernel]
    speedup = largest["oracle_seconds"] / largest[f"{kernel}_kernel_seconds"]
    message = f"{kernel} join kernel speedup {speedup:.2f}x below the {floor:g}x floor"
    if os.environ.get("ENGINE_SPEEDUP_STRICT") == "1":
        assert speedup >= floor, message
    elif speedup < floor:
        import warnings

        warnings.warn(message + " (set ENGINE_SPEEDUP_STRICT=1 to enforce)")
