"""Shared fixtures for the benchmark suite.

The benchmarks regenerate the data behind every figure of the paper at a
scale a pure-Python implementation can handle (see DESIGN.md for the scaling
argument).  Workload series are generated once per session and cached.
"""

from __future__ import annotations

import pytest

from repro.harness.workloads import build_workload

#: Scaled-down stand-ins for the paper's datasets (0.1M-1M points in the paper).
SERIES_LENGTH = 4096
BASE_LENGTH = 64


@pytest.fixture(scope="session")
def workload_cache():
    """Cache of generated workload series keyed by (name, length)."""
    cache: dict[tuple[str, int], object] = {}

    def get(name: str, length: int = SERIES_LENGTH):
        key = (name, length)
        if key not in cache:
            cache[key] = build_workload(name, length, random_state=0)
        return cache[key]

    return get
