"""Warm-vs-cold speedup of the Analysis session's cross-call caching.

Measures three regimes on one series and writes them to
``BENCH_api_session.json`` at the repository root:

* **cold** — a fresh session per call: full validation, statistics and
  profile computation every time (the flat-entry-point cost model);
* **warm_state** — one session, result cache disabled: the series
  validation, ``SlidingStats`` and base FFT products are reused, the
  O(n^2) profile work is re-done;
* **warm_cached** — one session, repeated identical request: a cache hit.

The acceptance gate (warm_cached >= 1.3x cold) is single-core safe: it
measures cache reuse, not parallelism.  In practice the cached call is a
dictionary lookup, orders of magnitude faster.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.api.session import analyze
from repro.generators import generate_random_walk

SERIES_LENGTH = 4096
WINDOW = 128
MOTIF_RANGE = (64, 72)
WARM_REPEATS = 25
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_api_session.json"


def _series() -> np.ndarray:
    return np.array(generate_random_walk(SERIES_LENGTH, random_state=7).values)


def _time(callable_) -> float:
    started = time.perf_counter()
    callable_()
    return time.perf_counter() - started


def test_session_cache_speedup() -> None:
    values = _series()

    # Cold: a fresh session per call (per-call validation + stats + profile).
    cold_seconds = _time(lambda: analyze(values).matrix_profile(WINDOW))

    session = analyze(values)
    session.matrix_profile(WINDOW)  # populate state + result cache

    # Warm, result cache bypassed: shared stats/FFT state, profile re-done.
    warm_state_seconds = _time(
        lambda: session.matrix_profile(WINDOW, cache=False)
    )

    # Warm, cache hit: repeated identical request.
    started = time.perf_counter()
    for _ in range(WARM_REPEATS):
        session.matrix_profile(WINDOW)
    warm_cached_seconds = (time.perf_counter() - started) / WARM_REPEATS

    # A second computation kind through the same session, for the record.
    motifs_cold_seconds = _time(
        lambda: analyze(values).motifs(*MOTIF_RANGE, method="valmod")
    )
    motifs_warm_session = analyze(values)
    motifs_warm_session.motifs(*MOTIF_RANGE, method="valmod")
    started = time.perf_counter()
    for _ in range(WARM_REPEATS):
        motifs_warm_session.motifs(*MOTIF_RANGE, method="valmod")
    motifs_warm_cached_seconds = (time.perf_counter() - started) / WARM_REPEATS

    cached_speedup = cold_seconds / max(warm_cached_seconds, 1e-9)
    payload = {
        "series_length": SERIES_LENGTH,
        "window": WINDOW,
        "warm_repeats": WARM_REPEATS,
        "matrix_profile": {
            "cold_seconds": cold_seconds,
            "warm_state_seconds": warm_state_seconds,
            "warm_cached_seconds": warm_cached_seconds,
            "warm_state_speedup": cold_seconds / max(warm_state_seconds, 1e-9),
            "warm_cached_speedup": cached_speedup,
        },
        "motifs_valmod": {
            "range": list(MOTIF_RANGE),
            "cold_seconds": motifs_cold_seconds,
            "warm_cached_seconds": motifs_warm_cached_seconds,
            "warm_cached_speedup": motifs_cold_seconds
            / max(motifs_warm_cached_seconds, 1e-9),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    # Acceptance: cache reuse alone must buy >= 1.3x on repeated calls.
    assert cached_speedup >= 1.3, (
        f"warm cached speedup {cached_speedup:.2f}x below the 1.3x floor "
        f"(cold {cold_seconds:.4f}s, warm {warm_cached_seconds:.6f}s)"
    )
    # And the cached envelope is the genuine article.
    direct = analyze(values).matrix_profile(WINDOW).profile()
    cached = session.matrix_profile(WINDOW).profile()
    assert np.array_equal(direct.indices, cached.indices)
