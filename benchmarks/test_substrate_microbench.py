"""Micro-benchmarks of the matrix-profile substrate.

Not a paper figure; these measure the building blocks (MASS, one STOMP run,
the per-length partial-profile update) so regressions in the substrate are
visible independently of the end-to-end figures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partial_profile import PartialProfileStore
from repro.matrix_profile.mass import mass
from repro.matrix_profile.stomp import stomp
from repro.stats.sliding import SlidingStats

SERIES_LENGTH = 4096
WINDOW = 64


@pytest.fixture(scope="module")
def ecg_values(workload_cache):
    return np.array(workload_cache("ecg", SERIES_LENGTH).values)


def test_micro_mass_single_query(benchmark, ecg_values):
    benchmark.group = "substrate micro-benchmarks"
    stats = SlidingStats(ecg_values)
    query = ecg_values[100 : 100 + WINDOW]
    benchmark(mass, query, ecg_values, stats=stats)


def test_micro_stomp_full_profile(benchmark, ecg_values):
    benchmark.group = "substrate micro-benchmarks"
    benchmark.pedantic(stomp, args=(ecg_values, WINDOW), rounds=1, iterations=1)


def test_micro_partial_profile_length_step(benchmark, ecg_values):
    """Cost of advancing + evaluating every partial profile by one length."""
    benchmark.group = "substrate micro-benchmarks"
    stats = SlidingStats(ecg_values)
    store = PartialProfileStore(ecg_values, stats, WINDOW, capacity=16)
    stomp(ecg_values, WINDOW, stats=stats, ingest_store=store)
    lengths = iter(range(WINDOW + 1, WINDOW + 500))

    def one_step():
        return store.evaluate(next(lengths))

    benchmark.pedantic(one_step, rounds=20, iterations=1)
