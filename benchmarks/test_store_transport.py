"""Transport cost of the content-addressed series store.

Two regimes land in ``BENCH_store.json`` at the repository root:

* **service transport** — the first request for a series (digest probe +
  ``PUT /series`` upload + retry) against a digest-only repeat request:
  wall-clock and, more tellingly, the bytes put on the wire (~8 bytes per
  point cold, a constant ~200 bytes warm, whatever the series length);
* **shared-memory segment reuse** — an engine-backed profile run that
  re-packs its segment every call against a session whose digest-keyed
  pool packs once (second-call wall-clock; pack counts are asserted
  deterministically).

Wall-clock *speedups* are asserted only with two or more effective cores
(a loaded single-core CI box makes timing assertions flaky); byte counts
and pack counts are exact and assert everywhere.  The flush merges into an
existing ``BENCH_store.json``, so a partial ``-k`` run never clobbers the
other section.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api.requests import AnalysisRequest
from repro.engine.shm import SharedSeriesBuffer
from repro.service import BackgroundService, ServiceClient, ServiceConfig

SERIES_LENGTH = 8192
WINDOW = 128
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"

_RESULTS: dict = {}


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _flush() -> None:
    existing: dict = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except (OSError, json.JSONDecodeError):
            existing = {}
    payload = {
        **existing,
        "series_length": SERIES_LENGTH,
        "window": WINDOW,
        "effective_cores": _effective_cores(),
        **_RESULTS,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_service_digest_transport_vs_upload(tmp_path) -> None:
    values = np.cumsum(np.random.default_rng(29).standard_normal(SERIES_LENGTH))
    config = ServiceConfig(port=0, workers=1, store_dir=tmp_path / "store")
    with BackgroundService(config) as background:
        client = ServiceClient(port=background.port, timeout=300)
        wire_bytes = {"cold": 0, "warm": 0}
        phase = "cold"
        original = client._exchange

        def metering(method, path, body=None, **kwargs):
            wire_bytes[phase] += 0 if body is None else len(body)
            return original(method, path, body, **kwargs)

        client._exchange = metering

        started = time.perf_counter()
        client.analyze(
            values, AnalysisRequest(kind="matrix_profile", params={"window": WINDOW})
        )
        cold_seconds = time.perf_counter() - started

        phase = "warm"
        warm_samples = []
        for repeat in range(REPEATS):
            # A fresh window each time: the digest-only request must
            # *compute* (this measures transport, not the result cache).
            request = AnalysisRequest(
                kind="matrix_profile", params={"window": WINDOW + repeat + 1}
            )
            started = time.perf_counter()
            _, source = client.analyze(values, request)
            warm_samples.append(time.perf_counter() - started)
            assert source == "computed"
        warm_seconds = sum(warm_samples) / len(warm_samples)
        warm_bytes = wire_bytes["warm"] / REPEATS
        client.close()

    # Deterministic gates: the digest-only request ships a constant few
    # hundred bytes; the cold path shipped the full series once.
    assert wire_bytes["cold"] >= SERIES_LENGTH * 8
    assert warm_bytes < 1024

    _RESULTS["service_transport"] = {
        "cold_upload_seconds": cold_seconds,
        "digest_only_seconds": warm_seconds,
        "cold_wire_bytes": wire_bytes["cold"],
        "digest_only_wire_bytes": warm_bytes,
        "wire_bytes_ratio": wire_bytes["cold"] / max(warm_bytes, 1.0),
        "repeats": REPEATS,
    }
    _flush()


def test_shm_segment_reuse_vs_repack() -> None:
    probe = SharedSeriesBuffer.create({"probe": np.arange(4.0)})
    if probe is None:
        pytest.skip("platform refuses shared-memory segments at runtime")
    probe.close()
    probe.unlink()

    values = np.cumsum(np.random.default_rng(31).standard_normal(SERIES_LENGTH))
    n_jobs = max(2, min(4, _effective_cores()))
    engine = repro.EngineConfig(executor="parallel", n_jobs=n_jobs)

    packs = []
    original = SharedSeriesBuffer.create.__func__

    def counting(cls, arrays):
        packs.append(1)
        return original(cls, arrays)

    SharedSeriesBuffer.create = classmethod(counting)
    try:
        # Pool-less: flat partitioned_stomp packs a fresh segment per call.
        repro.partitioned_stomp(values, WINDOW, executor="parallel", n_jobs=n_jobs)
        started = time.perf_counter()
        repro.partitioned_stomp(values, WINDOW, executor="parallel", n_jobs=n_jobs)
        repack_seconds = time.perf_counter() - started
        repack_count = len(packs)

        # Pooled: the session packs once and every later run attaches.
        packs.clear()
        with repro.analyze(values, engine=engine) as session:
            session.matrix_profile(WINDOW, cache=False)
            started = time.perf_counter()
            session.matrix_profile(WINDOW, cache=False)
            reuse_seconds = time.perf_counter() - started
            reuse_count = len(packs)
    finally:
        SharedSeriesBuffer.create = classmethod(original)

    assert repack_count == 2, "the flat path packs per call"
    assert reuse_count == 1, "the session path packs once"

    _RESULTS["shm_segment_reuse"] = {
        "n_jobs": n_jobs,
        "repack_second_call_seconds": repack_seconds,
        "reuse_second_call_seconds": reuse_seconds,
        "speedup": repack_seconds / max(reuse_seconds, 1e-9),
        "repack_count": repack_count,
        "reuse_pack_count": reuse_count,
    }
    if _effective_cores() >= 2:
        # With real parallelism the reused segment must not be slower than
        # repacking by more than measurement noise allows.
        assert reuse_seconds < repack_seconds * 1.5
    _flush()
