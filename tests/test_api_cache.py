"""Cache-semantics substrate: LRU eviction, byte accounting, persistence.

Covers the replacement of PR 2's unbounded session dictionary:

* :class:`~repro.api.cache.LRUResultCache` — eviction order, promotion on
  access, byte-size accounting, oversized-entry rejection;
* the session integration — bounded entries/bytes observable through
  ``cache_info``, eviction forcing recomputation;
* :class:`~repro.api.cache.PersistentResultCache` — hits across two
  sessions *and* across two separate processes, corrupted/stale spill
  files degrading to misses (never to crashes or wrong results).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api.cache import (
    CacheConfig,
    LRUResultCache,
    PersistentResultCache,
    series_digest,
)
from repro.api.requests import AnalysisRequest
from repro.exceptions import InvalidParameterError

SRC_DIR = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture()
def values() -> np.ndarray:
    return np.cumsum(np.random.default_rng(17).standard_normal(300))


def _request(window: int) -> AnalysisRequest:
    return AnalysisRequest(kind="matrix_profile", params={"window": window})


# --------------------------------------------------------------------- #
# LRUResultCache unit behaviour
# --------------------------------------------------------------------- #
class TestLRUResultCache:
    def test_evicts_least_recently_used_first(self):
        cache = LRUResultCache(max_entries=3, max_bytes=10_000)
        for key in ("a", "b", "c"):
            cache.put(key, f"result-{key}", 10)
        cache.put("d", "result-d", 10)
        assert cache.keys() == ["b", "c", "d"]
        assert cache.get("a") is None
        assert cache.evictions == 1

    def test_get_promotes_entry(self):
        cache = LRUResultCache(max_entries=3, max_bytes=10_000)
        for key in ("a", "b", "c"):
            cache.put(key, key, 10)
        assert cache.get("a") == "a"  # 'a' becomes most recent
        cache.put("d", "d", 10)
        assert cache.keys() == ["c", "a", "d"]
        assert cache.get("b") is None

    def test_contains_does_not_promote(self):
        cache = LRUResultCache(max_entries=2, max_bytes=10_000)
        cache.put("a", "a", 10)
        cache.put("b", "b", 10)
        assert "a" in cache  # membership probe must not reorder
        cache.put("c", "c", 10)
        assert cache.get("a") is None and cache.get("b") == "b"

    def test_byte_accounting_and_byte_bound_eviction(self):
        cache = LRUResultCache(max_entries=100, max_bytes=100)
        cache.put("a", "a", 40)
        cache.put("b", "b", 40)
        assert cache.total_bytes == 80
        cache.put("c", "c", 40)  # 120 > 100: 'a' must go
        assert cache.total_bytes == 80
        assert cache.keys() == ["b", "c"]

    def test_replacing_a_key_updates_the_byte_total(self):
        cache = LRUResultCache(max_entries=10, max_bytes=1_000)
        cache.put("a", "small", 10)
        cache.put("a", "bigger", 90)
        assert cache.total_bytes == 90
        assert len(cache) == 1

    def test_oversized_entry_is_rejected_not_cached(self):
        cache = LRUResultCache(max_entries=10, max_bytes=100)
        cache.put("small", "x", 50)
        assert not cache.put("huge", "y", 101)
        assert "huge" not in cache
        assert "small" in cache  # the oversized entry evicted nothing
        assert cache.total_bytes == 50

    def test_bounds_are_validated(self):
        with pytest.raises(InvalidParameterError):
            LRUResultCache(max_entries=0, max_bytes=100)
        with pytest.raises(InvalidParameterError):
            LRUResultCache(max_entries=1, max_bytes=0)
        with pytest.raises(InvalidParameterError):
            CacheConfig(max_entries=0)


# --------------------------------------------------------------------- #
# session integration
# --------------------------------------------------------------------- #
class TestSessionCacheBounds:
    def test_entry_bound_forces_recomputation(self, values):
        session = repro.analyze(
            values, cache_config=CacheConfig(max_entries=2, max_bytes=10**8)
        )
        session.run(_request(16))
        session.run(_request(20))
        session.run(_request(24))  # evicts window=16
        info = session.cache_info()
        assert info["entries"] == 2 and info["evictions"] == 1
        session.run(_request(16))  # gone → recomputed
        assert session.cache_info()["misses"] == 4
        assert session.cache_info()["hits"] == 0

    def test_byte_accounting_matches_serialised_size(self, values):
        session = repro.analyze(values)
        result = session.run(_request(16))
        expected = len(result.to_json().encode("utf-8"))
        assert session.cache_info()["bytes"] == expected

    def test_byte_bound_keeps_session_under_budget(self, values):
        profile_bytes = len(
            repro.analyze(values).run(_request(16)).to_json().encode("utf-8")
        )
        budget = int(profile_bytes * 2.5)  # room for two profiles, not three
        session = repro.analyze(
            values, cache_config=CacheConfig(max_entries=100, max_bytes=budget)
        )
        for window in (16, 20, 24):
            session.run(_request(window))
        info = session.cache_info()
        assert info["bytes"] <= budget
        assert info["entries"] == 2 and info["evictions"] == 1


# --------------------------------------------------------------------- #
# persistent cache
# --------------------------------------------------------------------- #
class TestPersistentCache:
    def test_hit_across_two_sessions(self, values, tmp_path):
        config = CacheConfig(persist_dir=tmp_path / "spill")
        first = repro.analyze(values, cache_config=config)
        computed, source = first.run_with_info(_request(24))
        assert source == "computed"

        second = repro.analyze(values, cache_config=config)
        revived, source = second.run_with_info(_request(24))
        assert source == "persistent"
        assert second.cache_info()["persistent_hits"] == 1
        np.testing.assert_allclose(
            revived.profile().distances, computed.profile().distances
        )
        np.testing.assert_array_equal(
            revived.profile().indices, computed.profile().indices
        )
        # After the spill hit the envelope sits in memory: third call is free.
        _, source = second.run_with_info(_request(24))
        assert source == "memory"

    def test_hit_across_two_processes(self, values, tmp_path):
        spill = tmp_path / "spill"
        script = (
            "import sys, numpy as np, repro\n"
            "from repro.api.cache import CacheConfig\n"
            "from repro.api.requests import AnalysisRequest\n"
            "values = np.cumsum(np.random.default_rng(17).standard_normal(300))\n"
            "session = repro.analyze(values, cache_config=CacheConfig("
            f"persist_dir={str(spill)!r}))\n"
            "request = AnalysisRequest(kind='matrix_profile', params={'window': 24})\n"
            "result, source = session.run_with_info(request)\n"
            "print(source)\n"
            "print(float(result.profile().distances.min()))\n"
        )
        env = {**os.environ, "PYTHONPATH": str(SRC_DIR)}
        first = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert first.returncode == 0, first.stderr
        second = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, env=env
        )
        assert second.returncode == 0, second.stderr
        first_source, first_min = first.stdout.split()
        second_source, second_min = second.stdout.split()
        assert first_source == "computed"
        assert second_source == "persistent"
        assert first_min == second_min

    def test_run_many_batch_path_probes_the_spill(self, values, tmp_path):
        config = CacheConfig(persist_dir=tmp_path / "spill")
        requests = [_request(16), _request(24)]
        first = repro.analyze(values, cache_config=config)
        first.run_many(requests)

        second = repro.analyze(values, cache_config=config)
        revived = second.run_many(requests)
        info = second.cache_info()
        assert info["persistent_hits"] == 2
        assert info["misses"] == 0  # nothing recomputed
        for fresh, computed in zip(revived, first.run_many(requests)):
            np.testing.assert_allclose(
                fresh.profile().distances, computed.profile().distances
            )

    def test_different_series_do_not_share_slots(self, values, tmp_path):
        config = CacheConfig(persist_dir=tmp_path / "spill")
        repro.analyze(values, cache_config=config).run(_request(24))
        shifted = repro.analyze(values + 1.0, cache_config=config)
        _, source = shifted.run_with_info(_request(24))
        assert source == "computed"

    def test_corrupted_spill_file_is_a_miss_not_a_crash(self, values, tmp_path):
        spill = tmp_path / "spill"
        config = CacheConfig(persist_dir=spill)
        first = repro.analyze(values, cache_config=config)
        first.run(_request(24))
        spill_files = list(spill.rglob("*.json"))
        assert len(spill_files) == 1
        spill_files[0].write_text("{ not json at all", encoding="utf-8")

        second = repro.analyze(values, cache_config=config)
        result, source = second.run_with_info(_request(24))
        assert source == "computed"  # recomputed, no exception
        # the corrupted file was removed and the slot re-spilled
        third = repro.analyze(values, cache_config=config)
        _, source = third.run_with_info(_request(24))
        assert source == "persistent"
        np.testing.assert_allclose(
            result.profile().distances,
            third.run(_request(24)).profile().distances,
        )

    def test_stale_key_mismatch_is_a_miss(self, values, tmp_path):
        cache = PersistentResultCache(tmp_path / "spill")
        digest = series_digest(values)
        session = repro.analyze(values)
        result = session.run(_request(24))
        cache.store(digest, "the-real-key", result)
        # A file whose recorded key disagrees with the slot asked for —
        # e.g. a filename-hash collision — must read back as a miss.
        path = cache.path_for(digest, "another-key")
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.loads(
            cache.path_for(digest, "the-real-key").read_text(encoding="utf-8")
        )
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(digest, "another-key") is None
        assert cache.load(digest, "the-real-key") is not None

    def test_unserialisable_request_bypasses_the_spill(self, values, tmp_path):
        spill = tmp_path / "spill"
        session = repro.analyze(
            values, cache_config=CacheConfig(persist_dir=spill)
        )
        session.run(_request(16))
        # exactly one slot: the cacheable request
        assert len(list(spill.rglob("*.json"))) == 1


def test_series_digest_is_content_only(values):
    named = repro.DataSeries(np.array(values), name="alpha")
    renamed = repro.DataSeries(np.array(values), name="beta")
    assert named.digest() == renamed.digest() == series_digest(values)
    assert repro.analyze(values).series_digest == series_digest(values)
    assert series_digest(values + 1.0) != series_digest(values)
