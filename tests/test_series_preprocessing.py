"""Unit tests for repro.series.preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.series.dataseries import DataSeries
from repro.series.preprocessing import (
    clip_outliers,
    detrend,
    downsample,
    fill_missing,
    moving_average_smooth,
    standardize,
)


class TestFillMissing:
    def test_linear_interpolation(self):
        values = np.array([0.0, np.nan, 2.0, np.nan, np.nan, 5.0])
        filled = fill_missing(values)
        np.testing.assert_allclose(filled, [0.0, 1.0, 2.0, 3.0, 4.0, 5.0])

    def test_ffill(self):
        values = np.array([1.0, np.nan, np.nan, 4.0])
        filled = fill_missing(values, method="ffill")
        np.testing.assert_allclose(filled, [1.0, 1.0, 1.0, 4.0])

    def test_mean(self):
        values = np.array([1.0, np.nan, 3.0])
        filled = fill_missing(values, method="mean")
        assert filled[1] == pytest.approx(2.0)

    def test_no_missing_returns_copy(self):
        values = np.array([1.0, 2.0])
        np.testing.assert_array_equal(fill_missing(values), values)

    def test_all_missing_raises(self):
        with pytest.raises(InvalidSeriesError):
            fill_missing(np.array([np.nan, np.nan]))

    def test_unknown_method_raises(self):
        with pytest.raises(InvalidParameterError):
            fill_missing(np.array([1.0, np.nan]), method="magic")

    def test_rejects_dataseries(self):
        with pytest.raises(InvalidSeriesError):
            fill_missing(DataSeries(np.array([1.0, 2.0])))


class TestTransforms:
    def test_detrend_removes_linear_trend(self):
        x = np.arange(100, dtype=float)
        values = 3.0 * x + 2.0 + np.sin(x / 5.0)
        detrended = detrend(values)
        # after detrending the residual correlation with the trend is ~0
        assert abs(np.corrcoef(detrended, x)[0, 1]) < 0.05

    def test_standardize(self):
        values = np.random.default_rng(0).normal(5.0, 3.0, size=200)
        standardized = standardize(values)
        assert standardized.mean() == pytest.approx(0.0, abs=1e-10)
        assert standardized.std() == pytest.approx(1.0, rel=1e-10)

    def test_standardize_constant(self):
        np.testing.assert_array_equal(standardize(np.full(5, 2.0)), np.zeros(5))

    def test_downsample(self):
        values = np.arange(10, dtype=float)
        np.testing.assert_array_equal(downsample(values, 2), np.array([0, 2, 4, 6, 8], dtype=float))

    def test_downsample_too_aggressive_raises(self):
        with pytest.raises(InvalidParameterError):
            downsample(np.arange(4, dtype=float), 4)

    def test_smooth_reduces_variance(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=500)
        smoothed = moving_average_smooth(values, 9)
        assert smoothed.shape == values.shape
        assert smoothed.std() < values.std()

    def test_smooth_window_one_is_identity(self):
        values = np.arange(5, dtype=float)
        np.testing.assert_array_equal(moving_average_smooth(values, 1), values)

    def test_smooth_window_too_large_raises(self):
        with pytest.raises(InvalidParameterError):
            moving_average_smooth(np.arange(5, dtype=float), 6)

    def test_clip_outliers(self):
        values = np.concatenate([np.zeros(100), [1000.0]])
        clipped = clip_outliers(values, n_sigmas=3.0)
        assert clipped.max() < 1000.0

    def test_clip_outliers_invalid_sigma(self):
        with pytest.raises(InvalidParameterError):
            clip_outliers(np.arange(5, dtype=float), n_sigmas=0.0)


class TestDataSeriesWrapping:
    def test_dataseries_in_dataseries_out(self):
        series = DataSeries(np.arange(20, dtype=float), name="raw", sampling_rate=10.0)
        result = detrend(series)
        assert isinstance(result, DataSeries)
        assert result.sampling_rate == 10.0
        assert result.name.startswith("raw:")

    def test_array_in_array_out(self):
        result = standardize(np.arange(10, dtype=float))
        assert isinstance(result, np.ndarray)
