"""Tests for the streaming (STAMPI) matrix profile and the motif monitor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.generators import generate_ecg, generate_random_walk
from repro.matrix_profile.stomp import stomp
from repro.streaming import MotifEvent, StreamingMatrixProfile, StreamingMotifMonitor


class TestStreamingMatrixProfileExactness:
    def test_matches_batch_after_appends(self, small_random_series):
        window = 16
        split = 200
        streaming = StreamingMatrixProfile(small_random_series[:split], window)
        for value in small_random_series[split:]:
            streaming.append(float(value))
        batch = stomp(small_random_series, window)
        snapshot = streaming.profile()
        np.testing.assert_allclose(snapshot.distances, batch.distances, atol=1e-6)
        assert len(snapshot) == len(batch)

    def test_matches_batch_on_ecg(self, small_ecg_series):
        window = 24
        values = np.asarray(small_ecg_series)
        streaming = StreamingMatrixProfile(values[:300], window)
        streaming.extend(values[300:])
        batch = stomp(values, window)
        np.testing.assert_allclose(streaming.profile().distances, batch.distances, atol=1e-6)

    def test_single_append_is_exact(self, small_random_series):
        window = 12
        streaming = StreamingMatrixProfile(small_random_series[:-1], window)
        streaming.append(float(small_random_series[-1]))
        batch = stomp(small_random_series, window)
        np.testing.assert_allclose(streaming.profile().distances, batch.distances, atol=1e-6)

    def test_best_motif_matches_batch(self, small_ecg_series):
        window = 32
        values = np.asarray(small_ecg_series)
        streaming = StreamingMatrixProfile(values[:350], window)
        streaming.extend(values[350:])
        assert streaming.best_motif().distance == pytest.approx(
            stomp(values, window).best().distance, abs=1e-6
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        window=st.integers(min_value=4, max_value=20),
        tail=st.integers(min_value=1, max_value=40),
    )
    def test_incremental_equals_batch_property(self, seed, window, tail):
        rng = np.random.default_rng(seed)
        values = np.cumsum(rng.normal(size=120 + tail))
        streaming = StreamingMatrixProfile(values[: values.size - tail], window)
        streaming.extend(values[values.size - tail :])
        batch = stomp(values, window)
        np.testing.assert_allclose(streaming.profile().distances, batch.distances, atol=1e-5)


class TestStreamingMatrixProfileInterface:
    def test_metadata_and_counters(self, small_random_series):
        window = 16
        streaming = StreamingMatrixProfile(small_random_series[:100], window)
        assert streaming.window == window
        assert streaming.appended_points == 0
        created = streaming.extend(small_random_series[100:140])
        assert created == 40
        assert streaming.appended_points == 40
        assert len(streaming) == 140
        assert streaming.subsequence_count == 140 - window + 1
        assert streaming.values.size == 140

    def test_values_view_is_read_only(self, small_random_series):
        streaming = StreamingMatrixProfile(small_random_series[:100], 16)
        with pytest.raises(ValueError):
            streaming.values[0] = 0.0

    def test_rejects_non_finite_appends(self, small_random_series):
        streaming = StreamingMatrixProfile(small_random_series[:100], 16)
        with pytest.raises(InvalidParameterError):
            streaming.append(float("nan"))
        with pytest.raises(InvalidParameterError):
            streaming.extend(np.array([[1.0, 2.0]]))

    def test_buffer_growth_beyond_initial_capacity(self):
        rng = np.random.default_rng(0)
        values = np.cumsum(rng.normal(size=900))
        streaming = StreamingMatrixProfile(values[:64], 16)
        streaming.extend(values[64:])
        np.testing.assert_allclose(
            streaming.profile().distances, stomp(values, 16).distances, atol=1e-5
        )

    def test_discords_exposed(self, small_random_series):
        streaming = StreamingMatrixProfile(small_random_series, 16)
        discords = streaming.top_discords(3)
        assert len(discords) == 3
        assert len(set(discords)) == 3


class TestStreamingMotifMonitor:
    def test_motif_event_fires_when_second_copy_arrives(self):
        rng = np.random.default_rng(1)
        pattern = np.sin(np.linspace(0, 4 * np.pi, 64))
        prefix = np.concatenate([rng.normal(size=200), pattern, rng.normal(size=100)])
        monitor = StreamingMotifMonitor(prefix, windows=64, improvement_margin=0.05)
        events = monitor.extend(np.concatenate([pattern, rng.normal(size=50)]))
        motif_events = [event for event in events if event.kind == "motif"]
        assert motif_events, "the second planted copy must trigger a motif event"
        best = monitor.best_motif(64)
        assert best.distance < 1.0

    def test_discord_event_fires_on_anomaly(self):
        rng = np.random.default_rng(2)
        baseline = np.sin(np.linspace(0, 40 * np.pi, 800)) + rng.normal(0.0, 0.05, 800)
        monitor = StreamingMotifMonitor(baseline[:600], windows=32, discord_margin=0.05)
        anomaly = np.concatenate([baseline[600:650], np.full(20, 4.0), baseline[650:700]])
        events = monitor.extend(anomaly)
        assert any(event.kind == "discord" for event in events)

    def test_multiple_windows_and_queries(self, small_ecg_series):
        values = np.asarray(small_ecg_series)
        monitor = StreamingMotifMonitor(values[:400], windows=(24, 48))
        monitor.extend(values[400:])
        assert monitor.windows == [24, 48]
        assert monitor.stream_length() == values.size
        assert monitor.profile(24).window == 24
        assert monitor.best_motif(48).window == 48
        with pytest.raises(InvalidParameterError):
            monitor.profile(99)

    def test_valmap_refresh(self, small_ecg_series):
        values = np.asarray(small_ecg_series)
        monitor = StreamingMotifMonitor(
            values[:400], windows=(24, 36), valmap_refresh=50
        )
        monitor.extend(values[400:470])
        assert monitor.last_valmap_result is not None
        assert monitor.last_valmap_result.lengths[0] == 24
        assert monitor.last_valmap_result.lengths[-1] == 36

    def test_event_serialization(self):
        event = MotifEvent(kind="motif", position=10, window=8, distance=0.5, offsets=(1, 5))
        payload = event.as_dict()
        assert payload["kind"] == "motif"
        assert payload["offsets"] == [1, 5]

    def test_invalid_parameters(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            StreamingMotifMonitor(small_random_series, windows=())
        with pytest.raises(InvalidParameterError):
            StreamingMotifMonitor(small_random_series, windows=16, improvement_margin=-0.1)
        with pytest.raises(InvalidParameterError):
            StreamingMotifMonitor(small_random_series, windows=16, valmap_refresh=-1)
        with pytest.raises(InvalidParameterError):
            StreamingMotifMonitor(small_random_series, windows=64, history=70)

    def test_random_walk_produces_few_motif_events(self):
        series = generate_random_walk(600, random_state=4)
        values = np.asarray(series)
        monitor = StreamingMotifMonitor(values[:500], windows=32, improvement_margin=0.2)
        events = monitor.extend(values[500:])
        # With a 20 % improvement margin an unstructured random walk should
        # not flood the caller with motif events.
        assert len([event for event in events if event.kind == "motif"]) <= 5
