"""The cross-layer observability subsystem (:mod:`repro.obs`).

Covers the metrics registry (snapshot / delta / associative merge, the
cheap-when-disabled fast path), the freezable clock, hierarchical trace
propagation through the service for **both** worker kinds, the windowed
``GET /metrics`` document, pool prewarming, the catalog's v1→v2
``ingested_at`` migration with ``since=`` / ``until=`` time windows, and
the harness table flattener's two document generations.
"""

from __future__ import annotations

import gc
import sqlite3
import sys
import time
import warnings
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.api.requests import AnalysisRequest
from repro.engine.executor import ParallelExecutor
from repro.harness.tables import metrics_rows
from repro.index import IndexRecord, MotifIndex, QuerySpec
from repro.service import BackgroundService, ServiceClient, ServiceConfig


def _process_pools_work() -> bool:
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return np.cumsum(np.random.default_rng(7).standard_normal(512))


# --------------------------------------------------------------------- #
# the metrics registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_metrics_are_idempotent_by_name(self):
        registry = obs.MetricsRegistry(enabled=True)
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("a.g") is registry.gauge("a.g")
        assert registry.histogram("a.h") is registry.histogram("a.h")
        scope = registry.scope("a")
        assert scope.counter("b") is registry.counter("a.b")

    def test_snapshot_and_delta(self):
        registry = obs.MetricsRegistry(enabled=True)
        counter = registry.counter("layer.events")
        gauge = registry.gauge("layer.level")
        hist = registry.histogram("layer.seconds")
        counter.inc(3)
        gauge.set(1.5)
        hist.observe(0.01)
        first = registry.snapshot()
        counter.inc(2)
        gauge.set(9.0)
        hist.observe(0.02)
        hist.observe(0.03)
        second = registry.snapshot()
        delta = obs.snapshot_delta(second, first)
        # Counters and histograms subtract; gauges stay current-value.
        assert delta["counters"]["layer.events"] == 2
        assert delta["gauges"]["layer.level"] == 9.0
        assert delta["histograms"]["layer.seconds"]["count"] == 2
        assert delta["since"] == first["at"]
        # A gauge untouched inside the window stays out of the delta, so
        # merging a worker's delta can never clobber a parent-set gauge
        # with the worker's import-time 0.0.
        registry.gauge("layer.idle").set(0.0)  # declared, never re-set
        third = registry.snapshot()
        quiet = obs.snapshot_delta(registry.snapshot(), third)
        assert "layer.idle" not in quiet["gauges"]
        parent = obs.MetricsRegistry(enabled=True)
        parent.gauge("layer.idle").set(42.0)
        parent.merge_snapshot(quiet)
        assert parent.snapshot()["gauges"]["layer.idle"] == 42.0
        # A delta against nothing is the full snapshot.
        full = obs.snapshot_delta(second, None)
        assert full["counters"]["layer.events"] == 5

    def test_merge_is_associative(self):
        def snap(events, level, observations):
            registry = obs.MetricsRegistry(enabled=True)
            registry.counter("c.events").inc(events)
            registry.gauge("g.level").set(level)
            hist = registry.histogram("h.seconds")
            for value in observations:
                hist.observe(value)
            return registry.snapshot()

        a = snap(1, 0.5, [0.001])
        b = snap(10, 1.5, [0.01, 0.1])
        c = snap(100, 2.5, [1.0])
        left = obs.merge_snapshots(obs.merge_snapshots(a, b), c)
        right = obs.merge_snapshots(a, obs.merge_snapshots(b, c))
        assert left == right
        assert left["counters"]["c.events"] == 111
        assert left["gauges"]["g.level"] == 2.5
        assert left["histograms"]["h.seconds"]["count"] == 4

    def test_merge_snapshot_folds_a_worker_delta_into_the_live_registry(self):
        parent = obs.MetricsRegistry(enabled=True)
        parent.counter("w.done").inc(1)
        worker = obs.MetricsRegistry(enabled=True)
        worker.counter("w.done").inc(4)
        worker.gauge("w.rate").set(7.5)
        worker.histogram("w.seconds").observe(0.2)
        parent.merge_snapshot(worker.snapshot())
        merged = parent.snapshot()
        assert merged["counters"]["w.done"] == 5
        assert merged["gauges"]["w.rate"] == 7.5
        assert merged["histograms"]["w.seconds"]["count"] == 1

    def test_group_families_splits_on_the_first_dot(self):
        registry = obs.MetricsRegistry(enabled=True)
        registry.counter("engine.executor.pool_spawns").inc()
        registry.gauge("valmod.pruning_power.overall").set(0.9)
        families = obs.group_families(registry.snapshot())
        assert families["engine"]["counters"]["executor.pool_spawns"] == 1
        assert families["valmod"]["gauges"]["pruning_power.overall"] == 0.9

    def test_disabled_recording_allocates_nothing(self):
        registry = obs.MetricsRegistry(enabled=False)
        counter = registry.counter("quiet.count")
        gauge = registry.gauge("quiet.level")
        hist = registry.histogram("quiet.seconds")
        level = 1.25
        # Warm every code path once, then measure.
        counter.inc()
        gauge.set(level)
        hist.observe(level)
        gc.collect()
        before = sys.getallocatedblocks()
        counter.inc()
        counter.inc(2)
        gauge.set(level)
        hist.observe(level)
        counter.inc()
        after = sys.getallocatedblocks()
        # The ``before`` int is itself one live heap block at measurement
        # time; the recording calls must add nothing on top of it.
        assert after - before <= 1
        # And nothing was recorded.
        assert counter.value == 0
        assert gauge.value == 0.0
        assert hist.count == 0

    def test_reenabling_records_again(self):
        registry = obs.MetricsRegistry(enabled=False)
        counter = registry.counter("toggled")
        counter.inc()
        assert counter.value == 0
        registry.set_enabled(True)
        counter.inc()
        assert counter.value == 1


# --------------------------------------------------------------------- #
# the freezable clock
# --------------------------------------------------------------------- #
class TestClock:
    def test_freeze_and_unfreeze(self):
        obs.freeze(1234.5)
        try:
            assert obs.now() == 1234.5
        finally:
            obs.unfreeze()
        assert abs(obs.now() - time.time()) < 5.0

    def test_frozen_context_manager(self):
        with obs.frozen(99.0):
            assert obs.now() == 99.0
        assert obs.now() != 99.0


# --------------------------------------------------------------------- #
# trace plumbing
# --------------------------------------------------------------------- #
class TestTraceHeader:
    def test_round_trip(self):
        with obs.trace() as collector:
            with obs.span("root"):
                header = obs.format_trace_header(obs.current_payload())
                assert header is not None
                payload = obs.parse_trace_header(header)
        assert payload is not None
        want_trace, trace_id, parent, _, pid = payload
        assert want_trace is True
        assert pid is None  # the far side of HTTP is never "same process"
        (event,) = collector.spans()
        assert event["trace_id"] == trace_id
        assert event["span_id"] == parent

    def test_absent_and_malformed_headers_parse_to_none(self):
        assert obs.parse_trace_header(None) is None
        assert obs.parse_trace_header("") is None
        assert obs.parse_trace_header("no-slash") is None


def _ancestor_names(events, leaf):
    """Span names from ``leaf`` up to its root, leaf first."""
    by_id = {event["span_id"]: event for event in events}
    names = []
    current = leaf
    seen = set()
    while current is not None and current["span_id"] not in seen:
        seen.add(current["span_id"])
        names.append(current["name"])
        parent = current.get("parent_id")
        current = by_id.get(parent) if parent is not None else None
    return names


class TestServiceTracePropagation:
    def _run_traced_request(self, config, values):
        with obs.trace() as collector:
            with BackgroundService(config) as background:
                client = ServiceClient(port=background.port, timeout=300)
                request = AnalysisRequest(
                    kind="matrix_profile", params={"window": 16}
                )
                client.analyze(values, request)
                worker_kind = client.stats()["worker_kind"]
        return collector.spans(), worker_kind

    def _assert_single_tree(self, events, *, expect_names):
        assert events, "tracing produced no spans"
        trace_ids = {event["trace_id"] for event in events}
        assert len(trace_ids) == 1, f"expected one trace tree, got {trace_ids}"
        names = {event["name"] for event in events}
        for expected in expect_names:
            assert expected in names, f"missing span {expected!r} in {sorted(names)}"
        # Every kernel sweep must chain up to the client's root span.
        sweeps = [event for event in events if event["name"] == "kernel.sweep"]
        assert sweeps
        for sweep in sweeps:
            chain = _ancestor_names(events, sweep)
            assert chain[-1] == "client.analyze", chain

    def test_thread_workers_join_the_client_trace(self, values):
        events, worker_kind = self._run_traced_request(
            ServiceConfig(port=0, workers=1), values
        )
        assert worker_kind == "thread"
        self._assert_single_tree(
            events,
            expect_names=(
                "client.analyze",
                "service.request",
                "service.queue",
                "session.run",
                "kernel.sweep",
            ),
        )

    @pytest.mark.skipif(
        not _process_pools_work(), reason="process pools unavailable here"
    )
    def test_process_workers_join_the_client_trace(self, values):
        events, worker_kind = self._run_traced_request(
            ServiceConfig(port=0, workers=1, worker_kind="process"), values
        )
        if worker_kind != "process":
            pytest.skip("the service degraded to thread workers")
        self._assert_single_tree(
            events,
            expect_names=(
                "client.analyze",
                "service.request",
                "service.worker",
                "session.run",
                "kernel.sweep",
            ),
        )
        # The whole point of propagation: spans from more than one process
        # in one tree.
        assert len({event["pid"] for event in events}) >= 2

    def test_chrome_document_shape(self, values):
        with obs.trace() as collector:
            with obs.span("outer"):
                with obs.span("inner", detail=1):
                    pass
        document = collector.chrome_document()
        assert {event["ph"] for event in document["traceEvents"]} == {"X"}
        names = {event["name"] for event in document["traceEvents"]}
        assert names == {"outer", "inner"}


# --------------------------------------------------------------------- #
# the windowed /metrics document
# --------------------------------------------------------------------- #
class TestMetricsWindowing:
    def test_since_token_yields_a_delta(self, values):
        with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
            client = ServiceClient(port=background.port, timeout=300)
            first = client.metrics()
            assert first["window"] == "full"
            assert first["token"]
            # The PR 8 shape is intact alongside the registry view.
            assert len(first["bounds"]) == 25
            assert "families" in first
            client.analyze(
                values, AnalysisRequest(kind="matrix_profile", params={"window": 16})
            )
            second = client.metrics(since=first["token"])
            assert second["window"] == "delta"
            service = second["families"]["service"]
            # Exactly one job completed inside the window.
            assert service["counters"]["requests_completed"] == 1
            # An unknown/expired token degrades to the full view.
            third = client.metrics(since="not-a-token")
            assert third["window"] == "full"
            assert (
                third["families"]["service"]["counters"]["requests_completed"]
                >= 1
            )

    def test_latency_histograms_are_per_service_instance(self, values):
        request = AnalysisRequest(kind="matrix_profile", params={"window": 16})
        with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
            ServiceClient(port=background.port, timeout=300).analyze(
                values, request
            )
        # A second, fresh service must not see the first one's counts.
        with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
            client = ServiceClient(port=background.port, timeout=300)
            client.analyze(values, request)
            document = client.metrics()
            assert document["kinds"]["matrix_profile"]["total"]["count"] == 1


# --------------------------------------------------------------------- #
# pool prewarming
# --------------------------------------------------------------------- #
class TestPrewarm:
    @pytest.mark.skipif(
        not _process_pools_work(), reason="process pools unavailable here"
    )
    def test_executor_prewarm_spawns_the_pool(self):
        executor = ParallelExecutor(2)
        try:
            if not executor.uses_processes:
                pytest.skip("no process pool on this platform")
            elapsed = executor.prewarm()
            assert elapsed > 0.0
            assert (
                obs.snapshot()["gauges"].get("engine.executor.prewarm_seconds", 0.0)
                > 0.0
            )
        finally:
            executor.close()

    @pytest.mark.skipif(
        not _process_pools_work(), reason="process pools unavailable here"
    )
    def test_service_prewarm_config(self, values):
        config = ServiceConfig(
            port=0, workers=1, worker_kind="process", prewarm=True
        )
        with BackgroundService(config) as background:
            client = ServiceClient(port=background.port, timeout=300)
            stats = client.stats()
            if stats["worker_kind"] != "process":
                pytest.skip("the service degraded to thread workers")
            # A job first: the worker's harvested metrics delta must not
            # clobber the parent-set gauge with its own untouched 0.0.
            client.analyze(
                values,
                AnalysisRequest(kind="matrix_profile", params={"window": 16}),
            )
            document = client.metrics()
            assert (
                document["families"]["service"]["gauges"]["prewarm_seconds"] > 0.0
            )

    def test_thread_services_ignore_prewarm(self):
        # prewarm with thread workers is a documented no-op, not an error.
        with BackgroundService(
            ServiceConfig(port=0, workers=1, prewarm=True)
        ) as background:
            client = ServiceClient(port=background.port, timeout=60)
            assert client.stats()["worker_kind"] == "thread"


# --------------------------------------------------------------------- #
# catalog time windows + v1 -> v2 migration
# --------------------------------------------------------------------- #
def _record(digest="a" * 40, kind="motif", length=32, score=1.0, start=0, **over):
    fields = {
        "series_digest": digest,
        "series_name": "series",
        "kind": kind,
        "length": length,
        "score": score,
        "start": start,
        "end": start + length,
        "partner": start + 100,
        "distance": score * np.sqrt(length),
        "algorithm": "stomp",
        "result_key": "key",
    }
    fields.update(over)
    return IndexRecord(**fields)


class TestCatalogTimeWindows:
    def test_rows_are_stamped_with_the_freezable_clock(self, tmp_path):
        with MotifIndex(tmp_path / "catalog.db") as index:
            with obs.frozen(1000.0):
                index.add([_record(start=0)])
            with obs.frozen(2000.0):
                index.add([_record(start=300)])
            rows = index.query(QuerySpec())
            assert {row["ingested_at"] for row in rows} == {1000.0, 2000.0}
            early = index.query(QuerySpec(since=500.0, until=1500.0))
            assert [row["start"] for row in early] == [0]
            late = index.query(QuerySpec(since=1500.0))
            assert [row["start"] for row in late] == [300]
            assert index.query(QuerySpec(until=500.0)) == []

    def test_reingesting_keeps_the_original_stamp(self, tmp_path):
        with MotifIndex(tmp_path / "catalog.db") as index:
            with obs.frozen(1000.0):
                assert index.add([_record()]) == 1
            with obs.frozen(2000.0):
                assert index.add([_record()]) == 0  # duplicate row identity
            (row,) = index.query(QuerySpec())
            assert row["ingested_at"] == 1000.0

    def test_since_until_parse_and_validate(self):
        spec = QuerySpec.from_params({"since": "1000", "until": "2000"})
        assert spec.since == 1000.0 and spec.until == 2000.0
        iso = QuerySpec.from_params({"since": "2026-08-07"})
        assert iso.since is not None and iso.since > 0
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            QuerySpec(since=2.0, until=1.0)
        with pytest.raises(InvalidParameterError):
            QuerySpec.from_params({"since": "not-a-time"})

    def test_v1_catalog_migrates_in_place(self, tmp_path):
        path = tmp_path / "catalog.db"
        with MotifIndex(path) as index:
            index.add([_record()])
        # Downgrade the file to the v1 shape: no ingested_at column.
        conn = sqlite3.connect(path)
        conn.execute("ALTER TABLE records DROP COLUMN ingested_at")
        conn.execute("UPDATE meta SET value='1' WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with MotifIndex(path) as index:
                # The corpus survives the migration...
                assert index.count() == 1
                (row,) = index.query(QuerySpec())
                # ...with an unknown (NULL) ingest time...
                assert row["ingested_at"] is None
                # ...which every time window excludes by SQL comparison
                # semantics.
                assert index.query(QuerySpec(since=0.0)) == []
                # New rows are stamped normally alongside migrated ones.
                with obs.frozen(5000.0):
                    index.add([_record(start=700)])
                stamped = index.query(QuerySpec(since=4000.0))
                assert [row["start"] for row in stamped] == [700]


# --------------------------------------------------------------------- #
# harness table flattening: both document generations
# --------------------------------------------------------------------- #
class TestMetricsRows:
    _OLD_DOCUMENT = {
        "bounds": [0.1, 1.0],
        "phases": ["total"],
        "kinds": {"matrix_profile": {"total": {"count": 2, "sum": 0.4, "counts": [2, 0, 0]}}},
    }

    def test_old_shape_still_flattens(self):
        rows = metrics_rows(self._OLD_DOCUMENT)
        assert [(row["kind"], row["phase"], row["count"]) for row in rows] == [
            ("matrix_profile", "total", 2)
        ]

    def test_extended_shape_is_backwards_compatible_by_default(self):
        document = {
            **self._OLD_DOCUMENT,
            "families": {
                "session": {
                    "counters": {},
                    "gauges": {},
                    "histograms": {
                        "compute_seconds": {
                            "bounds": [0.5],
                            "count": 1,
                            "sum": 0.2,
                            "counts": [1, 0],
                        }
                    },
                }
            },
        }
        default_rows = metrics_rows(document)
        assert {row["phase"] for row in default_rows} == {"total"}
        extended = metrics_rows(document, include_families=True)
        assert ("session", "compute_seconds") in {
            (row["kind"], row["phase"]) for row in extended
        }
        session_row = next(row for row in extended if row["kind"] == "session")
        # Quantiles come from the histogram's own bounds.
        assert session_row["p50"] == 0.5

    def test_service_family_is_not_duplicated(self):
        document = {
            **self._OLD_DOCUMENT,
            "families": {
                "service": {
                    "counters": {},
                    "gauges": {},
                    "histograms": {
                        "matrix_profile.total": {
                            "bounds": [0.1, 1.0],
                            "count": 2,
                            "sum": 0.4,
                            "counts": [2, 0, 0],
                        }
                    },
                }
            },
        }
        rows = metrics_rows(document, include_families=True)
        assert len(rows) == 1  # the kinds row only
