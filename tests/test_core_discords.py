"""Tests for the variable-length discord extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.discords import variable_length_discords
from repro.exceptions import InvalidParameterError
from repro.generators import generate_ecg
from repro.series.dataseries import DataSeries


@pytest.fixture(scope="module")
def anomalous_ecg() -> tuple[DataSeries, int, int]:
    """An ECG with one corrupted beat; returns (series, anomaly_start, anomaly_length)."""
    base = generate_ecg(1500, beat_period=100, noise_level=0.01, random_state=4)
    values = np.array(base.values)
    start, length = 700, 100
    time_axis = np.arange(length)
    values[start : start + length] = (
        values[start : start + length][::-1] * 0.5
        + 0.4 * np.sin(2 * np.pi * 2 * time_axis / length)
    )
    return DataSeries(values, name="anomalous-ecg"), start, length


class TestVariableLengthDiscords:
    def test_returns_requested_count(self, anomalous_ecg):
        series, _, _ = anomalous_ecg
        discords = variable_length_discords(series, 50, 120, k=3, length_step=35)
        assert 1 <= len(discords) <= 3

    def test_sorted_by_normalized_distance(self, anomalous_ecg):
        series, _, _ = anomalous_ecg
        discords = variable_length_discords(series, 50, 120, k=3, length_step=35)
        values = [d.normalized_distance for d in discords]
        assert values == sorted(values, reverse=True)

    def test_top_discord_overlaps_anomaly(self, anomalous_ecg):
        series, start, length = anomalous_ecg
        discords = variable_length_discords(series, 50, 120, k=1, length_step=35)
        top = discords[0]
        assert top.offset < start + length and start < top.offset + top.window

    def test_discords_are_spatially_distinct(self, anomalous_ecg):
        series, _, _ = anomalous_ecg
        discords = variable_length_discords(series, 50, 120, k=3, length_step=35)
        for i in range(len(discords)):
            for j in range(i + 1, len(discords)):
                separation = min(discords[i].window, discords[j].window) // 2
                assert abs(discords[i].offset - discords[j].offset) > separation

    def test_lengths_within_range(self, anomalous_ecg):
        series, _, _ = anomalous_ecg
        discords = variable_length_discords(series, 50, 120, k=3, length_step=35)
        for discord in discords:
            assert 50 <= discord.window <= 120

    def test_as_dict(self, anomalous_ecg):
        series, _, _ = anomalous_ecg
        discord = variable_length_discords(series, 50, 120, k=1, length_step=70)[0]
        payload = discord.as_dict()
        assert set(payload) == {
            "offset",
            "window",
            "distance",
            "normalized_distance",
            "nearest_neighbor",
        }

    def test_invalid_parameters(self, anomalous_ecg):
        series, _, _ = anomalous_ecg
        with pytest.raises(InvalidParameterError):
            variable_length_discords(series, 50, 120, k=0)
        with pytest.raises(InvalidParameterError):
            variable_length_discords(series, 50, 120, k=1, length_step=0)
