"""Tests for length-normalised ranking, deduplication and motif sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.motif_sets import expand_motif_pair
from repro.core.ranking import (
    deduplicate_pairs,
    pairs_describe_same_event,
    rank_motif_pairs,
)
from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.profile import MotifPair


def _pair(offset_a: int, offset_b: int, window: int, distance: float) -> MotifPair:
    return MotifPair(distance=distance, offset_a=offset_a, offset_b=offset_b, window=window)


class TestSameEventHeuristic:
    def test_identical_pairs(self):
        a = _pair(10, 200, 32, 1.0)
        assert pairs_describe_same_event(a, a)

    def test_nested_pairs_of_different_lengths(self):
        short = _pair(100, 500, 32, 1.0)
        long = _pair(90, 490, 64, 2.0)
        assert pairs_describe_same_event(short, long)

    def test_crossed_members_still_match(self):
        first = _pair(100, 500, 32, 1.0)
        second = _pair(498, 102, 32, 1.1)
        assert pairs_describe_same_event(first, second)

    def test_disjoint_pairs(self):
        assert not pairs_describe_same_event(_pair(0, 300, 32, 1.0), _pair(600, 900, 32, 1.0))

    def test_partial_overlap_below_threshold(self):
        first = _pair(100, 500, 32, 1.0)
        second = _pair(130, 530, 32, 1.0)  # only 2 points overlap
        assert not pairs_describe_same_event(first, second)

    def test_invalid_fraction(self):
        with pytest.raises(InvalidParameterError):
            pairs_describe_same_event(_pair(0, 100, 8, 1.0), _pair(0, 100, 8, 1.0), overlap_fraction=0.0)


class TestRanking:
    def test_sorted_by_normalized_distance(self):
        pairs = [
            _pair(0, 100, 25, 5.0),   # dn = 1.0
            _pair(300, 400, 100, 5.0),  # dn = 0.5
            _pair(600, 700, 4, 1.0),  # dn = 0.5
        ]
        ranked = rank_motif_pairs(pairs, distinct_events=False)
        assert [pair.normalized_distance for pair in ranked] == sorted(
            pair.normalized_distance for pair in pairs
        )
        # ties broken in favour of the longer pattern
        assert ranked[0].window == 100

    def test_k_limits_output(self):
        pairs = [_pair(i * 100, i * 100 + 50, 10, float(i)) for i in range(1, 6)]
        assert len(rank_motif_pairs(pairs, 2, distinct_events=False)) == 2

    def test_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            rank_motif_pairs([], 0)

    def test_deduplication_keeps_best(self):
        best = _pair(100, 500, 64, 1.0)
        duplicate = _pair(102, 502, 32, 3.0)
        other = _pair(900, 1200, 32, 2.0)
        ranked = rank_motif_pairs([duplicate, best, other], distinct_events=True)
        assert best in ranked
        assert duplicate not in ranked
        assert other in ranked

    def test_deduplicate_preserves_order(self):
        pairs = [_pair(0, 500, 32, 1.0), _pair(2, 502, 32, 1.1), _pair(900, 1300, 32, 1.2)]
        kept = deduplicate_pairs(pairs)
        assert kept == [pairs[0], pairs[2]]

    def test_empty_input(self):
        assert rank_motif_pairs([]) == []


class TestMotifSets:
    def test_contains_pair_members(self, planted_series):
        series, truth = planted_series
        result = valmod(series, 40, 56, top_k=1)
        best = result.best_motif()
        motif_set = expand_motif_pair(series, best)
        assert best.offset_a in motif_set.occurrences
        assert best.offset_b in motif_set.occurrences
        assert len(motif_set.occurrences) == len(motif_set.distances)
        assert motif_set.window == best.window

    def test_occurrences_within_radius(self, small_ecg_series):
        result = valmod(small_ecg_series, 30, 40, top_k=1)
        best = result.best_motif()
        motif_set = expand_motif_pair(small_ecg_series, best, radius_factor=3.0)
        for offset, distance in zip(motif_set.occurrences, motif_set.distances):
            assert distance <= motif_set.radius + 1e-9
        assert motif_set.normalized_radius == pytest.approx(
            motif_set.radius / np.sqrt(motif_set.window)
        )

    def test_occurrences_do_not_trivially_match_each_other(self, small_ecg_series):
        result = valmod(small_ecg_series, 30, 40, top_k=1)
        best = result.best_motif()
        motif_set = expand_motif_pair(small_ecg_series, best, radius_factor=3.0)
        offsets = motif_set.occurrences
        radius = best.window // 4
        for i in range(len(offsets)):
            for j in range(i + 1, len(offsets)):
                assert abs(offsets[i] - offsets[j]) > radius

    def test_explicit_radius_and_cap(self, small_ecg_series):
        result = valmod(small_ecg_series, 30, 40, top_k=1)
        best = result.best_motif()
        capped = expand_motif_pair(
            small_ecg_series, best, radius=100.0, max_occurrences=3
        )
        assert len(capped) == 3

    def test_all_heartbeats_recovered(self, small_ecg_series):
        # every beat of the synthetic ECG should be similar to the best pair
        beat_starts = small_ecg_series.metadata["beat_starts"]
        result = valmod(small_ecg_series, 40, 56, top_k=1)
        best = result.best_motif()
        motif_set = expand_motif_pair(small_ecg_series, best, radius_factor=3.0)
        usable_beats = [
            start for start in beat_starts if start + best.window <= len(small_ecg_series)
        ]
        recovered = sum(
            1
            for start in usable_beats
            # the motif may be phase-shifted w.r.t. the annotated beat onset,
            # so an occurrence within one window length counts as the beat
            if any(abs(start - offset) <= best.window for offset in motif_set.occurrences)
        )
        assert recovered >= len(usable_beats) // 2

    def test_invalid_parameters(self, small_ecg_series):
        pair = MotifPair(distance=1.0, offset_a=0, offset_b=100, window=30)
        with pytest.raises(InvalidParameterError):
            expand_motif_pair(small_ecg_series, pair, radius=-1.0)
        with pytest.raises(InvalidParameterError):
            expand_motif_pair(small_ecg_series, pair, radius_factor=0.0)
        with pytest.raises(InvalidParameterError):
            expand_motif_pair(small_ecg_series, pair, max_occurrences=1)
        too_long = MotifPair(distance=1.0, offset_a=0, offset_b=10, window=10_000)
        with pytest.raises(InvalidParameterError):
            expand_motif_pair(small_ecg_series, too_long)
