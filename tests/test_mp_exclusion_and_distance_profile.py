"""Unit tests for exclusion zones, distance profiles and MASS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.brute_force import brute_force_distance_profile
from repro.matrix_profile.distance_profile import distance_profile, distances_from_dot_products
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.matrix_profile.mass import mass
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats


class TestExclusion:
    def test_default_radius(self):
        assert default_exclusion_radius(100) == 25
        assert default_exclusion_radius(10) == 3  # ceil(10/4)
        assert default_exclusion_radius(100, factor=2) == 50

    def test_default_radius_invalid(self):
        with pytest.raises(InvalidParameterError):
            default_exclusion_radius(0)
        with pytest.raises(InvalidParameterError):
            default_exclusion_radius(10, factor=0)

    def test_apply_zone_center(self):
        distances = np.zeros(10)
        apply_exclusion_zone(distances, 5, 2)
        assert np.isinf(distances[3:8]).all()
        assert np.isfinite(distances[:3]).all()
        assert np.isfinite(distances[8:]).all()

    def test_apply_zone_clipped_at_edges(self):
        distances = np.zeros(5)
        apply_exclusion_zone(distances, 0, 3)
        assert np.isinf(distances[:4]).all()
        assert distances[4] == 0.0

    def test_apply_zone_custom_value(self):
        distances = np.zeros(5)
        apply_exclusion_zone(distances, 2, 1, value=-1.0)
        assert distances[1] == -1.0

    def test_negative_radius_raises(self):
        with pytest.raises(InvalidParameterError):
            apply_exclusion_zone(np.zeros(5), 2, -1)


class TestDistancesFromDotProducts:
    def test_matches_brute_force(self, small_random_series):
        values = small_random_series
        window = 16
        stats = SlidingStats(values)
        means, stds = stats.mean_std(window)
        query_offset = 37
        qt = sliding_dot_product(values[query_offset : query_offset + window], values)
        computed = distances_from_dot_products(
            qt, window, means[query_offset], stds[query_offset], means, stds
        )
        expected = brute_force_distance_profile(values, query_offset, window)
        np.testing.assert_allclose(computed, expected, atol=2e-5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            distances_from_dot_products(np.zeros(5), 10, 0.0, 1.0, np.zeros(4), np.ones(4))

    def test_constant_query_convention(self):
        qt = np.zeros(3)
        means = np.array([0.0, 0.0, 0.0])
        stds = np.array([1.0, 0.0, 2.0])
        distances = distances_from_dot_products(qt, 9, 0.0, 0.0, means, stds)
        assert distances[1] == 0.0  # constant vs constant
        assert distances[0] == pytest.approx(3.0)  # constant vs non-constant = sqrt(9)


class TestDistanceProfile:
    def test_matches_brute_force_everywhere(self, small_random_series):
        values = small_random_series
        window = 20
        offset = 100
        computed = distance_profile(values, offset, window, apply_exclusion=False)
        expected = brute_force_distance_profile(values, offset, window)
        np.testing.assert_allclose(computed, expected, atol=2e-5)

    def test_exclusion_zone_applied(self, small_random_series):
        profile = distance_profile(small_random_series, 50, 16)
        radius = default_exclusion_radius(16)
        assert np.isinf(profile[50 - radius : 50 + radius + 1]).all()

    def test_self_distance_zero_without_exclusion(self, small_random_series):
        profile = distance_profile(small_random_series, 50, 16, apply_exclusion=False)
        assert profile[50] == pytest.approx(0.0, abs=1e-4)

    def test_invalid_offset(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            distance_profile(small_random_series, 500, 16)


class TestMass:
    def test_mass_matches_distance_profile_for_internal_query(self, small_random_series):
        values = small_random_series
        window = 24
        offset = 40
        query = values[offset : offset + window]
        from_mass = mass(query, values)
        internal = distance_profile(values, offset, window, apply_exclusion=False)
        np.testing.assert_allclose(from_mass, internal, atol=2e-5)

    def test_mass_external_query(self, small_random_series):
        rng = np.random.default_rng(0)
        query = rng.normal(size=32)
        profile = mass(query, small_random_series)
        assert profile.shape == (small_random_series.size - 32 + 1,)
        assert np.all(profile >= 0.0)

    def test_mass_constant_query(self, small_random_series):
        profile = mass(np.full(16, 2.0), small_random_series)
        # constant query vs non-constant subsequences -> sqrt(m) everywhere
        np.testing.assert_allclose(profile, np.full(profile.size, 4.0), atol=1e-9)

    def test_mass_query_too_long(self):
        with pytest.raises(InvalidParameterError):
            mass(np.ones(10), np.ones(5))

    def test_mass_rejects_nan_query(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            mass(np.array([1.0, np.nan, 2.0]), small_random_series)
