"""Unit tests for repro.series.dataseries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.series.dataseries import DataSeries


class TestConstruction:
    def test_basic(self):
        series = DataSeries(np.array([1.0, 2.0, 3.0]), name="toy")
        assert len(series) == 3
        assert series.name == "toy"

    def test_values_read_only(self):
        series = DataSeries(np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            series.values[0] = 9.0

    def test_from_values_accepts_lists(self):
        series = DataSeries.from_values([1, 2, 3, 4], name="ints")
        assert series.values.dtype == np.float64

    def test_rejects_nan(self):
        with pytest.raises(InvalidSeriesError):
            DataSeries(np.array([1.0, np.nan]))

    def test_rejects_2d(self):
        with pytest.raises(InvalidSeriesError):
            DataSeries(np.ones((3, 2)))

    def test_rejects_too_short(self):
        with pytest.raises(InvalidSeriesError):
            DataSeries(np.array([1.0]))

    def test_rejects_bad_sampling_rate(self):
        with pytest.raises(InvalidParameterError):
            DataSeries(np.array([1.0, 2.0]), sampling_rate=0.0)


class TestSequenceProtocol:
    def test_iter_and_getitem(self):
        series = DataSeries(np.array([1.0, 2.0, 3.0]))
        assert list(series) == [1.0, 2.0, 3.0]
        assert series[1] == 2.0

    def test_slice_returns_series(self):
        series = DataSeries(np.arange(10, dtype=float), name="s")
        piece = series[2:6]
        assert isinstance(piece, DataSeries)
        assert len(piece) == 4

    def test_array_conversion(self):
        series = DataSeries(np.array([1.0, 2.0]))
        np.testing.assert_array_equal(np.asarray(series), np.array([1.0, 2.0]))

    def test_equality_and_hash(self):
        a = DataSeries(np.array([1.0, 2.0]), name="x")
        b = DataSeries(np.array([1.0, 2.0]), name="x")
        c = DataSeries(np.array([1.0, 3.0]), name="x")
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr_contains_name_and_length(self):
        series = DataSeries(np.arange(5, dtype=float), name="demo")
        text = repr(series)
        assert "demo" in text and "length=5" in text


class TestViews:
    def test_subsequence(self):
        series = DataSeries(np.arange(10, dtype=float))
        np.testing.assert_array_equal(series.subsequence(3, 4), np.array([3.0, 4.0, 5.0, 6.0]))

    def test_subsequence_out_of_bounds(self):
        series = DataSeries(np.arange(10, dtype=float))
        with pytest.raises(InvalidParameterError):
            series.subsequence(8, 5)

    def test_prefix(self):
        series = DataSeries(np.arange(10, dtype=float), name="p", sampling_rate=2.0)
        prefix = series.prefix(4)
        assert len(prefix) == 4
        assert prefix.sampling_rate == 2.0

    def test_prefix_out_of_range(self):
        series = DataSeries(np.arange(10, dtype=float))
        with pytest.raises(InvalidParameterError):
            series.prefix(11)

    def test_with_metadata_merges(self):
        series = DataSeries(np.arange(5, dtype=float), metadata={"a": 1})
        updated = series.with_metadata(b=2)
        assert updated.metadata == {"a": 1, "b": 2}
        assert series.metadata == {"a": 1}

    def test_describe(self):
        series = DataSeries(np.array([1.0, 2.0, 3.0, 4.0]))
        stats = series.describe()
        assert stats["length"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)
