"""Split/merge semantics of the mean-centered partial-profile store.

The tentpole claim of the mergeable-store refactor, pinned here:

* fragments ingested from the same per-row centered dot products merge
  into a store **bit-for-bit** identical to the serially-ingested one
  (randomized split points, seeded workloads);
* the engine's block-local ingest (each block builds a fragment inside
  its task, fragments merge in block order) reproduces the serial-sweep
  store — pairs identical, distances within 1e-12 — and the parallel
  executor path is bit-identical to the serial executor path for the
  same block plan;
* the centered store closes the last accuracy gap: VALMOD's reported
  distances at offset 1e6 now sit at ~1e-6 versus brute force (pinned at
  1e-5; the raw store contract carried ~1e-3).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro
from repro.core.partial_profile import PartialProfileStore
from repro.engine.executor import ParallelExecutor
from repro.engine.partition import partitioned_stomp
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.stomp import stomp
from repro.stats.sliding import SlidingStats

BASE = 20
CAPACITY = 8


def _series(seed: int, n: int = 320, offset: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return offset + np.cumsum(rng.normal(size=n))


def _captured_rows(values: np.ndarray, stats: SlidingStats) -> list:
    """Per-row centered dot products of the serial sweep, in row order."""
    rows = []
    stomp(
        values,
        BASE,
        stats=stats,
        profile_callback=lambda offset, qt, _d: rows.append(np.array(qt)),
    )
    return rows


def _ingested(store: PartialProfileStore, rows) -> PartialProfileStore:
    for offset, qt in enumerate(rows):
        store.ingest_centered_profile(offset, qt)
    return store


def _assert_states_identical(first: PartialProfileStore, second: PartialProfileStore):
    state_a, state_b = first.export_state(), second.export_state()
    assert state_a.keys() == state_b.keys()
    for key, value in state_a.items():
        if isinstance(value, np.ndarray):
            np.testing.assert_array_equal(value, state_b[key], err_msg=key)
        else:
            assert value == state_b[key], key


class TestSplitMergeEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_split_merge_is_bit_for_bit_serial(self, seed):
        """Fragments fed the same rows merge into the exact serial store."""
        values = _series(seed)
        stats = SlidingStats(values)
        rows = _captured_rows(values, stats)

        serial = _ingested(PartialProfileStore(values, stats, BASE, CAPACITY), rows)

        merged = PartialProfileStore(values, SlidingStats(values), BASE, CAPACITY)
        rng = np.random.default_rng(100 + seed)
        cuts = np.sort(rng.choice(np.arange(1, merged.num_profiles), 3, replace=False))
        edges = [0, *cuts.tolist(), merged.num_profiles]
        fragments = [
            merged.split((start, stop)) for start, stop in zip(edges, edges[1:])
        ]
        # Merge out of order on purpose: disjoint rows make order irrelevant.
        for fragment in reversed(fragments):
            start, stop = fragment.row_range
            for offset in range(start, stop):
                fragment.ingest_centered_profile(offset, rows[offset])
            merged.merge(fragment)

        _assert_states_identical(serial, merged)
        for length in (BASE + 2, BASE + 9):
            eval_serial = serial.evaluate(length)
            eval_merged = merged.evaluate(length)
            np.testing.assert_array_equal(eval_serial.min_indices, eval_merged.min_indices)
            np.testing.assert_array_equal(
                eval_serial.min_distances, eval_merged.min_distances
            )
            np.testing.assert_array_equal(eval_serial.valid, eval_merged.valid)

    @pytest.mark.parametrize("seed,block_size", [(5, 37), (6, 64), (7, 200)])
    def test_engine_block_ingest_matches_serial_sweep(self, seed, block_size):
        """Block-local ingest + merge vs the serial single-chain sweep:
        identical pairs, distances within 1e-11.  The two sweeps carry the
        same rows through different recurrence chains (a block starts from
        a fresh FFT seed, the monolithic sweep never does), so their dot
        products differ by a few ulps of accumulated drift; identical-plan
        comparisons — the actual merge claim — are bit-for-bit above."""
        values = _series(seed)
        stats = SlidingStats(values)
        serial = PartialProfileStore(values, stats, BASE, CAPACITY)
        stomp(values, BASE, stats=stats, ingest_store=serial)

        stats_blocked = SlidingStats(values)
        blocked = PartialProfileStore(values, stats_blocked, BASE, CAPACITY)
        partitioned_stomp(
            values,
            BASE,
            stats=stats_blocked,
            executor="serial",
            block_size=block_size,
            ingest_store=blocked,
        )

        for length in (BASE, BASE + 4, BASE + 12):
            eval_serial = serial.evaluate(length)
            eval_blocked = blocked.evaluate(length)
            np.testing.assert_array_equal(
                eval_serial.min_indices, eval_blocked.min_indices
            )
            finite = np.isfinite(eval_serial.min_distances)
            np.testing.assert_array_equal(finite, np.isfinite(eval_blocked.min_distances))
            np.testing.assert_allclose(
                eval_serial.min_distances[finite],
                eval_blocked.min_distances[finite],
                atol=1e-11,
                rtol=0,
            )

    def test_parallel_executor_ingest_is_bit_identical_to_serial_executor(self):
        """Same block plan through the process pool (worker-side fragments,
        shared-memory transport when available) and through the serial
        executor: the merged stores must match bit for bit.  On machines
        where the pool cannot start, the executor degrades to serial and
        the comparison still holds."""
        values = _series(11, n=500)
        block_size = 83

        stats_parallel = SlidingStats(values)
        parallel_store = PartialProfileStore(values, stats_parallel, BASE, CAPACITY)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ParallelExecutor(n_jobs=2) as executor:
                partitioned_stomp(
                    values,
                    BASE,
                    stats=stats_parallel,
                    executor=executor,
                    block_size=block_size,
                    ingest_store=parallel_store,
                )

        stats_serial = SlidingStats(values)
        serial_store = PartialProfileStore(values, stats_serial, BASE, CAPACITY)
        partitioned_stomp(
            values,
            BASE,
            stats=stats_serial,
            executor="serial",
            block_size=block_size,
            ingest_store=serial_store,
        )
        _assert_states_identical(parallel_store, serial_store)


class TestMergeValidation:
    def _store(self, values) -> PartialProfileStore:
        return PartialProfileStore(values, SlidingStats(values), BASE, CAPACITY)

    def test_fragment_cannot_evaluate(self):
        values = _series(20)
        fragment = self._store(values).split((0, 5))
        with pytest.raises(InvalidParameterError, match="fragment"):
            fragment.evaluate(BASE + 1)

    def test_split_range_validated(self):
        values = _series(21)
        store = self._store(values)
        with pytest.raises(InvalidParameterError):
            store.split((5, store.num_profiles + 1))

    def test_merge_rejects_overlapping_rows(self):
        values = _series(22)
        stats = SlidingStats(values)
        store = PartialProfileStore(values, stats, BASE, CAPACITY)
        stomp(values, BASE, stats=stats, ingest_store=store)
        fragment = PartialProfileStore(
            values, SlidingStats(values), BASE, CAPACITY
        ).split((0, 4))
        with pytest.raises(InvalidParameterError, match="already ingested"):
            store.merge(fragment)

    def test_merge_rejects_mismatched_configuration(self):
        values = _series(23)
        store = self._store(values)
        other = PartialProfileStore(values, SlidingStats(values), BASE, CAPACITY + 1)
        with pytest.raises(InvalidParameterError, match="capacity"):
            store.merge(other.split((0, 3)))

    def test_merge_rejects_advanced_stores(self):
        values = _series(24)
        stats = SlidingStats(values)
        store = PartialProfileStore(values, stats, BASE, CAPACITY)
        stomp(values, BASE, stats=stats, ingest_store=store)
        store.advance_to(BASE + 2)
        fragment = PartialProfileStore(
            values, SlidingStats(values), BASE, CAPACITY
        ).split((0, 3))
        with pytest.raises(InvalidParameterError, match="advanced"):
            store.merge(fragment)

    def test_split_after_advance_raises(self):
        values = _series(25)
        stats = SlidingStats(values)
        store = PartialProfileStore(values, stats, BASE, CAPACITY)
        stomp(values, BASE, stats=stats, ingest_store=store)
        store.advance_to(BASE + 1)
        with pytest.raises(InvalidParameterError, match="advanced"):
            store.split((0, 4))

    def test_ingest_outside_fragment_rows_raises(self):
        values = _series(26)
        fragment = self._store(values).split((4, 9))
        with pytest.raises(InvalidParameterError, match="row range"):
            fragment.ingest_centered_profile(2, np.zeros(fragment.num_profiles))


class TestCenteredStoreAccuracy:
    """The offset-1e6 drift regression of the acceptance criteria."""

    OFFSET = 1e6

    @pytest.fixture(scope="class")
    def offset_series(self) -> np.ndarray:
        rng = np.random.default_rng(2018)
        return self.OFFSET + np.cumsum(rng.normal(size=700))

    def test_store_minima_match_brute_force_at_offset(self, offset_series):
        """Valid retained minima at offset 1e6: ≤1e-5 absolute vs brute
        force (the raw store carried ~1e-3 relative error here)."""
        stats = SlidingStats(offset_series)
        store = PartialProfileStore(offset_series, stats, 48, 16)
        stomp(offset_series, 48, stats=stats, ingest_store=store)
        for length in (50, 56, 64):
            evaluation = store.evaluate(length)
            oracle = brute_force_matrix_profile(
                offset_series, length, exclusion_radius=default_exclusion_radius(length)
            )
            valid = np.flatnonzero(evaluation.valid)
            assert valid.size > 0
            np.testing.assert_allclose(
                evaluation.min_distances[valid],
                oracle.distances[valid],
                atol=1e-5,
                rtol=0,
            )

    def test_valmod_reported_distances_at_offset(self, offset_series):
        """VALMOD end-to-end at offset 1e6: every reported pair's distance
        within 1e-5 of the definition-level distance of that pair."""
        from repro.stats.distance import znorm_euclidean

        result = repro.valmod(offset_series, 48, 52)
        for length in result.lengths:
            for pair in result.length_results[length].motifs:
                exact = znorm_euclidean(
                    offset_series[pair.offset_a : pair.offset_a + length],
                    offset_series[pair.offset_b : pair.offset_b + length],
                )
                np.testing.assert_allclose(pair.distance, exact, atol=1e-5, rtol=1e-6)

    def test_engine_valmod_matches_serial_at_offset(self, offset_series):
        """The engine-routed base pass discovers the same pairs with the
        same distances as the serial oracle at the hostile offset."""
        serial = repro.valmod(offset_series, 48, 51)
        engine = repro.valmod(offset_series, 48, 51, engine="serial", block_size=128)
        for length in serial.lengths:
            best_serial = serial.length_results[length].motifs[0]
            best_engine = engine.length_results[length].motifs[0]
            assert {best_serial.offset_a, best_serial.offset_b} == {
                best_engine.offset_a,
                best_engine.offset_b,
            }, length
            np.testing.assert_allclose(
                best_serial.distance, best_engine.distance, rtol=1e-9
            )
