"""Property / round-trip substrate over the whole envelope surface.

For **every** algorithm in the registry this module generates randomized
valid :class:`~repro.api.requests.AnalysisRequest` documents and asserts the
three invariants the service story rests on:

* **canonical-key stability** — the cache key is independent of parameter
  insertion order and of the algo spelling (aliases resolve to the same
  slot);
* **JSON round-trip identity** — a request survives
  ``to_json``/``from_json`` unchanged (same canonical key, same dict form);
* **three-way result agreement** — the service path (HTTP → queue → worker
  → envelope → JSON → client), the direct session path and the flat
  function oracle produce the same answer.

The series are deliberately tiny (a few hundred points): the point is
coverage of the dispatch surface, not algorithmic scale.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

import repro
from repro.api.registry import iter_specs, resolve_algorithm
from repro.api.requests import AnalysisRequest, canonical_cache_key
from repro.baselines.brute_force_range import brute_force_range
from repro.baselines.quick_motif import quick_motif_range
from repro.core.discords import variable_length_discords
from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.profile import MatrixProfile
from repro.service import BackgroundService, ServiceClient, ServiceConfig

SERIES_LENGTH = 280
WINDOW_RANGE = (12, 28)
MOTIF_RANGE_START = (14, 18)
MOTIF_RANGE_SPAN = (2, 4)


@pytest.fixture(scope="module")
def series() -> np.ndarray:
    return np.cumsum(np.random.default_rng(42).standard_normal(SERIES_LENGTH))


@pytest.fixture(scope="module")
def other_series() -> np.ndarray:
    return np.cumsum(np.random.default_rng(43).standard_normal(SERIES_LENGTH))


@pytest.fixture(scope="module")
def service():
    with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
        yield ServiceClient(port=background.port)


def _random_request(
    spec, rng: random.Random, other: np.ndarray
) -> AnalysisRequest:
    """A randomized valid request for one registered algorithm."""
    if spec.kind == "matrix_profile":
        params = {"window": rng.randint(*WINDOW_RANGE)}
        if spec.key in ("scrimp", "scrimp++", "stamp"):
            params["random_state"] = 0  # pin tie-breaking across the paths
        return AnalysisRequest(kind=spec.kind, algo=spec.key, params=params)
    if spec.kind in ("motifs", "discords", "pan_profile"):
        min_length = rng.randint(*MOTIF_RANGE_START)
        max_length = min_length + rng.randint(*MOTIF_RANGE_SPAN)
        params = {"min_length": min_length, "max_length": max_length}
        return AnalysisRequest(kind=spec.kind, algo=spec.key, params=params)
    if spec.kind == "ab_join":
        return AnalysisRequest(
            kind=spec.kind,
            algo=spec.key,
            params={"other": other.tolist(), "window": rng.randint(*WINDOW_RANGE)},
        )
    if spec.kind == "mpdist":
        return AnalysisRequest(
            kind=spec.kind,
            algo=spec.key,
            params={
                "other": other.tolist(),
                "window": rng.randint(*WINDOW_RANGE),
                "percentile": rng.choice([0.02, 0.05, 0.1]),
            },
        )
    raise AssertionError(f"no request generator for kind {spec.kind!r}")


def _flat_oracle(spec, values: np.ndarray, params: dict):
    """The flat-function answer to one request (the pre-session substrate)."""
    params = dict(params)
    if spec.kind == "matrix_profile":
        window = params.pop("window")
        flat = {
            "stomp": repro.stomp,
            "scrimp": repro.scrimp,
            "scrimp++": repro.scrimp_pp,
            "stamp": repro.stamp,
            "brute": brute_force_matrix_profile,
        }[spec.key]
        return flat(values, window, **params)
    if spec.kind == "motifs":
        flat = {
            "valmod": repro.valmod,
            "stomp_range": repro.stomp_range,
            "moen": repro.moen,
            "quick_motif": quick_motif_range,
            "brute": brute_force_range,
        }[spec.key]
        return flat(values, params.pop("min_length"), params.pop("max_length"), **params)
    if spec.kind == "discords":
        return variable_length_discords(
            values, params.pop("min_length"), params.pop("max_length"), **params
        )
    if spec.kind == "pan_profile":
        return repro.skimp(
            values, params.pop("min_length"), params.pop("max_length"), **params
        )
    if spec.kind == "ab_join":
        other = np.asarray(params.pop("other"), dtype=np.float64)
        return repro.ab_join(values, other, params.pop("window"), **params)
    if spec.kind == "mpdist":
        other = np.asarray(params.pop("other"), dtype=np.float64)
        return repro.mpdist(values, other, params.pop("window"), **params)
    raise AssertionError(f"no oracle for kind {spec.kind!r}")


def _motif_view(payload):
    if hasattr(payload, "length_results"):  # a full in-process ValmodResult
        return {
            length: list(payload.length_results[length].motifs)
            for length in payload.lengths
        }
    return {length: payload.motifs_at(length) for length in payload.lengths}


def _assert_equivalent(kind: str, left, right) -> None:
    """Payload equality, uniform across the registry's payload shapes."""
    if isinstance(left, MatrixProfile):
        np.testing.assert_allclose(left.distances, right.distances, atol=1e-8)
        np.testing.assert_array_equal(left.indices, right.indices)
        return
    if kind == "motifs":
        left_view, right_view = _motif_view(left), _motif_view(right)
        assert sorted(left_view) == sorted(right_view)
        for length, pairs in left_view.items():
            others = right_view[length]
            assert len(pairs) == len(others)
            for pair, mirror in zip(pairs, others):
                assert pair.window == mirror.window
                assert {pair.offset_a, pair.offset_b} == {
                    mirror.offset_a,
                    mirror.offset_b,
                }
                np.testing.assert_allclose(pair.distance, mirror.distance, atol=1e-8)
        return
    if kind == "discords":
        assert len(left) == len(right)
        for discord, mirror in zip(left, right):
            left_dict, right_dict = discord.as_dict(), mirror.as_dict()
            assert left_dict.keys() == right_dict.keys()
            for field in left_dict:
                np.testing.assert_allclose(
                    left_dict[field], right_dict[field], atol=1e-8
                )
        return
    if kind == "pan_profile":
        np.testing.assert_array_equal(left.lengths, right.lengths)
        np.testing.assert_allclose(
            left.normalized_profiles, right.normalized_profiles, atol=1e-8
        )
        return
    if kind == "ab_join":
        np.testing.assert_allclose(left.distances, right.distances, atol=1e-8)
        np.testing.assert_array_equal(left.indices, right.indices)
        return
    if kind == "mpdist":
        np.testing.assert_allclose(float(left), float(right), atol=1e-8)
        return
    raise AssertionError(f"no equivalence rule for kind {kind!r}")


# --------------------------------------------------------------------- #
# canonical-key and JSON round-trip properties
# --------------------------------------------------------------------- #
def test_canonical_key_is_insertion_order_independent(series, other_series):
    rng = random.Random(7)
    for spec in iter_specs():
        request = _random_request(spec, rng, other_series)
        items = list(request.params.items())
        for seed in range(3):
            random.Random(seed).shuffle(items)
            shuffled = AnalysisRequest(
                kind=request.kind, algo=request.algo, params=dict(items)
            )
            assert shuffled.cache_key() == request.cache_key(), spec.key


def test_canonical_key_is_alias_independent(series):
    for spec in iter_specs():
        for alias in spec.aliases:
            canonical = AnalysisRequest(
                kind=spec.kind, algo=spec.key, params={"window": 16}
            )
            aliased = AnalysisRequest(
                kind=spec.kind, algo=alias, params={"window": 16}
            )
            resolved = resolve_algorithm(spec.kind, alias)
            assert resolved is spec
            assert canonical_cache_key(resolved, aliased) == canonical_cache_key(
                spec, canonical
            )


def test_default_algo_shares_the_canonical_slot():
    explicit = AnalysisRequest(
        kind="matrix_profile", algo="stomp", params={"window": 16}
    )
    implicit = AnalysisRequest(kind="matrix_profile", params={"window": 16})
    spec = resolve_algorithm("matrix_profile", None)
    assert canonical_cache_key(spec, implicit) == canonical_cache_key(spec, explicit)


def test_request_json_round_trip_identity(series, other_series):
    rng = random.Random(11)
    for spec in iter_specs():
        request = _random_request(spec, rng, other_series)
        revived = AnalysisRequest.from_json(request.to_json())
        assert revived.as_dict() == request.as_dict(), spec.key
        assert revived.cache_key() == request.cache_key(), spec.key
        assert revived.to_json() == request.to_json(), spec.key


# --------------------------------------------------------------------- #
# three-way result agreement
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "spec", iter_specs(), ids=lambda spec: f"{spec.kind}-{spec.key}"
)
def test_service_session_and_oracle_agree(spec, series, other_series, service):
    rng = random.Random(hash((spec.kind, spec.key)) & 0xFFFF)
    request = _random_request(spec, rng, other_series)

    direct = repro.analyze(series).run(request)
    assert direct.kind == spec.kind and direct.algo == spec.key

    oracle = _flat_oracle(spec, series, request.params)
    _assert_equivalent(spec.kind, direct.payload, oracle)

    served, source = service.analyze(series, request)
    assert source in ("computed", "memory", "persistent")
    assert served.kind == spec.kind and served.algo == spec.key
    assert served.series_length == series.size
    # The served payload crossed request-JSON and result-JSON once each;
    # compare against the *envelope view* of the direct result (a valmod
    # payload serialises as its cross-algorithm comparable view).
    if spec.kind == "motifs":
        _assert_equivalent(spec.kind, served.range_result(), direct.range_result())
    else:
        _assert_equivalent(spec.kind, served.payload, direct.payload)
