"""Unit and cross-validation tests for STOMP, STAMP and the brute-force profile."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.stamp import stamp
from repro.matrix_profile.stomp import stomp
from repro.series.dataseries import DataSeries


class TestStompBasics:
    def test_profile_shape(self, small_random_series):
        window = 16
        profile = stomp(small_random_series, window)
        assert len(profile) == small_random_series.size - window + 1
        assert profile.window == window

    def test_accepts_dataseries(self, small_ecg_series):
        profile = stomp(small_ecg_series, 32)
        assert len(profile) == len(small_ecg_series) - 32 + 1

    def test_distances_non_negative_and_bounded(self, small_random_series):
        window = 16
        profile = stomp(small_random_series, window)
        finite = profile.distances[np.isfinite(profile.distances)]
        assert np.all(finite >= 0.0)
        assert np.all(finite <= 2.0 * np.sqrt(window) + 1e-9)

    def test_indices_outside_exclusion_zone(self, small_random_series):
        window = 20
        profile = stomp(small_random_series, window)
        radius = default_exclusion_radius(window)
        offsets = np.arange(len(profile))
        valid = profile.indices >= 0
        assert np.all(np.abs(profile.indices[valid] - offsets[valid]) > radius)

    def test_symmetric_pair_consistency(self, small_random_series):
        # the best pair's distance appears in both members' profile entries
        profile = stomp(small_random_series, 16)
        best = profile.best()
        assert profile.distances[best.offset_a] == pytest.approx(
            best.distance, rel=1e-9
        )
        assert profile.distances[best.offset_b] <= best.distance + 1e-9

    def test_callback_invoked_for_every_offset(self, small_random_series):
        calls = []
        stomp(small_random_series, 16, profile_callback=lambda i, qt, d: calls.append(i))
        assert calls == list(range(small_random_series.size - 16 + 1))

    def test_planted_motif_is_global_best(self, planted_series):
        series, truth = planted_series
        planted = truth[0]
        profile = stomp(series, planted.length)
        best = profile.best()
        # the best pair must land on (or very near) the planted copies
        assert min(abs(best.offset_a - offset) for offset in planted.offsets) < planted.length // 4
        assert min(abs(best.offset_b - offset) for offset in planted.offsets) < planted.length // 4


class TestAgainstBruteForce:
    @pytest.mark.parametrize("window", [8, 16, 33])
    def test_stomp_equals_brute_force(self, small_random_series, window):
        fast = stomp(small_random_series, window)
        slow = brute_force_matrix_profile(small_random_series, window)
        np.testing.assert_allclose(fast.distances, slow.distances, atol=1e-5)

    def test_stamp_equals_brute_force(self, small_random_series):
        window = 16
        fast = stamp(small_random_series, window)
        slow = brute_force_matrix_profile(small_random_series, window)
        np.testing.assert_allclose(fast.distances, slow.distances, atol=1e-5)

    def test_stomp_equals_stamp_on_ecg(self, small_ecg_series):
        window = 24
        np.testing.assert_allclose(
            stomp(small_ecg_series, window).distances,
            stamp(small_ecg_series, window).distances,
            atol=1e-5,
        )

    def test_constant_region_handling(self):
        # A series with a long flat stretch: all algorithms must agree and
        # return finite values.
        values = np.concatenate(
            [np.zeros(50), np.sin(np.linspace(0, 12, 120)), np.zeros(40)]
        )
        window = 12
        fast = stomp(values, window)
        slow = brute_force_matrix_profile(values, window)
        np.testing.assert_allclose(fast.distances, slow.distances, atol=1e-5)


class TestStampAnytime:
    def test_partial_stamp_is_upper_bound(self, small_random_series):
        window = 16
        exact = stomp(small_random_series, window)
        partial = stamp(small_random_series, window, max_profiles=40, random_state=0)
        finite = np.isfinite(partial.distances)
        assert np.all(partial.distances[finite] >= exact.distances[finite] - 1e-9)

    def test_explicit_order(self, small_random_series):
        order = np.arange(small_random_series.size - 16 + 1)[::-1]
        profile = stamp(small_random_series, 16, order=order)
        exact = stomp(small_random_series, 16)
        np.testing.assert_allclose(profile.distances, exact.distances, atol=1e-6)

    def test_invalid_order_raises(self, small_random_series):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            stamp(small_random_series, 16, order=np.array([0, 99999]))

    def test_invalid_max_profiles_raises(self, small_random_series):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            stamp(small_random_series, 16, max_profiles=0)
