"""Tests for the experiment harness: workloads, runner dispatch and figure data."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.harness.figures import (
    ablation_exactness,
    ablation_lower_bound,
    figure1_fixed_length,
    figure1_valmap,
    figure2_pruning,
    figure3_length_range,
    figure3_series_length,
    ranking_normalization_table,
)
from repro.harness.runner import ALGORITHMS, compare_algorithms, run_algorithm
from repro.harness.timing import Timer, timed_call
from repro.harness.workloads import WORKLOADS, build_workload


class TestTiming:
    def test_timer(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0

    def test_timed_call(self):
        result, elapsed = timed_call(sum, range(100))
        assert result == 4950
        assert elapsed >= 0.0


class TestWorkloads:
    def test_all_named_workloads_build(self):
        for name in WORKLOADS:
            series = build_workload(name, 512, random_state=0)
            assert len(series) == 512

    def test_deterministic(self):
        first = build_workload("ecg", 400, random_state=1)
        second = build_workload("ecg", 400, random_state=1)
        assert first == second

    def test_unknown_workload(self):
        with pytest.raises(InvalidParameterError):
            build_workload("stock-market")

    def test_invalid_length(self):
        with pytest.raises(InvalidParameterError):
            build_workload("ecg", 1)


class TestRunner:
    def test_all_algorithms_run_and_agree_on_best_distance(self, small_random_series):
        results = compare_algorithms(
            small_random_series,
            16,
            20,
            algorithms=list(ALGORITHMS),
            top_k=1,
        )
        distances = {
            result.algorithm: round(result.best_at(16).distance, 6) for result in results
        }
        assert len(set(distances.values())) == 1, distances

    def test_unknown_algorithm(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            run_algorithm("magic", small_random_series, 16, 20)

    def test_valmod_adapter_reports_pruning(self, small_random_series):
        result = run_algorithm("valmod", small_random_series, 16, 24, top_k=1)
        assert result.algorithm == "valmod"
        assert "valid_fraction" in result.extra


class TestFigureData:
    """Each figure function must return well-formed rows at toy scale."""

    def test_figure1_fixed_length(self):
        row = figure1_fixed_length(series_length=600, window=24, random_state=0)
        assert row["matrix_profile"].shape == row["index_profile"].shape
        assert not row["motif_covers_full_beat"]

    def test_figure1_valmap(self):
        row = figure1_valmap(series_length=600, min_length=24, max_length=48, random_state=0)
        assert row["best_motif_length"] >= 24
        assert len(row["normalized_profile"]) == 600 - 24 + 1
        assert row["updated_positions"] >= 0

    def test_figure2_pruning(self):
        rows = figure2_pruning(
            series_length=512,
            min_length=24,
            range_width=8,
            profile_capacities=(4, 16),
            random_state=0,
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["valid_fraction"] <= 1.0
            assert 0.0 <= row["recomputed_fraction"] <= 1.0
        # larger capacity must not prune less
        assert rows[1]["valid_fraction"] >= rows[0]["valid_fraction"] - 1e-9

    def test_figure3_length_range(self):
        rows = figure3_length_range(
            series_length=512,
            min_length=24,
            range_widths=(4, 8),
            algorithms=("valmod", "stomp-range"),
            random_state=0,
        )
        assert len(rows) == 4
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"valmod", "stomp-range"}
        for row in rows:
            assert row["elapsed_seconds"] > 0.0

    def test_figure3_series_length(self):
        rows = figure3_series_length(
            series_lengths=(400, 800),
            min_length=24,
            range_width=4,
            algorithms=("valmod", "stomp-range"),
            random_state=0,
        )
        assert len(rows) == 4
        # same algorithm on a longer prefix must not report a shorter series
        lengths = sorted({row["series_length"] for row in rows})
        assert lengths == [400, 800]

    def test_ablation_lower_bound(self):
        rows = ablation_lower_bound(
            series_length=512, min_length=24, range_width=8, random_state=0
        )
        kinds = {row["lower_bound_kind"] for row in rows}
        assert kinds == {"paper", "tight"}

    def test_ablation_exactness(self):
        row = ablation_exactness(series_length=600, min_length=20, range_width=6, random_state=0)
        assert row["mismatches"] == 0
        assert row["largest_gap"] < 1e-6
        assert row["speedup"] > 1.0

    def test_ranking_normalization(self):
        row = ranking_normalization_table(
            series_length=1200, short_length=24, long_length=64, random_state=0
        )
        assert row["num_pairs"] > 0
        assert row["best_normalized_length"] >= row["best_raw_length"]
