"""Tests for the climatology, robotics and respiration generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError
from repro.generators import generate_climate, generate_gait, generate_respiration
from repro.harness.workloads import WORKLOADS, build_workload
from repro.matrix_profile.stomp import stomp
from repro.series.dataseries import DataSeries


class TestClimateGenerator:
    def test_basic_shape_and_metadata(self):
        series = generate_climate(3000, random_state=0)
        assert isinstance(series, DataSeries)
        assert len(series) == 3000
        assert series.metadata["generator"] == "climate"
        assert len(series.metadata["episode_starts"]) >= 1
        assert all(
            0 <= start < 3000 for start in series.metadata["episode_starts"]
        )

    def test_reproducible_with_same_seed(self):
        first = generate_climate(1200, random_state=7)
        second = generate_climate(1200, random_state=7)
        np.testing.assert_array_equal(np.asarray(first), np.asarray(second))
        third = generate_climate(1200, random_state=8)
        assert not np.array_equal(np.asarray(first), np.asarray(third))

    def test_seasonal_cycle_dominates_spectrum(self):
        series = generate_climate(
            2920, season_period=1460, weather_noise=0.2, episode_amplitude=2.0, random_state=1
        )
        values = np.asarray(series) - np.mean(np.asarray(series))
        spectrum = np.abs(np.fft.rfft(values))
        # The annual frequency (2 cycles over the series) must be the dominant bin.
        assert int(np.argmax(spectrum[1:])) + 1 == 2

    def test_episode_is_discoverable_motif(self):
        series = generate_climate(
            3000,
            episode_duration=80,
            episode_gap=500,
            weather_noise=0.3,
            seasonal_amplitude=3.0,
            random_state=3,
        )
        profile = stomp(series, 80)
        best = profile.best()
        starts = series.metadata["episode_starts"]
        tolerance = 80
        assert min(abs(best.offset_a - start) for start in starts) <= tolerance

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generate_climate(1)
        with pytest.raises(InvalidParameterError):
            generate_climate(1000, episode_duration=4)
        with pytest.raises(InvalidParameterError):
            generate_climate(1000, episode_gap=50, episode_duration=90)
        with pytest.raises(InvalidParameterError):
            generate_climate(1000, weather_noise=-1.0)


class TestGaitGenerator:
    def test_basic_shape_and_metadata(self):
        series = generate_gait(2000, random_state=0)
        assert len(series) == 2000
        assert series.metadata["generator"] == "gait"
        assert len(series.metadata["cycle_starts"]) >= 3
        assert len(series.metadata["cycle_starts"]) == len(
            series.metadata["cycle_durations"]
        )

    def test_cycle_durations_jitter_around_nominal(self):
        series = generate_gait(4000, cycle_period=160, period_jitter=0.1, random_state=2)
        durations = np.array(series.metadata["cycle_durations"])
        assert abs(durations.mean() - 160) < 160 * 0.2
        assert durations.std() > 0

    def test_gait_cycle_is_discoverable_motif(self):
        series = generate_gait(
            2400, cycle_period=120, idle_probability=0.0, noise_level=0.02, random_state=5
        )
        profile = stomp(series, 120)
        best = profile.best()
        starts = series.metadata["cycle_starts"]
        assert min(abs(best.offset_a - start) for start in starts) <= 120

    def test_idle_segments_reduce_cycle_count(self):
        busy = generate_gait(3000, idle_probability=0.0, random_state=1)
        idle = generate_gait(3000, idle_probability=0.5, idle_duration=300, random_state=1)
        assert len(idle.metadata["cycle_starts"]) < len(busy.metadata["cycle_starts"])

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generate_gait(1)
        with pytest.raises(InvalidParameterError):
            generate_gait(1000, cycle_period=4)
        with pytest.raises(InvalidParameterError):
            generate_gait(1000, idle_probability=1.5)
        with pytest.raises(InvalidParameterError):
            generate_gait(1000, idle_duration=0)


class TestRespirationGenerator:
    def test_basic_shape_and_metadata(self):
        series = generate_respiration(4000, random_state=0)
        assert len(series) == 4000
        assert series.metadata["generator"] == "respiration"
        assert series.metadata["breath_period"] == 80
        assert len(series.metadata["apnea_starts"]) >= 1

    def test_breathing_period_visible_in_spectrum(self):
        series = generate_respiration(
            3200, breath_period=80, apnea_gap=3000, apnea_duration=320, random_state=1
        )
        values = np.asarray(series) - np.mean(np.asarray(series))
        spectrum = np.abs(np.fft.rfft(values))
        dominant_period = values.size / (int(np.argmax(spectrum[1:])) + 1)
        assert abs(dominant_period - 80) < 20

    def test_apnea_region_is_low_amplitude(self):
        series = generate_respiration(5000, apnea_gap=1500, random_state=3)
        values = np.asarray(series)
        start = series.metadata["apnea_starts"][0]
        duration = series.metadata["apnea_durations"][0]
        suppressed = values[start : start + int(duration * 0.6)]
        normal = values[max(0, start - 400) : start]
        assert suppressed.std() < normal.std()

    def test_variable_length_run_covers_breath_and_apnea_scales(self):
        series = generate_respiration(2500, breath_period=60, apnea_duration=240, random_state=4)
        result = valmod(series, 48, 72, top_k=1)
        assert result.best_motif().distance >= 0.0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generate_respiration(1)
        with pytest.raises(InvalidParameterError):
            generate_respiration(1000, breath_period=4)
        with pytest.raises(InvalidParameterError):
            generate_respiration(1000, apnea_duration=100, breath_period=80)
        with pytest.raises(InvalidParameterError):
            generate_respiration(1000, apnea_gap=200, apnea_duration=320)


class TestWorkloadRegistry:
    @pytest.mark.parametrize("name", ["climate", "gait", "respiration"])
    def test_new_workloads_registered(self, name):
        assert name in WORKLOADS
        series = build_workload(name, 1200, random_state=0)
        assert len(series) == 1200
        assert series.name == name

    def test_workload_seeds_are_independent(self):
        first = build_workload("gait", 800, random_state=1)
        second = build_workload("gait", 800, random_state=2)
        assert not np.array_equal(np.asarray(first), np.asarray(second))


class TestGeneratorProperties:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        length=st.integers(min_value=600, max_value=2000),
    )
    def test_all_generators_produce_finite_series(self, seed, length):
        for factory in (generate_climate, generate_gait, generate_respiration):
            series = factory(length, random_state=seed)
            values = np.asarray(series)
            assert values.size == length
            assert np.all(np.isfinite(values))
