"""Tests for annotation vectors (guided motif search)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.annotation import (
    annotation_vector_clipping,
    annotation_vector_complexity,
    annotation_vector_forbidden,
    apply_annotation_vector,
    combine_annotation_vectors,
)
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.stomp import stomp


def _series_with_flat_dropout(rng: np.random.Generator) -> np.ndarray:
    """A sine-burst series with a long flat dropout region in the middle.

    The two bursts are slightly distorted copies of each other (distance > 0),
    while the dropout region is exactly constant, so the *naive* best motif is
    the spurious dropout-vs-dropout pair.
    """
    pattern = np.sin(np.linspace(0, 6 * np.pi, 80))
    parts = [
        rng.normal(0.0, 0.3, 60),
        pattern + rng.normal(0.0, 0.05, pattern.size),
        rng.normal(0.0, 0.3, 40),
        np.zeros(120),  # dropout (flat, a spurious perfect motif)
        rng.normal(0.0, 0.3, 40),
        pattern + rng.normal(0.0, 0.05, pattern.size),
        rng.normal(0.0, 0.3, 60),
    ]
    return np.concatenate(parts)


class TestComplexityAnnotation:
    def test_values_in_unit_interval(self, small_ecg_series):
        vector = annotation_vector_complexity(small_ecg_series, 32)
        assert vector.size == len(small_ecg_series) - 32 + 1
        assert np.all(vector >= 0.0)
        assert np.all(vector <= 1.0)

    def test_flat_regions_score_zero(self):
        rng = np.random.default_rng(0)
        values = _series_with_flat_dropout(rng)
        window = 40
        vector = annotation_vector_complexity(values, window)
        # Subsequences fully inside the dropout (offsets 220..260) are flat.
        assert np.all(vector[230:250] == 0.0)
        # Subsequences on the sine bursts are not.
        assert vector[60:80].min() > 0.0


class TestClippingAnnotation:
    def test_clipped_plateau_is_down_weighted(self):
        rng = np.random.default_rng(1)
        values = np.sin(np.linspace(0, 20 * np.pi, 600)) + rng.normal(0.0, 0.05, 600)
        values[200:260] = values.max() + 0.5  # saturated plateau
        vector = annotation_vector_clipping(values, 30)
        assert vector[210:225].max() < 0.5
        assert vector[:100].min() > 0.5

    def test_invalid_fraction_raises(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            annotation_vector_clipping(small_random_series, 16, saturation_fraction=0.9)


class TestForbiddenAnnotation:
    def test_ranges_are_zeroed(self):
        vector = annotation_vector_forbidden(100, [(10, 20), (90, 200)])
        assert np.all(vector[10:20] == 0.0)
        assert np.all(vector[90:] == 0.0)
        assert np.all(vector[:10] == 1.0)
        assert np.all(vector[20:90] == 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            annotation_vector_forbidden(0, [])
        with pytest.raises(InvalidParameterError):
            annotation_vector_forbidden(10, [(5, 5)])


class TestCombineAndApply:
    def test_combination_is_elementwise_product(self):
        first = np.array([1.0, 0.5, 0.0, 1.0])
        second = np.array([1.0, 1.0, 1.0, 0.0])
        combined = combine_annotation_vectors([first, second])
        np.testing.assert_allclose(combined, [1.0, 0.5, 0.0, 0.0])
        with pytest.raises(InvalidParameterError):
            combine_annotation_vectors([])
        with pytest.raises(InvalidParameterError):
            combine_annotation_vectors([first, np.ones(3)])

    def test_guided_search_avoids_dropout_motif(self):
        rng = np.random.default_rng(3)
        values = _series_with_flat_dropout(rng)
        window = 40
        profile = stomp(values, window)
        naive_best = profile.best()
        # The naive motif is the flat dropout matching itself (the dropout
        # spans raw offsets [180, 300), so length-40 subsequences fully inside
        # it start in [180, 260]).
        assert 180 <= naive_best.offset_a <= 260
        assert naive_best.distance == pytest.approx(0.0, abs=1e-9)

        annotation = annotation_vector_complexity(values, window)
        corrected = apply_annotation_vector(profile, annotation)
        guided_best = corrected.best()
        # The guided motif is the repeated sine burst (planted at 60 and 340).
        assert min(abs(guided_best.offset_a - offset) for offset in (60, 340)) <= window
        assert min(abs(guided_best.offset_b - offset) for offset in (60, 340)) <= window

    def test_apply_preserves_interesting_entries(self, small_random_series):
        window = 16
        profile = stomp(small_random_series, window)
        all_interesting = np.ones(len(profile))
        corrected = apply_annotation_vector(profile, all_interesting)
        np.testing.assert_allclose(corrected.distances, profile.distances)

    def test_apply_validates_vector(self, small_random_series):
        profile = stomp(small_random_series, 16)
        with pytest.raises(InvalidParameterError):
            apply_annotation_vector(profile, np.ones(3))
        bad = np.ones(len(profile))
        bad[0] = 2.0
        with pytest.raises(InvalidParameterError):
            apply_annotation_vector(profile, bad)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_correction_never_lowers_any_entry(self, seed):
        rng = np.random.default_rng(seed)
        values = np.cumsum(rng.normal(size=180))
        profile = stomp(values, 16)
        annotation = rng.uniform(0.0, 1.0, size=len(profile))
        corrected = apply_annotation_vector(profile, annotation)
        finite = np.isfinite(profile.distances)
        assert np.all(corrected.distances[finite] >= profile.distances[finite] - 1e-12)
