"""Unit tests for repro.series.loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidSeriesError
from repro.series.dataseries import DataSeries
from repro.series.loaders import load_csv, load_npy, load_text, save_csv, save_npy, save_text


class TestTextRoundTrip:
    def test_round_trip(self, tmp_path):
        values = np.random.default_rng(0).normal(size=50)
        path = tmp_path / "series.txt"
        save_text(values, path)
        loaded = load_text(path)
        np.testing.assert_allclose(loaded.values, values)
        assert loaded.name == "series"

    def test_skips_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "annotated.txt"
        path.write_text("# header\n1.5\n\n2.5\n# trailing\n3.5\n")
        loaded = load_text(path)
        np.testing.assert_allclose(loaded.values, [1.5, 2.5, 3.5])

    def test_multi_column_selection(self, tmp_path):
        path = tmp_path / "two_columns.txt"
        path.write_text("1 10\n2 20\n3 30\n")
        np.testing.assert_allclose(load_text(path, column=1).values, [10.0, 20.0, 30.0])

    def test_missing_column_raises(self, tmp_path):
        path = tmp_path / "one_column.txt"
        path.write_text("1\n2\n")
        with pytest.raises(InvalidSeriesError):
            load_text(path, column=3)

    def test_non_numeric_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\nhello\n")
        with pytest.raises(InvalidSeriesError):
            load_text(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(InvalidSeriesError):
            load_text(tmp_path / "does_not_exist.txt")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n")
        with pytest.raises(InvalidSeriesError):
            load_text(path)

    def test_accepts_dataseries_input(self, tmp_path):
        series = DataSeries(np.array([1.0, 2.0, 3.0]), name="ds")
        path = save_text(series, tmp_path / "ds.txt")
        np.testing.assert_allclose(load_text(path).values, series.values)


class TestCsv:
    def test_round_trip_with_header(self, tmp_path):
        values = np.arange(10, dtype=float)
        path = tmp_path / "series.csv"
        save_csv(values, path, header="value")
        loaded = load_csv(path, has_header=True)
        np.testing.assert_allclose(loaded.values, values)

    def test_named_column(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("time,value\n0,1.0\n1,2.0\n2,4.0\n")
        loaded = load_csv(path, column="value")
        np.testing.assert_allclose(loaded.values, [1.0, 2.0, 4.0])

    def test_unknown_column_raises(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("time,value\n0,1.0\n")
        with pytest.raises(InvalidSeriesError):
            load_csv(path, column="missing")

    def test_non_numeric_cell_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0\nnot-a-number\n")
        with pytest.raises(InvalidSeriesError):
            load_csv(path)


class TestNpy:
    def test_round_trip(self, tmp_path):
        values = np.random.default_rng(1).normal(size=32)
        path = tmp_path / "series.npy"
        save_npy(values, path)
        loaded = load_npy(path)
        np.testing.assert_allclose(loaded.values, values)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(InvalidSeriesError):
            load_npy(tmp_path / "missing.npy")
