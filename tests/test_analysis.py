"""Tests for the analysis front-end: checkpoints, evaluation, reports, ASCII plots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.ascii_plot import render_profile, render_series, render_valmap
from repro.analysis.checkpoints import summarize_checkpoints
from repro.analysis.evaluation import (
    match_motifs_to_ground_truth,
    overlap_length,
    recall_of_planted_motifs,
)
from repro.analysis.report import (
    format_motif_table,
    format_pruning_table,
    format_valmap_summary,
    result_report,
)
from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError
from repro.generators.planted import PlantedMotif
from repro.matrix_profile.profile import MotifPair


@pytest.fixture(scope="module")
def ecg_result(small_ecg_series=None):
    from repro.generators import generate_ecg

    series = generate_ecg(500, beat_period=60, random_state=1)
    return valmod(series, 24, 48, top_k=2)


class TestCheckpoints:
    def test_summary_counts(self, ecg_result):
        summary = summarize_checkpoints(ecg_result.valmap)
        assert summary.num_updates == len(ecg_result.valmap.checkpoints)
        assert summary.up_to_length == ecg_result.config.max_length
        assert len(summary.updated_offsets) == len(set(summary.updated_offsets))

    def test_partial_summary_monotone(self, ecg_result):
        early = summarize_checkpoints(ecg_result.valmap, up_to_length=30)
        late = summarize_checkpoints(ecg_result.valmap, up_to_length=48)
        assert early.num_updates <= late.num_updates

    def test_regions_cover_updated_offsets(self, ecg_result):
        summary = summarize_checkpoints(ecg_result.valmap)
        for offset in summary.updated_offsets:
            assert any(start <= offset < stop for start, stop in summary.update_regions)

    def test_updates_per_length_sums(self, ecg_result):
        summary = summarize_checkpoints(ecg_result.valmap)
        assert sum(summary.updates_per_length.values()) == summary.num_updates

    def test_invalid_parameters(self, ecg_result):
        with pytest.raises(InvalidParameterError):
            summarize_checkpoints(ecg_result.valmap, up_to_length=5)
        with pytest.raises(InvalidParameterError):
            summarize_checkpoints(ecg_result.valmap, region_gap=0)

    def test_as_dict(self, ecg_result):
        payload = summarize_checkpoints(ecg_result.valmap).as_dict()
        assert "update_regions" in payload


class TestEvaluation:
    def test_overlap_length(self):
        assert overlap_length(0, 10, 5, 10) == 5
        assert overlap_length(0, 10, 20, 10) == 0
        assert overlap_length(0, 10, 0, 10) == 10
        with pytest.raises(InvalidParameterError):
            overlap_length(0, -1, 0, 5)

    def test_match_covered_pair(self):
        planted = PlantedMotif(length=50, offsets=[100, 400])
        pair = MotifPair(distance=1.0, offset_a=105, offset_b=395, window=50)
        reports = match_motifs_to_ground_truth([pair], [planted])
        assert len(reports) == 1
        assert reports[0].covered

    def test_pair_on_same_copy_not_covered(self):
        planted = PlantedMotif(length=50, offsets=[100, 400])
        pair = MotifPair(distance=1.0, offset_a=100, offset_b=110, window=50)
        reports = match_motifs_to_ground_truth([pair], [planted])
        assert not reports[0].covered

    def test_recall(self):
        planted = [
            PlantedMotif(length=50, offsets=[100, 400]),
            PlantedMotif(length=30, offsets=[700, 900]),
        ]
        pair = MotifPair(distance=1.0, offset_a=100, offset_b=400, window=50)
        assert recall_of_planted_motifs([pair], planted) == pytest.approx(0.5)

    def test_recall_requires_ground_truth(self):
        with pytest.raises(InvalidParameterError):
            recall_of_planted_motifs([], [])

    def test_invalid_coverage(self):
        planted = PlantedMotif(length=50, offsets=[0, 100])
        with pytest.raises(InvalidParameterError):
            match_motifs_to_ground_truth([], [planted], coverage=0.0)


class TestReports:
    def test_motif_table_contains_every_pair(self, ecg_result):
        pairs = ecg_result.top_motifs(3)
        table = format_motif_table(pairs)
        for pair in pairs:
            assert str(pair.offset_a) in table
        assert "norm. distance" in table

    def test_pruning_table(self, ecg_result):
        stats = [ecg_result.length_results[length].pruning for length in ecg_result.lengths]
        table = format_pruning_table(stats)
        assert str(ecg_result.config.min_length) in table
        assert "valid frac" in table

    def test_valmap_summary(self, ecg_result):
        text = format_valmap_summary(ecg_result)
        assert "VALMAP summary" in text
        assert "best entry" in text

    def test_full_report(self, ecg_result):
        text = result_report(ecg_result)
        assert "VALMOD on" in text
        assert "pruning per length" in text
        assert f"{ecg_result.series_length} points" in text


class TestAsciiPlots:
    def test_render_series_width(self):
        line = render_series(np.sin(np.linspace(0, 10, 500)), width=40, label="sine")
        assert "sine" in line
        assert len(line.split("|")[1]) == 40

    def test_render_series_short_input(self):
        line = render_series(np.array([1.0, 2.0, 3.0]), width=40)
        assert "|" in line

    def test_render_profile_marks_minimum(self):
        distances = np.ones(100)
        distances[30] = 0.0
        text = render_profile(distances, width=50)
        assert "^" in text.splitlines()[1]

    def test_render_profile_all_inf(self):
        text = render_profile(np.full(10, np.inf))
        assert text  # no crash, single line
        assert "^" not in text

    def test_render_valmap(self, ecg_result):
        text = render_valmap(ecg_result.valmap)
        # MPn sparkline + its minimum marker + length profile + update mask
        assert len(text.splitlines()) == 4
        assert "VALMAP MPn" in text and "length prof" in text and "updated" in text

    def test_invalid_width(self):
        with pytest.raises(InvalidParameterError):
            render_series(np.arange(10, dtype=float), width=2)

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_series(np.array([]))
