"""Request/result envelopes: JSON round-trips and io file round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.requests import AnalysisRequest, AnalysisResult
from repro.api.session import analyze
from repro.baselines.base import RangeDiscoveryResult
from repro.exceptions import InvalidParameterError, SerializationError
from repro.io.serialization import (
    load_analysis_request,
    load_analysis_result,
    save_analysis_request,
    save_analysis_result,
)


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(23)
    return np.cumsum(rng.standard_normal(260))


@pytest.fixture(scope="module")
def session(values):
    return analyze(values, name="walk")


class TestRequestRoundTrip:
    def test_json_round_trip(self):
        request = AnalysisRequest(
            kind="matrix_profile", algo="stomp", params={"window": 32}
        )
        restored = AnalysisRequest.from_json(request.to_json())
        assert restored == request

    def test_round_trip_preserves_execution_semantics(self, session):
        """request -> JSON -> request -> run == direct run (the service loop)."""
        request = AnalysisRequest(
            kind="matrix_profile", algo="stomp", params={"window": 24}
        )
        replayed = session.run(AnalysisRequest.from_json(request.to_json()))
        direct = session.run(request)
        np.testing.assert_array_equal(
            replayed.profile().distances, direct.profile().distances
        )

    def test_array_parameters_serialise_as_lists(self, values):
        request = AnalysisRequest(
            kind="mpdist",
            params={"other": values[:50], "window": 16, "percentile": 0.05},
        )
        payload = request.as_dict()
        assert payload["params"]["other"] == values[:50].tolist()
        restored = AnalysisRequest.from_json(request.to_json())
        assert restored.params["other"] == values[:50].tolist()

    def test_unserialisable_parameter_raises(self):
        request = AnalysisRequest(kind="matrix_profile", params={"window": object()})
        with pytest.raises(SerializationError):
            request.as_dict()
        assert request.cache_key() is None

    def test_empty_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            AnalysisRequest(kind="")

    def test_file_round_trip(self, tmp_path):
        request = AnalysisRequest(kind="motifs", algo="valmod", params={"min_length": 16, "max_length": 24})
        path = save_analysis_request(request, tmp_path / "request.json")
        assert load_analysis_request(path) == request

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            AnalysisRequest.from_json("[1, 2]")
        with pytest.raises(SerializationError):
            AnalysisRequest.from_json("{not json")


class TestResultRoundTrip:
    """The acceptance loop: AnalysisRequest -> JSON -> run -> AnalysisResult -> JSON."""

    def test_matrix_profile_envelope(self, session, tmp_path):
        request = AnalysisRequest.from_json(
            AnalysisRequest(
                kind="matrix_profile", algo="stomp", params={"window": 24}
            ).to_json()
        )
        result = session.run(request)
        path = save_analysis_result(result, tmp_path / "result.json")
        restored = load_analysis_result(path)
        assert restored.kind == "matrix_profile"
        assert restored.algo == "stomp"
        assert restored.series_name == "walk"
        np.testing.assert_allclose(
            restored.profile().distances, result.profile().distances, atol=1e-12
        )
        np.testing.assert_array_equal(
            restored.profile().indices, result.profile().indices
        )

    @pytest.mark.parametrize("method", ["valmod", "stomp_range"])
    def test_motifs_envelope_round_trips_the_comparable_view(
        self, session, method, tmp_path
    ):
        result = session.motifs(16, 20, method=method, top_k=2)
        restored = load_analysis_result(
            save_analysis_result(result, tmp_path / f"{method}.json")
        )
        assert isinstance(restored.payload, RangeDiscoveryResult)
        assert restored.best_motif().offsets == result.best_motif().offsets
        assert restored.motifs_by_length().keys() == result.motifs_by_length().keys()

    def test_pan_profile_envelope(self, session, tmp_path):
        result = session.pan_profile(16, 20)
        restored = load_analysis_result(
            save_analysis_result(result, tmp_path / "pan.json")
        )
        np.testing.assert_array_equal(
            restored.payload.lengths, result.payload.lengths
        )
        np.testing.assert_allclose(
            restored.payload.normalized_profiles,
            result.payload.normalized_profiles,
            atol=1e-12,
            equal_nan=True,
        )

    def test_discords_envelope(self, session, tmp_path):
        result = session.discords(16, 24, k=2)
        restored = load_analysis_result(
            save_analysis_result(result, tmp_path / "discords.json")
        )
        assert [d.offset for d in restored.payload] == [
            d.offset for d in result.payload
        ]

    def test_ab_join_and_mpdist_envelopes(self, session, values, tmp_path):
        other = values[:120]
        join = session.ab_join(other, 16)
        restored_join = load_analysis_result(
            save_analysis_result(join, tmp_path / "join.json")
        )
        np.testing.assert_allclose(
            restored_join.payload.distances, join.payload.distances, atol=1e-12
        )
        distance = session.mpdist(other, 16)
        restored_distance = load_analysis_result(
            save_analysis_result(distance, tmp_path / "mpdist.json")
        )
        assert restored_distance.payload == pytest.approx(distance.payload)

    def test_wrong_file_kind_rejected(self, session, tmp_path):
        result = session.matrix_profile(16)
        path = save_analysis_result(result, tmp_path / "result.json")
        with pytest.raises(SerializationError):
            load_analysis_request(path)

    def test_unknown_payload_type_rejected(self):
        with pytest.raises(SerializationError):
            AnalysisResult.from_dict(
                {
                    "kind": "matrix_profile",
                    "algo": "stomp",
                    "payload_type": "hologram",
                    "payload": {},
                }
            )
