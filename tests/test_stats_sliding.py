"""Unit tests for repro.stats.sliding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.stats.sliding import (
    SlidingStats,
    moving_mean,
    moving_mean_std,
    moving_std,
    prefix_sums,
)

finite_series = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=5, max_value=60),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64),
)


class TestPrefixSums:
    def test_matches_cumsum(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        csum, csum_sq = prefix_sums(values)
        assert csum.tolist() == [0.0, 1.0, 3.0, 6.0, 10.0]
        assert csum_sq.tolist() == [0.0, 1.0, 5.0, 14.0, 30.0]

    def test_window_sum_by_subtraction(self):
        values = np.arange(10, dtype=float)
        csum, _ = prefix_sums(values)
        assert csum[7] - csum[3] == pytest.approx(values[3:7].sum())

    def test_rejects_empty(self):
        with pytest.raises(InvalidSeriesError):
            prefix_sums(np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(InvalidSeriesError):
            prefix_sums(np.array([1.0, np.nan]))

    def test_rejects_2d(self):
        with pytest.raises(InvalidSeriesError):
            prefix_sums(np.ones((3, 3)))


class TestMovingStatistics:
    def test_moving_mean_matches_naive(self):
        values = np.random.default_rng(0).normal(size=50)
        window = 7
        expected = np.array([values[i : i + window].mean() for i in range(len(values) - window + 1)])
        np.testing.assert_allclose(moving_mean(values, window), expected, atol=1e-12)

    def test_moving_std_matches_naive(self):
        values = np.random.default_rng(1).normal(size=50)
        window = 9
        expected = np.array([values[i : i + window].std() for i in range(len(values) - window + 1)])
        np.testing.assert_allclose(moving_std(values, window), expected, atol=1e-10)

    def test_window_one(self):
        values = np.array([3.0, -1.0, 2.0])
        means, stds = moving_mean_std(values, 1)
        np.testing.assert_allclose(means, values)
        np.testing.assert_allclose(stds, np.zeros(3))

    def test_window_equal_to_length(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        means, stds = moving_mean_std(values, 4)
        assert means.shape == (1,)
        assert means[0] == pytest.approx(2.5)
        assert stds[0] == pytest.approx(values.std())

    def test_constant_window_yields_zero_std(self):
        values = np.array([5.0] * 10 + [1.0, 2.0])
        _, stds = moving_mean_std(values, 5)
        assert stds[0] == 0.0
        assert stds[1] == 0.0

    def test_invalid_window_raises(self):
        values = np.arange(10, dtype=float)
        with pytest.raises(InvalidParameterError):
            moving_mean(values, 0)
        with pytest.raises(InvalidParameterError):
            moving_mean(values, 11)

    @settings(max_examples=40, deadline=None)
    @given(series=finite_series, window=st.integers(min_value=1, max_value=10))
    def test_property_matches_naive(self, series, window):
        window = min(window, series.size)
        means, stds = moving_mean_std(series, window)
        count = series.size - window + 1
        # Tolerances scale with the magnitude of the *whole* series: the
        # cumulative-sum statistics lose precision (and deliberately clamp
        # near-constant windows to zero) when the prefix sums are large
        # compared to the local spread.
        scale = max(1.0, float(np.abs(series).max()))
        for i in range(0, count, max(1, count // 5)):
            segment = series[i : i + window]
            assert means[i] == pytest.approx(segment.mean(), rel=1e-9, abs=1e-9 * scale)
            assert stds[i] == pytest.approx(segment.std(), rel=1e-5, abs=2e-6 * scale)


class TestSlidingStats:
    def test_mean_std_cached_and_consistent(self):
        values = np.random.default_rng(2).normal(size=80)
        stats = SlidingStats(values)
        first = stats.mean_std(10)
        second = stats.mean_std(10)
        assert first[0] is second[0]  # cached object reuse
        np.testing.assert_allclose(first[0], moving_mean(values, 10))

    def test_forget_clears_cache(self):
        stats = SlidingStats(np.arange(30, dtype=float))
        first = stats.mean_std(5)
        stats.forget(5)
        second = stats.mean_std(5)
        assert first[0] is not second[0]
        np.testing.assert_allclose(first[0], second[0])

    def test_window_scalar_queries(self):
        values = np.random.default_rng(3).normal(size=40)
        stats = SlidingStats(values)
        assert stats.window_sum(4, 6) == pytest.approx(values[4:10].sum())
        assert stats.window_sum_sq(4, 6) == pytest.approx((values[4:10] ** 2).sum())
        assert stats.window_mean(4, 6) == pytest.approx(values[4:10].mean())
        assert stats.window_std(4, 6) == pytest.approx(values[4:10].std(), abs=1e-10)

    def test_subsequence_count(self):
        stats = SlidingStats(np.arange(25, dtype=float))
        assert stats.subsequence_count(10) == 16
        assert len(stats) == 25

    def test_values_are_read_only(self):
        stats = SlidingStats(np.arange(10, dtype=float))
        with pytest.raises(ValueError):
            stats.values[0] = 99.0

    def test_out_of_bounds_window_raises(self):
        stats = SlidingStats(np.arange(10, dtype=float))
        with pytest.raises(InvalidParameterError):
            stats.window_sum(8, 5)
        with pytest.raises(InvalidParameterError):
            stats.window_sum(-1, 3)
