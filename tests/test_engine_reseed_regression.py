"""Regression tests for numerical drift at block seams.

The hazard: on high-variance series (large offsets, heavy-tailed spikes)
the FFT-based sliding dot products and the exact naive products diverge
measurably in absolute terms, and every STOMP recurrence step compounds
two more roundings.  A block seam — where one block's recurrence chain
ends and the next block restarts from a fresh FFT seed — is where that
accumulated drift would surface as a discontinuity.

The fix under test: each block re-seeds from MASS, chains inside a block
are re-seeded every ``DEFAULT_RESEED_INTERVAL`` rows, and the correlation
clamp in ``distances_from_dot_products`` bounds whatever drift remains.
The tests pin that the blocked profile stays within the library's 1e-8
tolerance of the serial oracle *on exactly the kind of series where the
underlying dot products visibly disagree*.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.partition import DEFAULT_RESEED_INTERVAL, partitioned_stomp
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.stomp import stomp
from repro.stats.fft import sliding_dot_product

WINDOW = 64


@pytest.fixture(scope="module")
def high_variance_series() -> np.ndarray:
    """A hostile series: huge offset, large steps, rare heavy spikes."""
    rng = np.random.default_rng(99)
    n = 2048
    spikes = (rng.random(n) < 0.01) * rng.normal(scale=1e4, size=n)
    return 1e6 + 1e3 * np.cumsum(rng.normal(size=n)) + spikes


def test_fft_and_naive_dot_products_visibly_diverge(high_variance_series):
    """The premise of the regression: the two methods measurably disagree."""
    query = high_variance_series[50 : 50 + WINDOW]
    fft = sliding_dot_product(query, high_variance_series, method="fft")
    naive = sliding_dot_product(query, high_variance_series, method="naive")
    divergence = float(np.max(np.abs(fft - naive)))
    # Absolute disagreement far above the 1e-8 profile tolerance — without
    # per-block re-seeding and the correlation clamp this would be fatal.
    assert divergence > 1e-3
    # ... yet relatively tiny: the magnitude of the products is ~1e12.
    assert divergence / float(np.max(np.abs(naive))) < 1e-12


def test_blocked_profile_survives_high_variance_series(high_variance_series):
    reference = stomp(high_variance_series, WINDOW)
    for block_size in (128, 256, 1000):
        blocked = partitioned_stomp(
            high_variance_series, WINDOW, executor="serial", block_size=block_size
        )
        assert np.array_equal(reference.indices, blocked.indices)
        deviation = float(np.max(np.abs(reference.distances - blocked.distances)))
        assert deviation <= 1e-8, f"block_size={block_size}: {deviation}"


def test_within_block_reseed_interval_is_honoured(high_variance_series):
    """A single monolithic block still re-seeds internally.

    With ``reseed_interval`` shrunk to 64 the chain is refreshed ~30
    times across the series; the result must agree with both the default
    interval and the serial oracle, confirming the re-seed itself is
    drift-free (a fresh MASS row equals the recurrence row to within
    floating-point noise).
    """
    count = high_variance_series.size - WINDOW + 1
    reference = stomp(high_variance_series, WINDOW)
    default = partitioned_stomp(
        high_variance_series, WINDOW, executor="serial", block_size=count
    )
    frequent = partitioned_stomp(
        high_variance_series,
        WINDOW,
        executor="serial",
        block_size=count,
        reseed_interval=64,
    )
    for candidate in (default, frequent):
        assert np.array_equal(reference.indices, candidate.indices)
        assert np.max(np.abs(reference.distances - candidate.distances)) <= 1e-8
    assert DEFAULT_RESEED_INTERVAL == 512  # documented value; see partition.py


def test_reseed_interval_validation(high_variance_series):
    with pytest.raises(InvalidParameterError):
        partitioned_stomp(
            high_variance_series, WINDOW, executor="serial", reseed_interval=0
        )


def test_sliding_dot_product_method_knob():
    rng = np.random.default_rng(3)
    series = rng.normal(size=256)
    query = series[10:42]
    auto = sliding_dot_product(query, series)
    fft = sliding_dot_product(query, series, method="fft")
    naive = sliding_dot_product(query, series, method="naive")
    np.testing.assert_allclose(auto, naive, atol=1e-9)
    np.testing.assert_allclose(fft, naive, atol=1e-9)
    with pytest.raises(InvalidParameterError):
        sliding_dot_product(query, series, method="magic")
