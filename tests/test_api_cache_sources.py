"""Cache-source reporting of the batch path and envelope-view tagging.

Two PR-4 satellites:

* :meth:`repro.api.Analysis.run_many_with_info` reports the same
  ``cache_source`` tags as :meth:`run_with_info` — and the batch path
  probes the persistent spill (promoting hits) *before* batching;
* VALMOD results rehydrated from the spill carry only the envelope view;
  they are tagged (:class:`~repro.api.requests.EnvelopeRangeResult`,
  ``result.is_envelope_view``) so reaching for missing ``ValmodResult``
  fields fails loudly with an explanation.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api.cache import CacheConfig
from repro.api.requests import AnalysisRequest, EnvelopeRangeResult
from repro.baselines.base import RangeDiscoveryResult
from repro.core.results import ValmodResult


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return np.cumsum(np.random.default_rng(31).normal(size=420))


def _mp_request(window: int) -> AnalysisRequest:
    return AnalysisRequest(kind="matrix_profile", params={"window": int(window)})


class TestRunManyWithInfo:
    def test_sources_cover_all_three_tiers(self, values, tmp_path):
        config = CacheConfig(persist_dir=tmp_path / "spill")
        warm = repro.analyze(values, cache_config=config)
        warm.run(_mp_request(32))  # lands in the spill for the next session

        session = repro.analyze(values, cache_config=config)
        session.run(_mp_request(48))  # now a memory hit within this session
        outcomes = session.run_many_with_info(
            [_mp_request(32), _mp_request(48), _mp_request(64)]
        )
        sources = [source for _, source in outcomes]
        assert sources == ["persistent", "memory", "computed"]
        for result, _ in outcomes:
            assert result.kind == "matrix_profile"

    def test_batch_results_match_run(self, values):
        session = repro.analyze(values)
        outcomes = session.run_many_with_info([_mp_request(24), _mp_request(40)])
        assert [source for _, source in outcomes] == ["computed", "computed"]
        for (result, _), window in zip(outcomes, (24, 40)):
            oracle = repro.analyze(values).matrix_profile(window).profile()
            np.testing.assert_array_equal(result.profile().indices, oracle.indices)
            np.testing.assert_allclose(
                result.profile().distances, oracle.distances, atol=1e-8
            )

    def test_spill_probe_skips_recomputation(self, values, tmp_path):
        """A spilled profile must come back as a hit from the batch path,
        not be recomputed (miss counters tell the story)."""
        config = CacheConfig(persist_dir=tmp_path / "spill")
        repro.analyze(values, cache_config=config).run(_mp_request(36))

        fresh = repro.analyze(values, cache_config=config)
        [(result, source)] = fresh.run_many_with_info([_mp_request(36)])
        assert source == "persistent"
        info = fresh.cache_info()
        assert info["persistent_hits"] == 1
        assert info["misses"] == 0

    def test_run_many_returns_bare_results(self, values):
        session = repro.analyze(values)
        results = session.run_many([_mp_request(28), _mp_request(44)])
        assert [r.kind for r in results] == ["matrix_profile", "matrix_profile"]

    def test_non_batchable_requests_report_sources_too(self, values):
        session = repro.analyze(values)
        request = AnalysisRequest(
            kind="motifs", algo="stomp_range", params={"min_length": 24, "max_length": 26}
        )
        first = session.run_many_with_info([request])
        second = session.run_many_with_info([request])
        assert first[0][1] == "computed"
        assert second[0][1] == "memory"


class TestEnvelopeViewTagging:
    def _spilled_valmod(self, values, tmp_path):
        config = CacheConfig(persist_dir=tmp_path / "spill")
        request = AnalysisRequest(
            kind="motifs", algo="valmod", params={"min_length": 24, "max_length": 27}
        )
        computed, source = repro.analyze(values, cache_config=config).run_with_info(
            request
        )
        assert source == "computed"
        rehydrated, source = repro.analyze(values, cache_config=config).run_with_info(
            request
        )
        assert source == "persistent"
        return computed, rehydrated

    def _corrupt_sidecar(self, tmp_path) -> None:
        [sidecar] = (tmp_path / "spill").rglob("*.valmod.json")
        sidecar.write_text("{not json")

    def test_spill_hit_rehydrates_losslessly(self, values, tmp_path):
        """A persistent VALMOD hit comes back as the *full* in-process
        result: the sidecar written by save_result round-trips the valmap,
        checkpoints, pruning detail and base profile."""
        computed, rehydrated = self._spilled_valmod(values, tmp_path)
        assert isinstance(computed.payload, ValmodResult)
        assert isinstance(rehydrated.payload, ValmodResult)
        assert not computed.is_envelope_view
        assert not rehydrated.is_envelope_view
        assert rehydrated.payload.lengths == computed.payload.lengths
        assert rehydrated.best_motif() == computed.best_motif()
        np.testing.assert_allclose(
            rehydrated.payload.base_profile.distances,
            computed.payload.base_profile.distances,
        )
        np.testing.assert_array_equal(
            rehydrated.payload.valmap.index_profile,
            computed.payload.valmap.index_profile,
        )
        assert [c.as_dict() for c in rehydrated.payload.valmap.checkpoints] == [
            c.as_dict() for c in computed.payload.valmap.checkpoints
        ]
        assert (
            rehydrated.payload.pruning_summary() == computed.payload.pruning_summary()
        )

    def test_corrupt_sidecar_degrades_to_envelope_view(self, values, tmp_path):
        """Without a (valid) sidecar the hit falls back to the tagged
        envelope view — and the corrupt file is healed away."""
        computed, _ = self._spilled_valmod(values, tmp_path)
        self._corrupt_sidecar(tmp_path)
        degraded, source = repro.analyze(
            values, cache_config=CacheConfig(persist_dir=tmp_path / "spill")
        ).run_with_info(
            AnalysisRequest(
                kind="motifs", algo="valmod", params={"min_length": 24, "max_length": 27}
            )
        )
        assert source == "persistent"
        assert degraded.is_envelope_view
        assert isinstance(degraded.payload, EnvelopeRangeResult)
        # The comparable view still behaves like any RangeDiscoveryResult.
        assert isinstance(degraded.payload, RangeDiscoveryResult)
        assert degraded.range_result().lengths == computed.range_result().lengths
        assert degraded.best_motif() == computed.best_motif()
        assert not list((tmp_path / "spill").rglob("*.valmod.json"))

    def test_missing_valmod_fields_fail_loudly_on_degraded_view(
        self, values, tmp_path
    ):
        self._spilled_valmod(values, tmp_path)
        self._corrupt_sidecar(tmp_path)
        degraded, _ = repro.analyze(
            values, cache_config=CacheConfig(persist_dir=tmp_path / "spill")
        ).run_with_info(
            AnalysisRequest(
                kind="motifs", algo="valmod", params={"min_length": 24, "max_length": 27}
            )
        )
        with pytest.raises(AttributeError, match="rehydrated from a serialised"):
            degraded.payload.valmap
        with pytest.raises(AttributeError, match="Recompute in-process"):
            degraded.payload.base_profile

    def test_non_valmod_motifs_are_not_tagged(self, values, tmp_path):
        """STOMP-range's in-process payload *is* the envelope view, so its
        spill hits stay plain RangeDiscoveryResult."""
        config = CacheConfig(persist_dir=tmp_path / "spill")
        request = AnalysisRequest(
            kind="motifs", algo="stomp_range", params={"min_length": 24, "max_length": 25}
        )
        repro.analyze(values, cache_config=config).run(request)
        rehydrated, source = repro.analyze(values, cache_config=config).run_with_info(
            request
        )
        assert source == "persistent"
        assert not rehydrated.is_envelope_view
        assert type(rehydrated.payload) is RangeDiscoveryResult
