"""Digest-keyed series transport: service negotiation, keep-alive, shm reuse.

The acceptance story of the store subsystem, end to end:

* after one upload, a second service request for the same series carries
  **no values** yet returns results identical to the direct-session oracle
  for every registry algorithm;
* two sequential client calls share one server connection (HTTP
  keep-alive);
* within one :class:`~repro.api.Analysis` session, two engine-backed runs
  on the same series reuse one shared-memory segment (no second pack), and
  closing the session unlinks it.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.api.registry import iter_specs
from repro.api.requests import AnalysisRequest
from repro.engine.shm import SharedSegmentPool, SharedSeriesBuffer
from repro.exceptions import ServiceError
from repro.service import BackgroundService, ServiceClient, ServiceConfig

SERIES_LENGTH = 260


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return np.cumsum(np.random.default_rng(17).standard_normal(SERIES_LENGTH))


@pytest.fixture(scope="module")
def other() -> np.ndarray:
    return np.cumsum(np.random.default_rng(18).standard_normal(SERIES_LENGTH))


@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(port=0, workers=1, store_dir=tmp_path / "store")
    with BackgroundService(config) as background:
        yield background


def _spy(client: ServiceClient):
    """Record every (method, path, body) the client puts on the wire."""
    sent = []
    original = client._exchange

    def recording(method, path, body=None, **kwargs):
        sent.append((method, path, body))
        return original(method, path, body, **kwargs)

    client._exchange = recording
    return sent


def _without_timing(payload):
    """Strip wall-clock fields (the one legitimate run-to-run difference)."""
    if isinstance(payload, dict):
        return {
            key: _without_timing(value)
            for key, value in payload.items()
            if key != "elapsed_seconds"
        }
    if isinstance(payload, list):
        return [_without_timing(item) for item in payload]
    return payload


def _request_for(spec, other: np.ndarray) -> AnalysisRequest:
    """One deterministic valid request per registered algorithm."""
    if spec.kind == "matrix_profile":
        params = {"window": 20}
        if spec.key in ("scrimp", "scrimp++", "stamp"):
            params["random_state"] = 0  # pin anytime tie-breaking
        return AnalysisRequest(kind=spec.kind, algo=spec.key, params=params)
    if spec.kind in ("motifs", "discords", "pan_profile"):
        return AnalysisRequest(
            kind=spec.kind, algo=spec.key, params={"min_length": 14, "max_length": 17}
        )
    if spec.kind in ("ab_join", "mpdist"):
        return AnalysisRequest(
            kind=spec.kind,
            algo=spec.key,
            params={"other": other.tolist(), "window": 20},
        )
    raise AssertionError(f"no request generator for kind {spec.kind!r}")


class TestDigestOnlyRoundTrip:
    def test_second_request_ships_no_values_and_matches_oracle(
        self, service, values, other
    ):
        """The acceptance criterion, verbatim: one upload, then digest-only
        submissions whose results are JSON-identical to the direct session,
        for every algorithm in the registry."""
        client = ServiceClient(port=service.port)
        sent = _spy(client)
        session = repro.analyze(values, name="series")
        for index, spec in enumerate(iter_specs()):
            request = _request_for(spec, other)
            sent.clear()
            served, _source = client.analyze(values, request)
            posts = [entry for entry in sent if entry[0] == "POST"]
            puts = [entry for entry in sent if entry[0] == "PUT"]
            if index == 0:
                # First contact: digest probe, one upload, one retry.
                assert len(puts) == 1 and len(posts) == 2
            else:
                assert not puts and len(posts) == 1
            for _method, _path, body in posts:
                document = json.loads(body.decode("utf-8"))
                assert "values" not in document
                assert "series" not in document
                assert document["series_digest"] == session.series_digest
            direct = session.run(request)
            assert json.dumps(
                _without_timing(served.as_dict()["payload"]), sort_keys=True
            ) == json.dumps(
                _without_timing(direct.as_dict()["payload"]), sort_keys=True
            )
            assert served.as_dict()["payload_type"] == direct.as_dict()["payload_type"]
        client.close()

    def test_unknown_digest_answers_404_with_marker(self, service, values):
        client = ServiceClient(port=service.port)
        digest = repro.DataSeries(values).digest()
        status, payload = client._exchange(
            "POST",
            "/analyze",
            json.dumps(
                {
                    "series_digest": digest,
                    "request": {"kind": "matrix_profile", "params": {"window": 16}},
                }
            ).encode("utf-8"),
        )
        assert status == 404
        assert payload["unknown_digest"] == digest
        client.close()

    def test_upload_with_wrong_digest_is_rejected(self, service, values):
        client = ServiceClient(port=service.port)
        with pytest.raises(ServiceError, match="digest mismatch") as info:
            client.put_series(values, digest="c" * 40)
        assert info.value.status == 422
        # The forged identity must not have entered the catalog.
        assert client.series_info("c" * 40) is None
        client.close()

    def test_upload_survives_server_restart(self, tmp_path, values):
        """The store is the durable half: a fresh server over the same
        store directory resolves the digest with no re-upload."""
        config = ServiceConfig(port=0, workers=1, store_dir=tmp_path / "store")
        request = AnalysisRequest(kind="matrix_profile", params={"window": 24})
        with BackgroundService(config) as background:
            with ServiceClient(port=background.port) as client:
                client.analyze(values, request)
        with BackgroundService(config) as background:
            with ServiceClient(port=background.port) as client:
                sent = _spy(client)
                served, _ = client.analyze(values, request)
                assert [entry[0] for entry in sent] == ["POST"]
        direct = repro.analyze(values).matrix_profile(24).profile()
        np.testing.assert_allclose(served.profile().distances, direct.distances)

    def test_no_store_server_negotiates_via_session_pool(self, values):
        with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
            with ServiceClient(port=background.port) as client:
                request = AnalysisRequest(kind="matrix_profile", params={"window": 16})
                _, source = client.analyze(values, request)
                assert source == "computed"
                sent = _spy(client)
                _, source = client.analyze(values, request)
                assert source == "memory"
                assert [entry[0] for entry in sent] == ["POST"]

    def test_series_names_with_unsafe_characters_survive_upload(
        self, service, values
    ):
        """Names come from file paths and --name flags: a space (or worse)
        must neither break the PUT request line nor arrive mangled."""
        with ServiceClient(port=service.port) as client:
            series = repro.DataSeries(values, name="my series & more")
            served, _ = client.analyze(
                series, AnalysisRequest(kind="matrix_profile", params={"window": 16})
            )
            assert served.series_name == "my series & more"
            info = client.series_info(series.digest())
            assert info is not None and info["name"] == "my series & more"

    def test_values_transport_still_accepted(self, service, values):
        with ServiceClient(port=service.port) as client:
            status, payload = client.analyze_raw(
                values,
                AnalysisRequest(kind="matrix_profile", params={"window": 16}),
                transport="values",
            )
            assert status == 200
            assert payload["cache"] in ("computed", "memory", "persistent")


class TestKeepAlive:
    def test_sequential_calls_share_one_connection(self, service, values):
        """The keep-alive regression gate: two client calls, one accepted
        server connection."""
        with ServiceClient(port=service.port) as client:
            client.analyze(
                values, AnalysisRequest(kind="matrix_profile", params={"window": 16})
            )
            client.analyze(
                values, AnalysisRequest(kind="matrix_profile", params={"window": 18})
            )
            stats = client.stats()
        # analyze x2 (incl. negotiation) + /stats all rode one socket.
        assert stats["connections"] == 1

    def test_connection_close_is_honoured(self, service, values):
        """A Connection: close request still gets exactly one answer and a
        closed socket (the pre-keep-alive contract)."""
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", service.port, timeout=30)
        try:
            connection.request("GET", "/health", headers={"Connection": "close"})
            response = connection.getresponse()
            assert response.status == 200
            assert response.will_close
        finally:
            connection.close()

    def test_client_recovers_from_a_server_side_close(self, service, values):
        """A stale kept-alive socket (server dropped it) is retried on a
        fresh connection instead of surfacing an error."""
        with ServiceClient(port=service.port) as client:
            assert client.health()["status"] == "ok"
            # Sabotage the cached connection behind the client's back.
            client._connection.sock.close()
            assert client.health()["status"] == "ok"


class TestSessionSegmentReuse:
    def test_two_engine_runs_pack_once_and_close_unlinks(
        self, values, monkeypatch
    ):
        """The in-session acceptance criterion: same series, two
        engine-backed runs, one pack; close() unlinks the segment."""
        probe = SharedSeriesBuffer.create({"probe": np.arange(4.0)})
        if probe is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        probe.close()
        probe.unlink()

        creates = []
        original = SharedSeriesBuffer.create.__func__

        def counting(cls, arrays):
            creates.append(tuple(sorted(arrays)))
            return original(cls, arrays)

        monkeypatch.setattr(
            SharedSeriesBuffer, "create", classmethod(counting)
        )
        session = repro.analyze(
            values, engine=repro.EngineConfig(executor="parallel", n_jobs=1)
        )
        first = session.matrix_profile(20, cache=False).profile()
        second = session.matrix_profile(20, cache=False).profile()
        assert len(creates) == 1, "the second run must reuse the packed segment"
        np.testing.assert_allclose(first.distances, second.distances)
        oracle = repro.analyze(values).matrix_profile(20).profile()
        np.testing.assert_allclose(first.distances, oracle.distances, atol=1e-8)

        [key] = session.segment_pool.keys()
        assert key == f"{session.series_digest}:w20"
        segment_name = session.segment_pool._segments[key].name
        session.close()
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment_name, create=False)

    def test_different_windows_use_distinct_segments(self, values, monkeypatch):
        if SharedSeriesBuffer.create({"probe": np.arange(4.0)}) is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        with repro.analyze(
            values, engine=repro.EngineConfig(executor="parallel", n_jobs=1)
        ) as session:
            session.matrix_profile(16, cache=False)
            session.matrix_profile(24, cache=False)
            assert sorted(session.segment_pool.keys()) == sorted(
                [
                    f"{session.series_digest}:w16",
                    f"{session.series_digest}:w24",
                ]
            )
        assert len(session.segment_pool) == 0 or session.closed

    def test_pool_factory_runs_once_per_key(self):
        pool = SharedSegmentPool()
        calls = []

        def factory():
            calls.append(1)
            return {"x": np.arange(8.0)}

        first = pool.acquire("k", factory)
        if first is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        second = pool.acquire("k", factory)
        assert first is second
        assert len(calls) == 1
        pool.close()
        assert len(pool) == 0

    def test_pool_is_byte_capped(self):
        """A window sweep must not grow /dev/shm without bound: the pool
        evicts (and unlinks) cold segments past its byte budget, keeping
        the one just acquired."""
        from multiprocessing import shared_memory

        pool = SharedSegmentPool(max_bytes=200)  # one 10-float segment = 80B
        segments = {}
        for index in range(4):
            buffer = pool.acquire(
                f"k{index}", lambda i=index: {"x": np.full(10, float(i))}
            )
            if buffer is None:
                pytest.skip("platform refuses shared-memory segments at runtime")
            segments[f"k{index}"] = buffer.name
        assert pool.total_bytes <= 200
        assert "k3" in pool.keys(), "the newest segment always stays"
        assert "k0" not in pool.keys()
        with pytest.raises(FileNotFoundError):  # evicted AND unlinked
            shared_memory.SharedMemory(name=segments["k0"], create=False)
        # A re-acquire after eviction transparently re-packs.
        again = pool.acquire("k0", lambda: {"x": np.full(10, 0.0)})
        assert again is not None and "k0" in pool.keys()
        pool.close()


def test_cli_request_digest_transport(tmp_path, capsys):
    """CLI smoke: `repro store put` + a digest-only `repro request` against
    a live server sharing the same data root."""
    from repro.cli import main as cli_main

    data_root = tmp_path / "data"
    assert (
        cli_main(
            [
                "store",
                "--data-dir",
                str(data_root),
                "put",
                "--workload",
                "ecg",
                "--length",
                "512",
            ]
        )
        == 0
    )
    digest_line = capsys.readouterr().out.strip().splitlines()[-1]
    digest = digest_line.split()[-1]

    config = ServiceConfig(
        port=0, workers=1, store_dir=data_root / "series"
    )
    with BackgroundService(config) as background:
        assert (
            cli_main(
                [
                    "request",
                    "--url",
                    f"http://127.0.0.1:{background.port}",
                    "--workload",
                    "ecg",
                    "--length",
                    "512",
                    "--kind",
                    "matrix_profile",
                    "--params",
                    '{"window": 32}',
                ]
            )
            == 0
        )
        document = json.loads(capsys.readouterr().out)
        assert document["payload_type"] == "matrix_profile"
        # The workload series was already catalogued by `store put`, so the
        # digest-only request resolved without a single upload.
        assert background.service.stats()["uploads"] == 0
        assert background.service.stats()["store"]["entries"] == 1
        assert next(iter(background.service.stats()["sessions"]))[
            "series_digest"
        ] == digest
