"""Tests for the CLI sub-commands added by the reproduction extensions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.generators import generate_ecg
from repro.series.loaders import save_text


class TestParser:
    def test_new_subcommands_registered(self):
        parser = build_parser()
        for command in ("discords", "motif-set", "stream", "mpdist"):
            args = {
                "discords": ["discords", "--workload", "ecg", "--min-length", "32", "--max-length", "40"],
                "motif-set": ["motif-set", "--workload", "ecg", "--min-length", "32", "--max-length", "40"],
                "stream": ["stream", "--workload", "ecg"],
                "mpdist": ["mpdist", "a.txt", "b.txt", "--window", "16"],
            }[command]
            parsed = parser.parse_args(args)
            assert parsed.command == command

    def test_extension_figures_registered(self):
        parser = build_parser()
        parsed = parser.parse_args(["figure", "--name", "ablation-anytime"])
        assert parsed.name == "ablation-anytime"
        with pytest.raises(SystemExit):
            parser.parse_args(["figure", "--name", "not-a-figure"])


class TestDiscordsCommand:
    def test_runs_on_workload(self, capsys):
        exit_code = main(
            [
                "discords",
                "--workload",
                "ecg",
                "--length",
                "800",
                "--min-length",
                "32",
                "--max-length",
                "48",
                "--top-k",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "offset" in captured.out
        assert "normalized_distance" in captured.out


class TestMotifSetCommand:
    def test_runs_on_workload(self, capsys):
        exit_code = main(
            [
                "motif-set",
                "--workload",
                "ecg",
                "--length",
                "800",
                "--min-length",
                "32",
                "--max-length",
                "40",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "best motif pair" in captured.out
        assert "motif set" in captured.out


class TestStreamCommand:
    def test_replays_workload(self, capsys):
        exit_code = main(
            [
                "stream",
                "--workload",
                "ecg",
                "--length",
                "900",
                "--warmup",
                "600",
                "--windows",
                "48",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "replayed 300 points" in captured.out
        assert "final best motif @ length 48" in captured.out


class TestMpdistCommand:
    def test_computes_distance_between_files(self, tmp_path, capsys):
        first = generate_ecg(400, beat_period=60, random_state=0)
        second = generate_ecg(400, beat_period=60, random_state=1)
        first_path = tmp_path / "first.txt"
        second_path = tmp_path / "second.txt"
        save_text(first, first_path)
        save_text(second, second_path)
        exit_code = main(
            ["mpdist", str(first_path), str(second_path), "--window", "32"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "MPdist" in captured.out
        value = float(captured.out.strip().rsplit("=", 1)[1])
        assert value >= 0.0

    def test_identical_files_give_zero(self, tmp_path, capsys):
        series = generate_ecg(300, beat_period=60, random_state=2)
        path = tmp_path / "series.txt"
        save_text(series, path)
        main(["mpdist", str(path), str(path), "--window", "32"])
        captured = capsys.readouterr()
        value = float(captured.out.strip().rsplit("=", 1)[1])
        assert value == pytest.approx(0.0, abs=1e-9)


class TestFigureCommandExtensions:
    def test_extension_domain_figure_prints_rows(self, capsys):
        exit_code = main(["figure", "--name", "ablation-anytime", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "profile_mae" in captured.out
