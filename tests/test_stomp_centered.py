"""Regression pins for the mean-centered STOMP recurrence.

PR 2 centered the MASS / distance-profile / AB-join dot products but left
the STOMP *recurrence* on raw values — the last ROADMAP accuracy item.  On
a series sitting at offset 1e6 each raw recurrence step carries rounding
error of magnitude ``~eps·|T|²_max ≈ 1e-4`` that survives the
``qt → correlation`` cancellation; the measured profile drift of a full
serial sweep is ~1e-2.  Shifting the values once (the recurrence now runs
on :attr:`~repro.stats.sliding.SlidingStats.centered_values`) cuts the
error at the source — these tests pin the improvement at 1e-5 (observed
~1.6e-7) against the definition-level brute-force oracle.

Since the partial-profile store went mean-centered (PR 4), the sweep is
centered unconditionally: ``profile_callback`` and the store ingest both
receive centered dot products, and VALMOD's reported distances get the same
~1e-6 accuracy at offset 1e6 as every other path (pinned at 1e-5 below —
they used to carry ~1e-3 relative error by the old raw-value contract).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.engine.partition import partitioned_stomp
from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.stomp import stomp
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats

WINDOW = 64
OFFSET = 1e6


@pytest.fixture(scope="module")
def offset_series() -> np.ndarray:
    rng = np.random.default_rng(2018)
    return OFFSET + np.cumsum(rng.normal(size=900))


@pytest.fixture(scope="module")
def oracle(offset_series):
    return brute_force_matrix_profile(offset_series, WINDOW)


def test_serial_recurrence_drift_at_large_offset(offset_series, oracle):
    profile = stomp(offset_series, WINDOW)
    drift = float(np.max(np.abs(profile.distances - oracle.distances)))
    assert drift <= 1e-5, drift
    np.testing.assert_array_equal(profile.indices, oracle.indices)


def test_engine_recurrence_drift_at_large_offset(offset_series, oracle):
    profile = partitioned_stomp(
        offset_series, WINDOW, executor="serial", block_size=200
    )
    drift = float(np.max(np.abs(profile.distances - oracle.distances)))
    assert drift <= 1e-5, drift
    np.testing.assert_array_equal(profile.indices, oracle.indices)


def test_session_memoized_first_row_matches_fresh_sweep(offset_series):
    """The session hands stomp a memoized ``centered_first_row_qt``; the
    result must equal the sweep that computes its own seed."""
    session = repro.analyze(offset_series)
    via_session = session.matrix_profile(WINDOW).profile()
    fresh = stomp(offset_series, WINDOW)
    np.testing.assert_array_equal(via_session.distances, fresh.distances)
    np.testing.assert_array_equal(via_session.indices, fresh.indices)


def test_callback_sweep_is_centered_too(offset_series, oracle):
    """A profile_callback no longer forces the raw-value sweep: the profile
    computed alongside a callback must carry the centered accuracy."""
    with_callback = stomp(offset_series, WINDOW, profile_callback=lambda o, qt, d: None)
    drift = float(np.max(np.abs(with_callback.distances - oracle.distances)))
    assert drift <= 1e-5, drift
    np.testing.assert_array_equal(with_callback.indices, oracle.indices)


def test_callback_contract_is_centered(offset_series):
    """The callback receives mean-centered dot products — row 0 must equal
    the sliding products of the centered series exactly (and be nothing
    like the raw products, which sit ~1e13 away on this series)."""
    seen = {}

    def capture(offset, dot_products, _distances):
        if offset == 0:
            seen["qt"] = np.array(dot_products)

    stomp(offset_series, WINDOW, profile_callback=capture)
    centered_series = SlidingStats(offset_series).centered_values
    expected = sliding_dot_product(centered_series[:WINDOW], centered_series)
    np.testing.assert_allclose(seen["qt"], expected, rtol=1e-12)
    raw = sliding_dot_product(offset_series[:WINDOW], offset_series)
    assert float(np.min(np.abs(raw - seen["qt"]))) > 1e10


def test_centered_sweep_is_identical_on_well_scaled_series():
    """On an ordinary series the centering must be invisible: the profile
    still matches brute force to the library's standard tolerance."""
    values = np.cumsum(np.random.default_rng(4).standard_normal(500))
    profile = stomp(values, 32)
    oracle = brute_force_matrix_profile(values, 32)
    np.testing.assert_allclose(profile.distances, oracle.distances, atol=1e-8)
    np.testing.assert_array_equal(profile.indices, oracle.indices)


def test_valmod_finds_same_motifs_and_distances_at_large_offset(offset_series):
    """End-to-end guard: VALMOD's centered base pass discovers the same
    pairs as STOMP-range at every length — and now that the partial-profile
    store is mean-centered end-to-end, the *reported distances* agree to
    1e-6 relative as well (they used to carry ~1e-3 error from the raw
    store contract)."""
    stats = SlidingStats(offset_series)
    valmod = repro.valmod(offset_series, 48, 52, stats=stats)
    reference = repro.stomp_range(offset_series, 48, 52, stats=stats)
    for length in valmod.lengths:
        best_valmod = valmod.length_results[length].motifs[0]
        best_reference = reference.motifs_at(length)[0]
        assert {best_valmod.offset_a, best_valmod.offset_b} == {
            best_reference.offset_a,
            best_reference.offset_b,
        }, length
        np.testing.assert_allclose(
            best_valmod.distance, best_reference.distance, rtol=1e-6
        )
