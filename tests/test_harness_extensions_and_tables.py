"""Tests for the extension experiment functions and the table rendering."""

from __future__ import annotations

import csv

import pytest

from repro.exceptions import InvalidParameterError
from repro.harness.extensions import (
    ablation_anytime_scrimp,
    extension_domains_table,
    skimp_vs_valmod,
    streaming_throughput,
)
from repro.harness.tables import (
    format_markdown_table,
    format_table,
    save_rows_csv,
    select_columns,
)


class TestAblationAnytime:
    def test_rows_cover_requested_fractions_and_converge(self):
        rows = ablation_anytime_scrimp(
            workload="ecg",
            series_length=512,
            window=48,
            fractions=(0.1, 0.5, 1.0),
            random_state=0,
        )
        assert [row["fraction"] for row in rows] == [0.1, 0.5, 1.0]
        assert rows[-1]["profile_mae"] == pytest.approx(0.0, abs=1e-6)
        assert rows[0]["profile_mae"] >= rows[-1]["profile_mae"]
        assert all(row["workload"] == "ecg" for row in rows)


class TestStreamingThroughput:
    def test_incremental_beats_batch_per_point(self):
        rows = streaming_throughput(
            workload="ecg",
            initial_length=512,
            appended_points=48,
            window=48,
            random_state=0,
        )
        assert len(rows) == 2
        incremental = next(row for row in rows if "incremental" in row["strategy"])
        batch = next(row for row in rows if "batch" in row["strategy"])
        assert incremental["seconds"] < batch["seconds"]
        # Both strategies end with the identical exact profile tail value.
        assert incremental["final_tail_distance"] == pytest.approx(
            batch["final_tail_distance"], abs=1e-6
        )


class TestSkimpVsValmod:
    def test_exact_agreement_between_the_two(self):
        rows = skimp_vs_valmod(
            workload="ecg",
            series_length=768,
            min_length=48,
            range_width=8,
            random_state=0,
        )
        assert len(rows) == 2
        assert all(row["disagreements"] == 0 for row in rows)
        algorithms = {row["algorithm"] for row in rows}
        assert "valmod" in algorithms


class TestExtensionDomains:
    def test_rows_for_every_requested_workload(self):
        rows = extension_domains_table(
            series_length=1024, random_state=0, workloads=("gait", "respiration")
        )
        assert [row["workload"] for row in rows] == ["gait", "respiration"]
        for row in rows:
            low, high = row["length_range"]
            assert low <= row["best_motif_length"] <= high
            assert row["normalized_distance"] >= 0.0


class TestTables:
    ROWS = [
        {"name": "valmod", "seconds": 1.2345, "exact": True},
        {"name": "stomp-range", "seconds": 10.5, "exact": True, "note": "re-run"},
    ]

    def test_format_table_aligns_columns(self):
        text = format_table(self.ROWS)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 2 + len(self.ROWS)
        # The column that only appears in the second row is still present.
        assert "note" in lines[0]

    def test_format_markdown_table(self):
        text = format_markdown_table(self.ROWS, columns=["name", "seconds"])
        lines = text.splitlines()
        assert lines[0] == "| name | seconds |"
        assert lines[1] == "|---|---|"
        assert lines[2].startswith("| valmod |")

    def test_float_formatting(self):
        text = format_table(self.ROWS, float_format=".2f")
        assert "1.23" in text
        assert "10.50" in text

    def test_boolean_and_sequence_rendering(self):
        rows = [{"flag": False, "range": (10, 20)}]
        text = format_table(rows)
        assert "no" in text
        assert "10, 20" in text

    def test_empty_rows_raise(self):
        with pytest.raises(InvalidParameterError):
            format_table([])
        with pytest.raises(InvalidParameterError):
            format_markdown_table([])
        with pytest.raises(InvalidParameterError):
            format_table(self.ROWS, columns=[])

    def test_select_columns(self):
        projected = select_columns(self.ROWS, ["name", "missing"])
        assert projected[0] == {"name": "valmod", "missing": ""}
        with pytest.raises(InvalidParameterError):
            select_columns([], ["name"])

    def test_save_rows_csv(self, tmp_path):
        target = save_rows_csv(self.ROWS, tmp_path / "out" / "rows.csv")
        assert target.exists()
        with target.open() as handle:
            reader = csv.DictReader(handle)
            loaded = list(reader)
        assert loaded[0]["name"] == "valmod"
        assert len(loaded) == 2
