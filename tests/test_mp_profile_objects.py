"""Unit tests for MatrixProfile / MotifPair result objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.profile import MatrixProfile, MotifPair
from repro.matrix_profile.stomp import stomp


class TestMotifPair:
    def test_offsets_ordered(self):
        pair = MotifPair(distance=1.0, offset_a=30, offset_b=10, window=16)
        assert pair.offset_a == 10
        assert pair.offset_b == 30
        assert pair.offsets == (10, 30)

    def test_normalized_distance(self):
        pair = MotifPair(distance=4.0, offset_a=0, offset_b=100, window=16)
        assert pair.normalized_distance == pytest.approx(1.0)

    def test_sortable_by_distance(self):
        pairs = [
            MotifPair(distance=2.0, offset_a=0, offset_b=50, window=8),
            MotifPair(distance=1.0, offset_a=5, offset_b=60, window=8),
        ]
        assert sorted(pairs)[0].distance == 1.0

    def test_rejects_identical_offsets(self):
        with pytest.raises(InvalidParameterError):
            MotifPair(distance=1.0, offset_a=5, offset_b=5, window=8)

    def test_rejects_negative_distance(self):
        with pytest.raises(InvalidParameterError):
            MotifPair(distance=-1.0, offset_a=0, offset_b=5, window=8)

    def test_overlaps(self):
        a = MotifPair(distance=1.0, offset_a=0, offset_b=100, window=16)
        b = MotifPair(distance=1.0, offset_a=2, offset_b=200, window=16)
        c = MotifPair(distance=1.0, offset_a=50, offset_b=200, window=16)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_as_dict(self):
        pair = MotifPair(distance=1.0, offset_a=0, offset_b=5, window=4)
        payload = pair.as_dict()
        assert payload["offset_a"] == 0
        assert payload["normalized_distance"] == pytest.approx(0.5)


class TestMatrixProfileObject:
    def _profile(self):
        distances = np.array([1.0, 0.5, 2.0, 0.4, 3.0, 0.9])
        indices = np.array([3, 3, 5, 1, 0, 2])
        return MatrixProfile(distances=distances, indices=indices, window=4, exclusion_radius=1)

    def test_len_and_iter(self):
        profile = self._profile()
        assert len(profile) == 6
        assert list(profile)[0] == (1.0, 3)

    def test_best(self):
        best = self._profile().best()
        assert best.offsets == (1, 3)
        assert best.distance == 0.4

    def test_motifs_respect_exclusion(self):
        motifs = self._profile().motifs(k=2)
        assert len(motifs) == 2
        first, second = motifs
        # pairs come out best-first and the second selection skipped every
        # offset inside the first pair's exclusion zones (0..4 here), so it
        # must have been seeded from offset 5
        assert first.distance == pytest.approx(0.4)
        assert first.offsets == (1, 3)
        assert second.distance == pytest.approx(0.9)
        assert 5 in second.offsets

    def test_motifs_k_larger_than_available(self):
        motifs = self._profile().motifs(k=50)
        assert 1 <= len(motifs) <= 3

    def test_discords(self):
        discords = self._profile().discords(k=2)
        assert discords[0] == 4  # largest distance
        assert len(discords) == 2

    def test_normalized_distances(self):
        profile = self._profile()
        np.testing.assert_allclose(profile.normalized_distances, profile.distances / 2.0)

    def test_mismatched_arrays_raise(self):
        with pytest.raises(InvalidParameterError):
            MatrixProfile(
                distances=np.zeros(5), indices=np.zeros(4, dtype=int), window=4, exclusion_radius=1
            )

    def test_best_on_all_inf_raises(self):
        profile = MatrixProfile(
            distances=np.full(4, np.inf),
            indices=np.full(4, -1, dtype=int),
            window=3,
            exclusion_radius=1,
        )
        with pytest.raises(EmptyResultError):
            profile.best()

    def test_invalid_k_raises(self):
        with pytest.raises(InvalidParameterError):
            self._profile().motifs(k=0)
        with pytest.raises(InvalidParameterError):
            self._profile().discords(k=0)

    def test_as_dict_round_trip_fields(self):
        payload = self._profile().as_dict()
        assert payload["window"] == 4
        assert len(payload["distances"]) == 6


class TestMotifExtractionOnRealProfile:
    def test_motifs_are_disjoint_on_ecg(self, small_ecg_series):
        profile = stomp(small_ecg_series, 30)
        motifs = profile.motifs(k=3)
        assert len(motifs) >= 2
        # pairs are returned best-first
        distances = [pair.distance for pair in motifs]
        assert distances == sorted(distances)
        # no two selected left-members trivially match each other
        radius = profile.exclusion_radius
        lefts = [pair.offset_a for pair in motifs]
        for i in range(len(lefts)):
            for j in range(i + 1, len(lefts)):
                assert abs(lefts[i] - lefts[j]) > radius

    def test_discords_far_from_each_other(self, small_ecg_series):
        profile = stomp(small_ecg_series, 30)
        discords = profile.discords(k=3)
        radius = profile.exclusion_radius
        for i in range(len(discords)):
            for j in range(i + 1, len(discords)):
                assert abs(discords[i] - discords[j]) > radius
