"""Round-trip tests for the extension artefacts (AB-join and pan profiles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.skimp import skimp
from repro.exceptions import SerializationError
from repro.io import (
    load_join_profile,
    load_pan_profile,
    save_join_profile,
    save_matrix_profile,
    save_pan_profile,
)
from repro.matrix_profile.ab_join import ab_join
from repro.matrix_profile.stomp import stomp


class TestJoinProfileRoundTrip:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        series_a = np.cumsum(rng.normal(size=120))
        series_b = np.cumsum(rng.normal(size=150))
        join = ab_join(series_a, series_b, 16)
        path = save_join_profile(join, tmp_path / "join.json")
        loaded = load_join_profile(path)
        np.testing.assert_allclose(loaded.distances, join.distances)
        np.testing.assert_array_equal(loaded.indices, join.indices)
        assert loaded.window == join.window
        assert loaded.best() == join.best()

    def test_wrong_kind_rejected(self, tmp_path, small_random_series):
        profile = stomp(small_random_series, 16)
        path = save_matrix_profile(profile, tmp_path / "mp.json")
        with pytest.raises(SerializationError):
            load_join_profile(path)


class TestPanProfileRoundTrip:
    def test_round_trip_with_nan_padding(self, tmp_path, small_random_series):
        pan = skimp(small_random_series, 16, 24, lengths=[16, 20, 24])
        path = save_pan_profile(pan, tmp_path / "pan.json")
        loaded = load_pan_profile(path)
        assert loaded.lengths.tolist() == pan.lengths.tolist()
        assert loaded.min_length == pan.min_length
        assert loaded.max_length == pan.max_length
        np.testing.assert_allclose(
            loaded.normalized_profiles, pan.normalized_profiles, equal_nan=True
        )
        np.testing.assert_array_equal(loaded.index_profiles, pan.index_profiles)
        # Derived views keep working on the reloaded object.
        assert loaded.best_pair_at(20).distance == pytest.approx(
            pan.best_pair_at(20).distance, abs=1e-9
        )

    def test_collapse_survives_round_trip(self, tmp_path, small_ecg_series):
        pan = skimp(small_ecg_series, 24, 28)
        path = save_pan_profile(pan, tmp_path / "pan.json")
        loaded = load_pan_profile(path)
        np.testing.assert_allclose(
            loaded.collapse().normalized_profile,
            pan.collapse().normalized_profile,
            atol=1e-12,
        )

    def test_wrong_kind_rejected(self, tmp_path, small_random_series):
        profile = stomp(small_random_series, 16)
        path = save_matrix_profile(profile, tmp_path / "mp.json")
        with pytest.raises(SerializationError):
            load_pan_profile(path)
