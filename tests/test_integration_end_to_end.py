"""End-to-end integration and property tests across the whole library.

These tests exercise the public package-level API the way the examples and a
downstream user would, including a hypothesis sweep asserting the central
claim of the paper's reproduction: VALMOD's per-length motif distances are
*identical* to the ones a per-length exact algorithm reports, on arbitrary
(random) inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro


class TestPublicApi:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in ("valmod", "stomp", "mass", "generate_ecg", "DataSeries"):
            assert hasattr(repro, name)
        assert set(repro.__all__) <= set(dir(repro))

    def test_quickstart_flow(self):
        series, truth = repro.generate_planted_motifs(
            1000, motif_lengths=(40,), copies_per_motif=2, random_state=0
        )
        result = repro.valmod(series, 32, 48, top_k=2)
        best = result.best_motif()
        motif_set = repro.expand_motif_pair(series, best)
        report = repro.rank_motif_pairs(result.all_motifs(), 3)
        assert len(motif_set) >= 2
        assert len(report) >= 1
        planted = truth[0]
        assert min(abs(best.offset_a - o) for o in planted.offsets) <= planted.length

    def test_dataseries_and_raw_arrays_give_same_result(self):
        series = repro.generate_ecg(400, beat_period=50, random_state=2)
        from_series = repro.valmod(series, 20, 26, top_k=1)
        from_array = repro.valmod(np.array(series.values), 20, 26, top_k=1)
        for length in from_series.lengths:
            assert from_series.motifs_at(length)[0].distance == pytest.approx(
                from_array.motifs_at(length)[0].distance, abs=1e-12
            )

    def test_loaders_round_trip_through_discovery(self, tmp_path):
        series = repro.generate_astro(600, transit_duration=50, transit_period=200, random_state=1)
        path = tmp_path / "astro.txt"
        from repro.series import save_text

        save_text(series, path)
        reloaded = repro.load_text(path)
        original = repro.valmod(series, 30, 36, top_k=1)
        recovered = repro.valmod(reloaded, 30, 36, top_k=1)
        for length in original.lengths:
            assert original.motifs_at(length)[0].distance == pytest.approx(
                recovered.motifs_at(length)[0].distance, abs=1e-9
            )


class TestCrossAlgorithmProperties:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        base=st.integers(min_value=8, max_value=20),
        width=st.integers(min_value=1, max_value=10),
        smooth=st.booleans(),
    )
    def test_property_valmod_equals_stomp_range(self, seed, base, width, smooth):
        """The central exactness property on arbitrary random inputs."""
        rng = np.random.default_rng(seed)
        steps = rng.normal(size=220)
        values = np.cumsum(steps)
        if smooth:
            values = np.convolve(values, np.full(5, 0.2), mode="valid")
        max_length = base + width
        result = repro.valmod(values, base, max_length, top_k=1, profile_capacity=8)
        oracle = repro.stomp_range(values, base, max_length, top_k=1)
        for length in oracle.lengths:
            assert result.motifs_at(length)[0].distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_valmap_entries_are_achievable_distances(self, seed):
        """Every VALMAP entry corresponds to a real pair at the recorded length."""
        rng = np.random.default_rng(seed)
        values = np.cumsum(rng.normal(size=200))
        result = repro.valmod(values, 12, 20, top_k=2)
        valmap = result.valmap
        from repro.stats.distance import znorm_euclidean

        checked = 0
        for offset in valmap.updated_positions().tolist()[:5]:
            length = int(valmap.length_profile[offset])
            match = int(valmap.index_profile[offset])
            expected = znorm_euclidean(
                values[offset : offset + length], values[match : match + length]
            ) / np.sqrt(length)
            assert valmap.normalized_profile[offset] == pytest.approx(expected, abs=1e-6)
            checked += 1
        # positions never updated must still carry the base-length profile value
        base_positions = np.flatnonzero(valmap.length_profile == 12)[:5]
        for offset in base_positions.tolist():
            assert valmap.normalized_profile[offset] == pytest.approx(
                result.base_profile.normalized_distances[offset], abs=1e-9
            )

    def test_motif_distances_decrease_with_top_k_rank(self, small_ecg_series):
        result = repro.valmod(small_ecg_series, 24, 30, top_k=4)
        for length in result.lengths:
            distances = [pair.distance for pair in result.motifs_at(length)]
            assert distances == sorted(distances)

    def test_discords_and_motifs_are_different_offsets(self, small_ecg_series):
        result = repro.valmod(small_ecg_series, 30, 36, top_k=1)
        best = result.best_motif()
        discords = repro.variable_length_discords(
            small_ecg_series, 30, 36, k=1, length_step=6
        )
        top_discord = discords[0]
        assert abs(top_discord.offset - best.offset_a) > 5
