"""Unit tests for repro.stats.distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import InvalidParameterError
from repro.stats.distance import (
    correlation_to_distance,
    distance_to_correlation,
    length_normalized,
    pairwise_znorm_distance,
    znorm_euclidean,
)
from repro.stats.znorm import znormalize

pair_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=3, max_value=40),
    elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False, width=64),
)


class TestZnormEuclidean:
    def test_identical_sequences_have_zero_distance(self):
        values = np.random.default_rng(0).normal(size=20)
        assert znorm_euclidean(values, values) == pytest.approx(0.0, abs=1e-9)

    def test_scale_shift_invariance(self):
        values = np.random.default_rng(1).normal(size=25)
        assert znorm_euclidean(values, 5.0 * values + 2.0) == pytest.approx(0.0, abs=1e-7)

    def test_matches_definition(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=30), rng.normal(size=30)
        expected = float(np.linalg.norm(znormalize(a) - znormalize(b)))
        assert znorm_euclidean(a, b) == pytest.approx(expected)

    def test_constant_conventions(self):
        constant = np.full(16, 3.0)
        other = np.random.default_rng(3).normal(size=16)
        assert znorm_euclidean(constant, constant * 2) == 0.0
        assert znorm_euclidean(constant, other) == pytest.approx(np.sqrt(16))

    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            znorm_euclidean(np.ones(5), np.ones(6))

    def test_anticorrelated_is_maximal(self):
        values = np.sin(np.linspace(0, 4 * np.pi, 64))
        distance = znorm_euclidean(values, -values)
        assert distance == pytest.approx(np.sqrt(4 * 64), rel=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(a=pair_arrays)
    def test_property_bounded_by_2_sqrt_m(self, a):
        b = np.roll(a, 1) + 1.0
        m = a.size
        distance = znorm_euclidean(a, b[:m])
        assert 0.0 <= distance <= 2.0 * np.sqrt(m) + 1e-6


class TestConversions:
    def test_round_trip(self):
        for rho in (-1.0, -0.3, 0.0, 0.5, 1.0):
            distance = correlation_to_distance(rho, 50)
            assert distance_to_correlation(distance, 50) == pytest.approx(rho, abs=1e-9)

    def test_perfect_correlation_zero_distance(self):
        assert correlation_to_distance(1.0, 100) == pytest.approx(0.0)

    def test_vectorised(self):
        rho = np.array([0.0, 0.5, 1.0])
        distances = correlation_to_distance(rho, 10)
        assert isinstance(distances, np.ndarray)
        np.testing.assert_allclose(distances[2], 0.0, atol=1e-9)

    def test_correlation_clipped(self):
        # values slightly above 1 (floating point) must not yield NaN
        assert correlation_to_distance(1.0 + 1e-12, 20) == pytest.approx(0.0, abs=1e-6)

    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            correlation_to_distance(0.5, 0)
        with pytest.raises(InvalidParameterError):
            distance_to_correlation(1.0, 0)

    def test_consistency_with_direct_distance(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=40), rng.normal(size=40)
        rho = float(np.corrcoef(a, b)[0, 1])
        assert correlation_to_distance(rho, 40) == pytest.approx(
            znorm_euclidean(a, b), rel=1e-6
        )


class TestLengthNormalized:
    def test_scalar(self):
        assert length_normalized(10.0, 100) == pytest.approx(1.0)

    def test_array(self):
        np.testing.assert_allclose(
            length_normalized(np.array([2.0, 4.0]), 4), np.array([1.0, 2.0])
        )

    def test_bounded_for_znorm_distances(self):
        # d <= 2 sqrt(m)  =>  d / sqrt(m) <= 2
        assert length_normalized(2 * np.sqrt(123), 123) == pytest.approx(2.0)

    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            length_normalized(1.0, 0)


class TestPairwise:
    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(5)
        subsequences = rng.normal(size=(6, 12))
        matrix = pairwise_znorm_distance(subsequences)
        assert matrix.shape == (6, 6)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), np.zeros(6), atol=1e-12)

    def test_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            pairwise_znorm_distance(np.arange(5, dtype=float))


class TestCenteredDotProducts:
    """The compensated ``QT - m mu_q mu_j`` numerator (large-offset accuracy)."""

    @staticmethod
    def _exact_numerator(qt, window, query_mean, means):
        from fractions import Fraction

        return np.array(
            [
                float(
                    Fraction(q) - Fraction(window) * Fraction(query_mean) * Fraction(m)
                )
                for q, m in zip(qt.tolist(), means.tolist())
            ]
        )

    def test_compensated_beats_naive_on_large_offsets(self):
        from repro.stats.distance import centered_dot_products

        rng = np.random.default_rng(7)
        window = 64
        means = 1e6 + rng.normal(size=200)
        query_mean = 1e6 + float(rng.normal())
        # Dot products of the same magnitude as the product term, as they
        # are in the shifted-series scenario.
        qt = window * query_mean * means * (1.0 + 1e-9 * rng.normal(size=200))
        exact = self._exact_numerator(qt, window, query_mean, means)
        naive = qt - window * query_mean * means
        compensated = centered_dot_products(
            qt, window, query_mean, means, compensated=True
        )
        naive_error = float(np.max(np.abs(naive - exact)))
        compensated_error = float(np.max(np.abs(compensated - exact)))
        assert compensated_error < naive_error / 1e3
        # The compensated numerator is exact to a few ulps of the result.
        assert compensated_error <= 4 * np.finfo(np.float64).eps * np.max(np.abs(exact))

    def test_auto_mode_matches_naive_on_small_means(self):
        from repro.stats.distance import centered_dot_products

        rng = np.random.default_rng(8)
        qt = rng.normal(size=100)
        means = rng.normal(size=100)
        auto = centered_dot_products(qt, 32, 0.5, means)
        naive = qt - 32 * 0.5 * means
        np.testing.assert_array_equal(auto, naive)

    def test_vector_query_means_broadcast(self):
        from repro.stats.distance import centered_dot_products

        rng = np.random.default_rng(9)
        qt = rng.normal(size=(4, 5))
        means_a = rng.normal(size=(4, 1))
        means_b = rng.normal(size=(4, 5))
        result = centered_dot_products(qt, 16, means_a, means_b, compensated=True)
        np.testing.assert_allclose(result, qt - 16 * means_a * means_b, atol=1e-12)


class TestLargeOffsetProfiles:
    """Brute-force comparison of the centred MASS path at large offsets.

    The ROADMAP accuracy item: on series sitting at a large offset the naive
    ``qt -> correlation`` pipeline loses ~1e-3..1e-1 absolute accuracy to
    cancellation (dot products ~1e13, variances from raw prefix sums).  The
    centred pipeline keeps the error within ~1e-5 of the brute-force oracle.
    """

    @pytest.mark.parametrize("offset", [1e4, 1e6])
    def test_distance_profile_tracks_brute_force(self, offset):
        from repro.matrix_profile.brute_force import brute_force_distance_profile
        from repro.matrix_profile.distance_profile import distance_profile

        rng = np.random.default_rng(11)
        values = np.cumsum(rng.standard_normal(512)) + offset
        window, query = 48, 100
        computed = distance_profile(
            values, query, window, apply_exclusion=False
        )
        brute = brute_force_distance_profile(values, query, window)
        # Exclude the trivial self-match region, where the true distance is
        # ~0 and sqrt() turns eps-level correlation noise into ~1e-6.
        mask = np.ones(computed.size, dtype=bool)
        mask[query - window // 4 : query + window // 4 + 1] = False
        error = float(np.max(np.abs(computed[mask] - brute[mask])))
        assert error < 1e-5, f"offset {offset:g}: error {error:.3e}"

    @pytest.mark.parametrize("offset", [1e4, 1e6])
    def test_mass_tracks_brute_force(self, offset):
        from repro.matrix_profile.brute_force import brute_force_distance_profile
        from repro.matrix_profile.mass import mass

        rng = np.random.default_rng(12)
        values = np.cumsum(rng.standard_normal(512)) + offset
        window, query = 48, 333
        computed = mass(values[query : query + window], values)
        brute = brute_force_distance_profile(values, query, window)
        mask = np.ones(computed.size, dtype=bool)
        mask[query - window // 4 : query + window // 4 + 1] = False
        error = float(np.max(np.abs(computed[mask] - brute[mask])))
        assert error < 1e-5, f"offset {offset:g}: error {error:.3e}"
