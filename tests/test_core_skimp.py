"""Tests for the SKIMP pan matrix profile and its cross-checks against VALMOD."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skimp import PanMatrixProfile, breadth_first_lengths, skimp
from repro.core.valmod import valmod
from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.stomp import stomp


class TestBreadthFirstLengths:
    def test_covers_every_length_exactly_once(self):
        order = breadth_first_lengths(10, 30)
        assert sorted(order) == list(range(10, 31))
        assert len(order) == len(set(order))

    def test_first_visit_is_the_middle(self):
        order = breadth_first_lengths(16, 48)
        assert order[0] == (16 + 48) // 2

    def test_prefix_spreads_over_the_range(self):
        order = breadth_first_lengths(0, 127)
        prefix = sorted(order[:8])
        gaps = np.diff([0] + prefix + [127])
        # After 8 visits no un-visited stretch should span more than half the range.
        assert gaps.max() <= 64

    def test_single_length_range(self):
        assert breadth_first_lengths(7, 7) == [7]

    def test_invalid_range_raises(self):
        with pytest.raises(InvalidParameterError):
            breadth_first_lengths(10, 5)


class TestSkimpExactness:
    def test_each_row_matches_stomp(self, small_ecg_series):
        pan = skimp(small_ecg_series, 24, 32)
        for length in (24, 28, 32):
            expected = stomp(small_ecg_series, length)
            np.testing.assert_allclose(
                pan.profile_at(length).distances, expected.distances, atol=1e-6
            )

    def test_subset_of_lengths(self, small_random_series):
        pan = skimp(small_random_series, 16, 40, num_lengths=5)
        assert len(pan) == 5
        assert set(pan.lengths.tolist()) <= set(range(16, 41))

    def test_explicit_lengths(self, small_random_series):
        pan = skimp(small_random_series, 16, 40, lengths=[16, 24, 40])
        assert pan.lengths.tolist() == [16, 24, 40]
        with pytest.raises(InvalidParameterError):
            skimp(small_random_series, 16, 40, lengths=[8])
        with pytest.raises(InvalidParameterError):
            skimp(small_random_series, 16, 40, lengths=[])

    def test_invalid_num_lengths(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            skimp(small_random_series, 16, 24, num_lengths=0)


class TestPanAgainstValmod:
    def test_best_pair_per_length_agrees_with_valmod(self, small_ecg_series):
        min_length, max_length = 24, 31
        pan = skimp(small_ecg_series, min_length, max_length)
        result = valmod(small_ecg_series, min_length, max_length, top_k=1)
        for length in range(min_length, max_length + 1):
            pan_best = pan.best_pair_at(length)
            valmod_best = result.length_results[length].best
            assert pan_best.distance == pytest.approx(valmod_best.distance, abs=1e-6)

    def test_best_variable_length_motif_agrees(self, two_length_planted_series):
        series, _truth = two_length_planted_series
        pan = skimp(series, 28, 36)
        result = valmod(series, 28, 36, top_k=1)
        assert pan.best_motif().normalized_distance == pytest.approx(
            result.best_motif().normalized_distance, abs=1e-6
        )

    def test_collapse_agrees_with_dense_per_position_minimum(self, small_ecg_series):
        min_length, max_length = 24, 28
        pan = skimp(small_ecg_series, min_length, max_length)
        collapsed = pan.collapse()
        # Dense reference: per-position minimum of the length-normalised
        # profiles computed independently.
        size = len(small_ecg_series) - min_length + 1
        reference = np.full(size, np.inf)
        for length in range(min_length, max_length + 1):
            profile = stomp(small_ecg_series, length)
            normalized = profile.normalized_distances
            reference[: normalized.size] = np.minimum(
                reference[: normalized.size], normalized
            )
        np.testing.assert_allclose(collapsed.normalized_profile, reference, atol=1e-6)

    def test_length_of_best_match_within_range(self, small_ecg_series):
        pan = skimp(small_ecg_series, 24, 30)
        lengths = pan.length_of_best_match()
        assert np.all(lengths >= 24)
        assert np.all(lengths <= 30)


class TestPanMatrixProfileObject:
    def test_validation_errors(self):
        with pytest.raises(InvalidParameterError):
            PanMatrixProfile(
                lengths=np.array([], dtype=np.int64),
                normalized_profiles=np.zeros((0, 4)),
                index_profiles=np.zeros((0, 4), dtype=np.int64),
                min_length=8,
                max_length=16,
            )
        with pytest.raises(InvalidParameterError):
            PanMatrixProfile(
                lengths=np.array([8, 9]),
                normalized_profiles=np.zeros((1, 4)),
                index_profiles=np.zeros((1, 4), dtype=np.int64),
                min_length=8,
                max_length=16,
            )

    def test_unknown_length_raises(self, small_random_series):
        pan = skimp(small_random_series, 16, 24, lengths=[16, 24])
        with pytest.raises(InvalidParameterError):
            pan.profile_at(20)

    def test_iteration_and_serialization(self, small_random_series):
        pan = skimp(small_random_series, 16, 20)
        assert list(pan) == pan.lengths.tolist()
        payload = pan.as_dict()
        assert payload["min_length"] == 16
        assert len(payload["normalized_profiles"]) == len(pan)

    def test_top_motifs_ranked_by_normalized_distance(self, small_ecg_series):
        pan = skimp(small_ecg_series, 24, 30)
        top = pan.top_motifs(5, distinct_events=False)
        normalized = [pair.normalized_distance for pair in top]
        assert normalized == sorted(normalized)

    def test_empty_profile_best_raises(self):
        pan = PanMatrixProfile(
            lengths=np.array([8]),
            normalized_profiles=np.full((1, 4), np.nan),
            index_profiles=np.full((1, 4), -1, dtype=np.int64),
            min_length=8,
            max_length=8,
        )
        with pytest.raises(EmptyResultError):
            pan.best_motif()


class TestSkimpProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_collapse_never_exceeds_any_row(self, seed):
        rng = np.random.default_rng(seed)
        series = np.cumsum(rng.normal(size=220))
        pan = skimp(series, 12, 18)
        collapsed = pan.collapse().normalized_profile
        filled = np.where(
            np.isnan(pan.normalized_profiles), np.inf, pan.normalized_profiles
        )
        assert np.all(collapsed <= filled.min(axis=0) + 1e-9)
