"""Session behaviour: normalisation, shared state, result cache, engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.requests import AnalysisRequest
from repro.api.session import Analysis, EngineConfig, analyze
from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.matrix_profile.stomp import stomp
from repro.series.dataseries import DataSeries
from repro.stats.sliding import SlidingStats


@pytest.fixture(scope="module")
def values():
    rng = np.random.default_rng(17)
    return np.cumsum(rng.standard_normal(300))


class TestNormalisation:
    """repro.analyze accepts DataSeries, ndarray and plain lists uniformly."""

    def test_all_input_forms_agree(self, values):
        as_array = analyze(values)
        as_list = analyze(values.tolist())
        as_series = analyze(DataSeries(values, name="walk"))
        profiles = [
            session.matrix_profile(24).profile()
            for session in (as_array, as_list, as_series)
        ]
        for profile in profiles[1:]:
            np.testing.assert_array_equal(profiles[0].distances, profile.distances)

    def test_dataseries_name_is_kept(self, values):
        session = analyze(DataSeries(values, name="walk"))
        assert session.name == "walk"
        assert session.matrix_profile(16).series_name == "walk"

    def test_name_override(self, values):
        assert analyze(values, name="renamed").name == "renamed"

    def test_invalid_series_fails_at_construction(self):
        with pytest.raises(InvalidSeriesError):
            analyze([1.0, float("nan"), 2.0])
        with pytest.raises(InvalidSeriesError):
            analyze([[1.0, 2.0], [3.0, 4.0]])

    def test_values_are_read_only(self, values):
        session = analyze(values)
        with pytest.raises(ValueError):
            session.values[0] = 123.0


class TestSharedState:
    def test_stats_object_identity_across_calls(self, values):
        """One SlidingStats instance serves every computation of the session."""
        session = analyze(values)
        first = session.stats
        session.matrix_profile(24)
        session.matrix_profile(32, algo="scrimp", random_state=0)
        session.motifs(16, 20, method="stomp_range")
        session.discords(16, 24, k=1)
        assert session.stats is first

    def test_sliding_stats_constructed_once(self, values, monkeypatch):
        created = []
        real_init = SlidingStats.__init__

        def counting_init(self, series):
            created.append(1)
            real_init(self, series)

        monkeypatch.setattr(SlidingStats, "__init__", counting_init)
        session = analyze(values)
        session.matrix_profile(24)
        session.matrix_profile(28, cache=False)
        session.motifs(16, 20, method="stomp_range")
        assert len(created) == 1

    def test_base_fft_products_memoized_per_window(self, values):
        session = analyze(values)
        first = session.base_dot_products(24)
        assert session.base_dot_products(24) is first
        assert session.base_dot_products(32) is not first

    def test_base_dot_products_validation(self, values):
        session = analyze(values)
        with pytest.raises(InvalidParameterError):
            session.base_dot_products(0)
        with pytest.raises(InvalidParameterError):
            session.base_dot_products(10**6)


class TestResultCache:
    def test_repeat_call_returns_cached_envelope(self, values):
        session = analyze(values)
        first = session.matrix_profile(24)
        second = session.matrix_profile(24)
        assert second is first
        info = session.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1 and info["entries"] == 1

    def test_cache_key_distinguishes_parameters(self, values):
        session = analyze(values)
        assert session.matrix_profile(24) is not session.matrix_profile(32)
        assert session.matrix_profile(24) is not session.matrix_profile(
            24, algo="scrimp", random_state=0
        )
        assert session.motifs(16, 20) is not session.motifs(16, 20, top_k=5)

    def test_cache_false_recomputes(self, values):
        session = analyze(values)
        first = session.matrix_profile(24, cache=False)
        second = session.matrix_profile(24, cache=False)
        assert second is not first
        np.testing.assert_array_equal(
            first.profile().distances, second.profile().distances
        )

    def test_clear_cache(self, values):
        session = analyze(values)
        session.matrix_profile(24)
        session.clear_cache()
        info = session.cache_info()
        assert info["hits"] == 0 and info["misses"] == 0
        assert info["entries"] == 0 and info["bytes"] == 0

    def test_cached_result_matches_direct_call(self, values):
        session = analyze(values)
        for _ in range(2):
            envelope = session.matrix_profile(24)
            reference = stomp(values, 24)
            np.testing.assert_array_equal(
                envelope.profile().distances, reference.distances
            )

    def test_ab_join_and_mpdist_cache_against_other_series(self, values):
        session = analyze(values)
        other = analyze(np.cumsum(np.random.default_rng(3).standard_normal(200)))
        first = session.ab_join(other, 24)
        assert session.ab_join(other, 24) is first
        d1 = session.mpdist(other, 24)
        assert session.mpdist(other, 24) is d1
        assert isinstance(d1.value, float)


class TestEngineConfig:
    def test_session_carries_one_engine_config(self, values):
        config = EngineConfig(executor="serial", block_size=64)
        session = analyze(values, engine=config)
        assert session.engine is config
        engine_profile = session.matrix_profile(24).profile()
        plain = stomp(values, 24)
        assert np.array_equal(engine_profile.indices, plain.indices)
        np.testing.assert_allclose(
            engine_profile.distances, plain.distances, atol=1e-8
        )

    def test_string_shorthand(self, values):
        session = analyze(values, engine="serial")
        assert session.engine.enabled
        assert session.engine.executor == "serial"

    def test_invalid_configs_rejected(self):
        with pytest.raises(InvalidParameterError):
            EngineConfig(executor="gpu")
        with pytest.raises(InvalidParameterError):
            EngineConfig(n_jobs=0)
        with pytest.raises(InvalidParameterError):
            EngineConfig(block_size=0)

    def test_round_trip(self):
        config = EngineConfig(executor="parallel", n_jobs=2, block_size=128)
        assert EngineConfig.from_dict(config.as_dict()) == config

    def test_engine_routed_motifs_match_plain(self, values):
        plain = analyze(values).motifs(16, 20, method="valmod")
        routed = analyze(values, engine="serial").motifs(16, 20, method="valmod")
        assert plain.best_motif().offsets == routed.best_motif().offsets


class TestRunMany:
    def test_batch_matches_individual_runs(self, values):
        requests = [
            AnalysisRequest(kind="matrix_profile", params={"window": window})
            for window in (16, 24, 32)
        ] + [
            AnalysisRequest(
                kind="motifs", algo="stomp_range",
                params={"min_length": 16, "max_length": 18},
            )
        ]
        session = analyze(values, engine="serial")
        results = session.run_many(requests)
        assert [r.kind for r in results] == [
            "matrix_profile",
            "matrix_profile",
            "matrix_profile",
            "motifs",
        ]
        for window, result in zip((16, 24, 32), results):
            reference = stomp(values, window)
            assert np.array_equal(result.profile().indices, reference.indices)
            np.testing.assert_allclose(
                result.profile().distances, reference.distances, atol=1e-8
            )

    def test_batch_results_land_in_the_cache(self, values):
        session = analyze(values)
        requests = [
            AnalysisRequest(kind="matrix_profile", params={"window": w})
            for w in (16, 24)
        ]
        session.run_many(requests)
        assert session.cache_info()["entries"] == 2
        assert session.matrix_profile(16) is not None
        assert session.cache_info()["hits"] == 1

    def test_rejects_non_requests(self, values):
        with pytest.raises(InvalidParameterError):
            analyze(values).run_many([object()])

    def test_run_rejects_non_request(self, values):
        with pytest.raises(InvalidParameterError):
            analyze(values).run({"kind": "matrix_profile"})


class TestAnalysisAsJoinOperand:
    def test_other_session_statistics_are_reused(self, values):
        session = analyze(values)
        other = analyze(np.cumsum(np.random.default_rng(4).standard_normal(150)))
        other_stats = other.stats
        session.ab_join(other, 24)
        assert other.stats is other_stats

    def test_plain_list_as_other(self, values):
        session = analyze(values)
        other = np.cumsum(np.random.default_rng(4).standard_normal(150))
        join_list = session.ab_join(other.tolist(), 24).value
        join_array = session.ab_join(other, 24).value
        np.testing.assert_array_equal(join_list.distances, join_array.distances)
