"""Unit tests for repro.series.windows and repro.series.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    InvalidParameterError,
    InvalidSeriesError,
    LengthRangeError,
    SubsequenceLengthError,
)
from repro.series.dataseries import DataSeries
from repro.series.validation import (
    validate_length_range,
    validate_series,
    validate_subsequence_length,
)
from repro.series.windows import (
    extract_subsequence,
    iter_subsequences,
    subsequence_count,
    subsequence_view,
)


class TestValidateSeries:
    def test_accepts_lists(self):
        result = validate_series([1, 2, 3])
        assert result.dtype == np.float64

    def test_accepts_dataseries(self):
        series = DataSeries(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(validate_series(series), series.values)

    def test_rejects_nan(self):
        with pytest.raises(InvalidSeriesError):
            validate_series([1.0, np.nan])

    def test_rejects_short(self):
        with pytest.raises(InvalidSeriesError):
            validate_series([1.0], min_length=2)

    def test_rejects_2d(self):
        with pytest.raises(InvalidSeriesError):
            validate_series(np.ones((2, 2)))


class TestValidateSubsequenceLength:
    def test_valid(self):
        assert validate_subsequence_length(100, 10) == 10

    def test_too_small(self):
        with pytest.raises(SubsequenceLengthError):
            validate_subsequence_length(100, 2)

    def test_too_large(self):
        with pytest.raises(SubsequenceLengthError):
            validate_subsequence_length(10, 10)  # would leave a single subsequence


class TestValidateLengthRange:
    def test_valid(self):
        assert validate_length_range(1000, 10, 20) == (10, 20)

    def test_inverted(self):
        with pytest.raises(LengthRangeError):
            validate_length_range(1000, 20, 10)

    def test_max_too_large(self):
        with pytest.raises(LengthRangeError):
            validate_length_range(50, 10, 50)


class TestWindows:
    def test_subsequence_count(self):
        assert subsequence_count(100, 10) == 91

    def test_subsequence_count_invalid(self):
        with pytest.raises(InvalidParameterError):
            subsequence_count(5, 6)

    def test_subsequence_view_shape_and_content(self):
        values = np.arange(10, dtype=float)
        view = subsequence_view(values, 4)
        assert view.shape == (7, 4)
        np.testing.assert_array_equal(view[3], values[3:7])

    def test_extract_subsequence(self):
        values = np.arange(10, dtype=float)
        np.testing.assert_array_equal(extract_subsequence(values, 2, 3), values[2:5])

    def test_extract_out_of_bounds(self):
        with pytest.raises(InvalidParameterError):
            extract_subsequence(np.arange(10, dtype=float), 8, 5)

    def test_iter_subsequences_with_step(self):
        values = np.arange(10, dtype=float)
        items = list(iter_subsequences(values, 4, step=3))
        assert [offset for offset, _ in items] == [0, 3, 6]
        np.testing.assert_array_equal(items[1][1], values[3:7])

    def test_iter_subsequences_invalid_step(self):
        with pytest.raises(InvalidParameterError):
            list(iter_subsequences(np.arange(10, dtype=float), 3, step=0))

    def test_iter_returns_copies(self):
        values = np.arange(10, dtype=float)
        _, first = next(iter(iter_subsequences(values, 3)))
        first[0] = 99.0
        assert values[0] == 0.0
