"""Tests of the VALMOD lower-bounding distance.

The critical property — the one VALMOD's exactness rests on — is that both
bounds never exceed the true z-normalised Euclidean distance of the extended
subsequences.  It is checked against brute-force distances on random and on
structured series, including a hypothesis-driven sweep.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lower_bound import lower_bound, lower_bound_paper, lower_bound_tight
from repro.exceptions import InvalidParameterError
from repro.stats.distance import znorm_euclidean
from repro.stats.sliding import SlidingStats


def _correlation(values: np.ndarray, i: int, j: int, length: int) -> float:
    a = values[i : i + length]
    b = values[j : j + length]
    if a.std() == 0 or b.std() == 0:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


class TestBasicProperties:
    def test_zero_extension_is_tight(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=200)
        base = 20
        i, j = 10, 100
        q = _correlation(values, i, j, base)
        sigma = values[i : i + base].std()
        bound = lower_bound_tight(q, base, base, sigma, sigma)
        true = znorm_euclidean(values[i : i + base], values[j : j + base])
        if q > 0:
            assert bound == pytest.approx(true, rel=1e-6)
        else:
            assert bound <= true + 1e-9

    def test_paper_bound_never_exceeds_tight_bound(self):
        rng = np.random.default_rng(1)
        correlations = rng.uniform(-1, 1, size=50)
        sigma_base = rng.uniform(0.1, 2.0, size=50)
        sigma_target = rng.uniform(0.1, 2.0, size=50)
        paper = lower_bound_paper(correlations, 20, 35, sigma_base, sigma_target)
        tight = lower_bound_tight(correlations, 20, 35, sigma_base, sigma_target)
        assert np.all(paper <= tight + 1e-9)

    def test_monotone_decreasing_in_correlation(self):
        correlations = np.linspace(-1, 1, 21)
        bounds = lower_bound_tight(correlations, 20, 40, 1.0, 1.0)
        assert np.all(np.diff(bounds) <= 1e-12)

    def test_rank_preservation_across_lengths(self):
        # The ranking of candidates by lower bound must not depend on the
        # target length (the property that lets VALMOD keep only p entries).
        rng = np.random.default_rng(2)
        correlations = rng.uniform(-1, 1, size=30)
        order_40 = np.argsort(lower_bound_tight(correlations, 20, 40, 1.3, 0.9))
        order_80 = np.argsort(lower_bound_tight(correlations, 20, 80, 1.3, 0.7))
        positive = correlations > 0
        # among positively correlated candidates the order is exactly by -q
        expected = np.argsort(-correlations[positive])
        observed_40 = [list(np.flatnonzero(positive)).index(k) for k in order_40 if positive[k]]
        observed_80 = [list(np.flatnonzero(positive)).index(k) for k in order_80 if positive[k]]
        assert observed_40 == list(expected)
        assert observed_80 == list(expected)

    def test_zero_target_std_gives_zero_bound(self):
        assert lower_bound_tight(0.9, 10, 20, 1.0, 0.0) == pytest.approx(0.0)
        assert lower_bound_paper(0.9, 10, 20, 1.0, 0.0) == pytest.approx(0.0)

    def test_invalid_lengths_raise(self):
        with pytest.raises(InvalidParameterError):
            lower_bound_tight(0.5, 0, 10, 1.0, 1.0)
        with pytest.raises(InvalidParameterError):
            lower_bound_tight(0.5, 20, 10, 1.0, 1.0)

    def test_dispatch(self):
        assert lower_bound(0.5, 10, 20, 1.0, 1.0, kind="paper") == pytest.approx(
            lower_bound_paper(0.5, 10, 20, 1.0, 1.0)
        )
        assert lower_bound(0.5, 10, 20, 1.0, 1.0, kind="tight") == pytest.approx(
            lower_bound_tight(0.5, 10, 20, 1.0, 1.0)
        )
        with pytest.raises(InvalidParameterError):
            lower_bound(0.5, 10, 20, 1.0, 1.0, kind="bogus")

    def test_vector_and_scalar_forms_agree(self):
        scalar = lower_bound_tight(0.4, 16, 24, 1.2, 0.8)
        vector = lower_bound_tight(np.array([0.4]), 16, 24, np.array([1.2]), np.array([0.8]))
        assert scalar == pytest.approx(float(vector[0]))


def _check_bound_is_valid(values: np.ndarray, base: int, target: int, kind: str) -> None:
    """Assert LB(i, j, target) <= true distance for a grid of (i, j) pairs."""
    stats = SlidingStats(values)
    _, stds_base = stats.mean_std(base)
    _, stds_target = stats.mean_std(target)
    count = values.size - target + 1
    step = max(1, count // 8)
    for i in range(0, count, step):
        if stds_base[i] == 0 or stds_target[i] == 0:
            continue
        for j in range(0, count, step):
            if abs(i - j) < base or stds_base[j] == 0 or stds_target[j] == 0:
                continue
            q = _correlation(values, i, j, base)
            bound = lower_bound(
                q, base, target, float(stds_base[i]), float(stds_target[i]), kind=kind
            )
            true = znorm_euclidean(values[i : i + target], values[j : j + target])
            assert bound <= true + 1e-7, (i, j, bound, true)


class TestBoundValidity:
    @pytest.mark.parametrize("kind", ["tight", "paper"])
    def test_valid_on_random_walk(self, kind):
        rng = np.random.default_rng(3)
        values = np.cumsum(rng.normal(size=300))
        _check_bound_is_valid(values, base=16, target=48, kind=kind)

    @pytest.mark.parametrize("kind", ["tight", "paper"])
    def test_valid_on_ecg(self, kind, small_ecg_series):
        _check_bound_is_valid(np.array(small_ecg_series.values), base=24, target=60, kind=kind)

    @pytest.mark.parametrize("kind", ["tight", "paper"])
    def test_valid_on_sine_mixture(self, kind):
        x = np.linspace(0, 30, 400)
        values = np.sin(x) + 0.4 * np.sin(3.7 * x) + 0.1 * np.cos(11.0 * x)
        _check_bound_is_valid(values, base=20, target=45, kind=kind)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        base=st.integers(min_value=8, max_value=24),
        extension=st.integers(min_value=1, max_value=40),
    )
    def test_property_bound_below_true_distance(self, seed, base, extension):
        rng = np.random.default_rng(seed)
        target = base + extension
        values = np.cumsum(rng.normal(size=target + 120))
        stats = SlidingStats(values)
        _, stds_base = stats.mean_std(base)
        _, stds_target = stats.mean_std(target)
        count = values.size - target + 1
        i = int(rng.integers(0, count))
        j = int(rng.integers(0, count))
        if abs(i - j) < base:
            return
        if stds_base[i] == 0 or stds_target[i] == 0:
            return
        q = _correlation(values, i, j, base)
        for kind in ("tight", "paper"):
            bound = lower_bound(
                q, base, target, float(stds_base[i]), float(stds_target[i]), kind=kind
            )
            true = znorm_euclidean(values[i : i + target], values[j : j + target])
            assert bound <= true + 1e-7
