"""Tests for AB-joins and the MPdist whole-series distance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.generators import generate_ecg, generate_random_walk
from repro.matrix_profile.ab_join import JoinProfile, ab_join, ab_join_both
from repro.matrix_profile.mpdist import mpdist, mpdist_profile
from repro.stats.distance import znorm_euclidean


def _brute_force_join(series_a: np.ndarray, series_b: np.ndarray, window: int) -> np.ndarray:
    count_a = series_a.size - window + 1
    count_b = series_b.size - window + 1
    distances = np.empty(count_a)
    for i in range(count_a):
        best = np.inf
        for j in range(count_b):
            best = min(
                best,
                znorm_euclidean(series_a[i : i + window], series_b[j : j + window]),
            )
        distances[i] = best
    return distances


class TestAbJoin:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(11)
        series_a = np.cumsum(rng.normal(size=120))
        series_b = np.cumsum(rng.normal(size=150))
        window = 14
        join = ab_join(series_a, series_b, window)
        np.testing.assert_allclose(
            join.distances, _brute_force_join(series_a, series_b, window), atol=1e-5
        )

    def test_profile_length_is_count_of_a(self):
        rng = np.random.default_rng(3)
        series_a = np.cumsum(rng.normal(size=90))
        series_b = np.cumsum(rng.normal(size=200))
        join = ab_join(series_a, series_b, 16)
        assert len(join) == series_a.size - 16 + 1

    def test_indices_point_into_b(self):
        rng = np.random.default_rng(5)
        series_a = np.cumsum(rng.normal(size=80))
        series_b = np.cumsum(rng.normal(size=140))
        window = 12
        join = ab_join(series_a, series_b, window)
        count_b = series_b.size - window + 1
        assert np.all(join.indices >= 0)
        assert np.all(join.indices < count_b)

    def test_shared_pattern_yields_near_zero_distance(self):
        rng = np.random.default_rng(8)
        pattern = np.sin(np.linspace(0, 4 * np.pi, 60))
        series_a = np.concatenate([rng.normal(size=80), pattern, rng.normal(size=80)])
        series_b = np.concatenate([rng.normal(size=50), pattern, rng.normal(size=110)])
        join = ab_join(series_a, series_b, 60)
        offset_a, offset_b, distance = join.best()
        assert distance < 0.1
        assert abs(offset_a - 80) <= 2
        assert abs(offset_b - 50) <= 2

    def test_both_directions(self):
        rng = np.random.default_rng(21)
        series_a = np.cumsum(rng.normal(size=100))
        series_b = np.cumsum(rng.normal(size=130))
        forward, backward = ab_join_both(series_a, series_b, 16)
        assert len(forward) == series_a.size - 16 + 1
        assert len(backward) == series_b.size - 16 + 1
        # The globally closest cross pair is the same seen from either side.
        assert forward.best()[2] == pytest.approx(backward.best()[2], abs=1e-9)

    def test_top_matches_sorted(self):
        rng = np.random.default_rng(2)
        series_a = np.cumsum(rng.normal(size=100))
        series_b = np.cumsum(rng.normal(size=100))
        join = ab_join(series_a, series_b, 16)
        matches = join.top_matches(5)
        distances = [m[2] for m in matches]
        assert distances == sorted(distances)
        with pytest.raises(InvalidParameterError):
            join.top_matches(0)

    def test_as_dict_roundtrip_fields(self):
        rng = np.random.default_rng(6)
        join = ab_join(np.cumsum(rng.normal(size=60)), np.cumsum(rng.normal(size=60)), 10)
        payload = join.as_dict()
        assert payload["window"] == 10
        assert len(payload["distances"]) == len(join)

    def test_empty_profile_best_raises(self):
        profile = JoinProfile(
            distances=np.array([np.inf, np.inf]), indices=np.array([-1, -1]), window=4
        )
        with pytest.raises(EmptyResultError):
            profile.best()

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            JoinProfile(distances=np.array([1.0, 2.0]), indices=np.array([0]), window=4)
        with pytest.raises(InvalidParameterError):
            JoinProfile(distances=np.array([1.0]), indices=np.array([0]), window=0)


class TestMpdist:
    def test_identical_series_distance_zero(self):
        series = generate_ecg(400, beat_period=60, random_state=0)
        assert mpdist(series, series, 32) == pytest.approx(0.0, abs=1e-6)

    def test_symmetry(self):
        rng = np.random.default_rng(4)
        series_a = np.cumsum(rng.normal(size=200))
        series_b = np.cumsum(rng.normal(size=260))
        assert mpdist(series_a, series_b, 24) == pytest.approx(
            mpdist(series_b, series_a, 24), abs=1e-9
        )

    def test_shared_motifs_closer_than_unrelated(self):
        ecg_one = generate_ecg(500, beat_period=60, random_state=1)
        ecg_two = generate_ecg(500, beat_period=60, random_state=2)
        walk = generate_random_walk(500, random_state=3)
        related = mpdist(ecg_one, ecg_two, 48)
        unrelated = mpdist(ecg_one, walk, 48)
        assert related < unrelated

    def test_percentile_extremes(self):
        rng = np.random.default_rng(17)
        series_a = np.cumsum(rng.normal(size=150))
        series_b = np.cumsum(rng.normal(size=150))
        closest = mpdist(series_a, series_b, 16, percentile=0.0)
        furthest = mpdist(series_a, series_b, 16, percentile=1.0)
        default = mpdist(series_a, series_b, 16)
        assert closest <= default <= furthest

    def test_invalid_percentile_raises(self):
        rng = np.random.default_rng(1)
        series = np.cumsum(rng.normal(size=100))
        with pytest.raises(InvalidParameterError):
            mpdist(series, series, 16, percentile=1.5)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_non_negative_and_symmetric_property(self, seed):
        rng = np.random.default_rng(seed)
        series_a = np.cumsum(rng.normal(size=120))
        series_b = np.cumsum(rng.normal(size=140))
        forward = mpdist(series_a, series_b, 16)
        backward = mpdist(series_b, series_a, 16)
        assert forward >= 0.0
        assert forward == pytest.approx(backward, abs=1e-9)


class TestMpdistProfile:
    def test_embedded_query_region_scores_near_zero(self):
        rng = np.random.default_rng(9)
        query = generate_ecg(120, beat_period=40, random_state=12)
        background = np.cumsum(rng.normal(size=400))
        series = np.concatenate([background[:150], np.asarray(query), background[150:]])
        profile = mpdist_profile(series, query, 24, step=8)
        # The window aligned with the embedded copy is an (almost) exact match,
        # while windows far away in the random walk score clearly higher.
        assert profile[150] < 1e-3
        assert profile[0] > 0.5
        assert profile[-1] > 0.5

    def test_profile_length(self):
        rng = np.random.default_rng(10)
        series = np.cumsum(rng.normal(size=300))
        query = series[40:120]
        profile = mpdist_profile(series, query, 16, step=5)
        assert profile.size == series.size - query.size + 1
        assert np.all(np.isfinite(profile))

    def test_invalid_step_raises(self):
        rng = np.random.default_rng(2)
        series = np.cumsum(rng.normal(size=200))
        with pytest.raises(InvalidParameterError):
            mpdist_profile(series, series[:50], 16, step=0)

    def test_query_longer_than_series_raises(self):
        rng = np.random.default_rng(2)
        series = np.cumsum(rng.normal(size=100))
        query = np.cumsum(rng.normal(size=200))
        with pytest.raises(InvalidParameterError):
            mpdist_profile(series, query, 16)
