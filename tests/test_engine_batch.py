"""Tests of the batch API: order, equivalence, isolation, stats reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    JobOutcome,
    ParallelExecutor,
    ProfileJob,
    SerialExecutor,
    compute_profiles,
)
from repro.exceptions import InvalidParameterError, SubsequenceLengthError
from repro.generators import generate_ecg, generate_random_walk
from repro.matrix_profile.stomp import stomp


@pytest.fixture(scope="module")
def walk():
    return np.array(generate_random_walk(400, random_state=21).values)


@pytest.fixture(scope="module")
def ecg():
    return generate_ecg(350, beat_period=50, random_state=2)


def _assert_profile_equal(reference, candidate) -> None:
    assert np.array_equal(reference.indices, candidate.indices)
    assert np.max(np.abs(reference.distances - candidate.distances)) <= 1e-8


def test_batch_matches_individual_calls_and_preserves_order(walk, ecg):
    jobs = [
        ProfileJob(walk, window=32),
        ProfileJob(ecg, window=50),
        ProfileJob(walk, lengths=(16, 24, 40)),
        ProfileJob(walk, window=8),
    ]
    outcomes = compute_profiles(jobs, executor="serial")
    assert [outcome.index for outcome in outcomes] == [0, 1, 2, 3]
    assert [outcome.job for outcome in outcomes] == jobs
    assert all(outcome.ok for outcome in outcomes)

    _assert_profile_equal(stomp(walk, 32), outcomes[0].unwrap())
    _assert_profile_equal(stomp(ecg, 50), outcomes[1].unwrap())
    by_length = outcomes[2].unwrap()
    assert sorted(by_length) == [16, 24, 40]
    for length, profile in by_length.items():
        _assert_profile_equal(stomp(walk, length), profile)
    _assert_profile_equal(stomp(walk, 8), outcomes[3].unwrap())


def test_batch_parallel_matches_serial(walk):
    jobs = [ProfileJob(walk, window=window) for window in (12, 20, 28, 36)]
    serial = compute_profiles(jobs, executor="serial")
    with ParallelExecutor(n_jobs=2) as executor:
        parallel = compute_profiles(jobs, executor=executor)
    for left, right in zip(serial, parallel):
        _assert_profile_equal(left.unwrap(), right.unwrap())


@pytest.mark.parametrize("executor", ["serial", "parallel"])
def test_per_job_exceptions_do_not_kill_the_batch(walk, executor):
    kwargs = {"n_jobs": 2} if executor == "parallel" else {}
    jobs = [
        ProfileJob(walk, window=16),
        ProfileJob(walk, window=10**6),  # window longer than the series
        ProfileJob(walk, window=24),
    ]
    outcomes = compute_profiles(jobs, executor=executor, **kwargs)
    assert [outcome.ok for outcome in outcomes] == [True, False, True]
    assert isinstance(outcomes[1].error, SubsequenceLengthError)
    with pytest.raises(SubsequenceLengthError):
        outcomes[1].unwrap()
    _assert_profile_equal(stomp(walk, 16), outcomes[0].unwrap())
    _assert_profile_equal(stomp(walk, 24), outcomes[2].unwrap())


def test_job_validation():
    series = np.arange(50, dtype=float)
    with pytest.raises(InvalidParameterError):
        ProfileJob(series)  # neither window nor lengths
    with pytest.raises(InvalidParameterError):
        ProfileJob(series, window=8, lengths=(8,))  # both
    with pytest.raises(InvalidParameterError):
        ProfileJob(series, lengths=())  # empty range
    with pytest.raises(InvalidParameterError):
        compute_profiles([object()])  # not a ProfileJob


def test_empty_batch_returns_empty_list():
    assert compute_profiles([]) == []


def test_job_name_defaults_to_dataseries_name(ecg):
    job = ProfileJob(ecg, window=40)
    assert job.name == ecg.name
    named = ProfileJob(ecg, window=40, name="override")
    assert named.name == "override"


def test_serial_batch_shares_sliding_stats(walk, monkeypatch):
    """Jobs over the same series build the prefix sums exactly once."""
    from repro.engine import batch as batch_module
    from repro.stats.sliding import SlidingStats

    created = []
    real_init = SlidingStats.__init__

    def counting_init(self, series):
        created.append(1)
        real_init(self, series)

    monkeypatch.setattr(SlidingStats, "__init__", counting_init)
    jobs = [ProfileJob(walk, window=w) for w in (12, 18, 26)]
    outcomes = compute_profiles(jobs, executor=SerialExecutor())
    assert all(outcome.ok for outcome in outcomes)
    assert len(created) == 1


def test_outcome_is_frozen(walk):
    outcome = compute_profiles([ProfileJob(walk, window=16)], executor="serial")[0]
    assert isinstance(outcome, JobOutcome)
    with pytest.raises(AttributeError):
        outcome.result = None


def test_query_offset_jobs_match_distance_profile(walk):
    """Single-offset jobs are MASS calls, mixable with full-profile jobs."""
    from repro.matrix_profile.distance_profile import distance_profile

    jobs = [
        ProfileJob(walk, window=24, query_offset=10, exclusion_radius=6),
        ProfileJob(walk, window=32),
        ProfileJob(walk, window=24, query_offset=77, exclusion_radius=6),
    ]
    outcomes = compute_profiles(jobs, executor="serial")
    assert all(outcome.ok for outcome in outcomes)
    np.testing.assert_allclose(
        outcomes[0].unwrap(),
        distance_profile(walk, 10, 24, exclusion_radius=6),
        atol=1e-12,
    )
    _assert_profile_equal(stomp(walk, 32), outcomes[1].unwrap())
    np.testing.assert_allclose(
        outcomes[2].unwrap(),
        distance_profile(walk, 77, 24, exclusion_radius=6),
        atol=1e-12,
    )


def test_query_offset_jobs_parallel_match_serial(walk):
    jobs = [
        ProfileJob(walk, window=20, query_offset=offset, exclusion_radius=5)
        for offset in (0, 13, 200, 350)
    ]
    serial = compute_profiles(jobs, executor="serial")
    with ParallelExecutor(n_jobs=2) as executor:
        parallel = compute_profiles(jobs, executor=executor)
    for left, right in zip(serial, parallel):
        np.testing.assert_allclose(left.unwrap(), right.unwrap(), atol=1e-12)


def test_query_offset_requires_window(walk):
    with pytest.raises(InvalidParameterError):
        ProfileJob(walk, lengths=(16, 24), query_offset=3)


def test_query_offset_without_exclusion_returns_raw_profile(walk):
    outcome = compute_profiles(
        [ProfileJob(walk, window=24, query_offset=40)], executor="serial"
    )[0]
    profile = outcome.unwrap()
    # No exclusion: the self-match is present (and ~0; sqrt() amplifies
    # eps-level correlation noise, hence the loose absolute tolerance).
    assert profile[40] == pytest.approx(0.0, abs=1e-4)
