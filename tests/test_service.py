"""Service-layer substrate: protocol, concurrency, ordering, backpressure.

Single-core safe by design: the concurrency tests assert **correctness and
queue ordering** (every concurrent client gets the right answer; with one
worker the completion order is the enqueue order), never parallel speedup.
Backpressure is exercised deterministically by parking a synthetic
registry algorithm on an event and filling the bounded queue behind it.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

import repro
from repro.api.cache import CacheConfig
from repro.api.registry import AlgorithmSpec, register, unregister
from repro.api.requests import AnalysisRequest
from repro.cli import main as cli_main
from repro.exceptions import InvalidParameterError, ServiceError
from repro.harness.runner import compare_algorithms
from repro.service import (
    BackgroundService,
    ServiceClient,
    ServiceConfig,
    parse_service_url,
)


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return np.cumsum(np.random.default_rng(23).standard_normal(400))


@pytest.fixture(scope="module")
def service():
    with BackgroundService(ServiceConfig(port=0, workers=1, backlog=32)) as background:
        yield background


@pytest.fixture(scope="module")
def client(service) -> ServiceClient:
    return ServiceClient(port=service.port)


def _mp_request(window: int) -> AnalysisRequest:
    return AnalysisRequest(kind="matrix_profile", params={"window": window})


# --------------------------------------------------------------------- #
# protocol surface
# --------------------------------------------------------------------- #
class TestProtocol:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 1 and health["backlog"] == 32

    def test_capabilities_mirror_the_registry(self, client):
        listed = {(entry["kind"], entry["key"]) for entry in client.capabilities()}
        local = {(entry["kind"], entry["key"]) for entry in repro.api.capabilities()}
        assert listed == local

    def test_analyze_round_trip_matches_direct_session(self, client, values):
        served, source = client.analyze(values, _mp_request(48))
        assert source == "computed"
        direct = repro.analyze(values).matrix_profile(48).profile()
        np.testing.assert_allclose(served.profile().distances, direct.distances)
        np.testing.assert_array_equal(served.profile().indices, direct.indices)

    def test_repeated_request_hits_the_session_cache(self, client, values):
        client.analyze(values, _mp_request(52))
        _, source = client.analyze(values, _mp_request(52))
        assert source == "memory"

    def test_alias_spelling_shares_the_cache_slot(self, client, values):
        client.analyze(
            values,
            AnalysisRequest(
                kind="motifs", algo="stomp_range", params={"min_length": 16, "max_length": 18}
            ),
        )
        _, source = client.analyze(
            values,
            AnalysisRequest(
                kind="motifs", algo="stomp-range", params={"min_length": 16, "max_length": 18}
            ),
        )
        assert source == "memory"

    def test_dataseries_submission_carries_the_name(self, client):
        series = repro.DataSeries(
            np.cumsum(np.random.default_rng(5).standard_normal(200)), name="labelled"
        )
        served, _ = client.analyze(series, _mp_request(24))
        assert served.series_name == "labelled"

    def test_bad_json_body_is_400(self, client, values):
        status, payload = client._exchange("POST", "/analyze", b"{ nope")
        assert status == 400 and "JSON" in payload["error"]

    def test_missing_series_is_400(self, client):
        body = json.dumps({"request": {"kind": "matrix_profile"}}).encode()
        status, payload = client._exchange("POST", "/analyze", body)
        assert status == 400 and "series" in payload["error"]

    def test_malformed_params_shape_is_400_not_dropped_connection(
        self, client, values
    ):
        # params as a list used to raise an uncaught ValueError inside the
        # handler and drop the connection; it must answer 400.
        status, payload = client.analyze_raw(
            values, {"kind": "matrix_profile", "params": [1, 2]}
        )
        assert status in (400, 422) and "error" in payload

    def test_unknown_kind_is_422(self, client, values):
        status, payload = client.analyze_raw(values, {"kind": "nope", "params": {}})
        assert status == 422 and "unknown analysis kind" in payload["error"]

    def test_invalid_window_is_422(self, client, values):
        status, payload = client.analyze_raw(values, _mp_request(10_000))
        assert status == 422

    def test_unknown_path_is_404_and_wrong_method_is_405(self, client):
        status, _ = client._exchange("GET", "/nothing")
        assert status == 404
        status, _ = client._exchange("GET", "/analyze")
        assert status == 405

    def test_url_parsing(self):
        assert parse_service_url("http://localhost:8765") == ("localhost", 8765)
        assert parse_service_url("127.0.0.1:90") == ("127.0.0.1", 90)
        assert parse_service_url("http://host") == ("host", 80)
        with pytest.raises(ServiceError):
            parse_service_url("https://host:1")
        with pytest.raises(ServiceError):
            parse_service_url("http://host:1/path")

    def test_client_raises_service_error_when_nothing_listens(self, values):
        lonely = ServiceClient(port=1, timeout=2)
        with pytest.raises(ServiceError):
            lonely.health()


# --------------------------------------------------------------------- #
# concurrency and ordering
# --------------------------------------------------------------------- #
class TestConcurrency:
    def test_concurrent_clients_all_get_correct_results(self, service, values):
        windows = [20 + 2 * i for i in range(8)]
        outcomes: dict[int, tuple] = {}
        errors: list = []

        def post(window: int) -> None:
            try:
                local = ServiceClient(port=service.port)
                outcomes[window] = local.analyze(values, _mp_request(window))
            except Exception as error:  # surfaced after join
                errors.append(error)

        threads = [threading.Thread(target=post, args=(w,)) for w in windows]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors
        assert sorted(outcomes) == windows
        session = repro.analyze(values)
        for window in windows:
            served, _source = outcomes[window]
            direct = session.matrix_profile(window).profile()
            np.testing.assert_allclose(served.profile().distances, direct.distances)

    def test_single_worker_completion_order_is_enqueue_order(self, service, client):
        order = client.stats()["completion_order"]
        assert order == sorted(order)

    def test_queue_is_fifo_under_backpressure(self, values):
        """Deterministic ordering: park the worker, queue three distinct
        requests, release — they must complete in enqueue order."""
        release = threading.Event()

        def blocking_runner(session, **params):
            release.wait(timeout=60)
            return float(params.get("tag", 0))

        register(
            AlgorithmSpec(
                kind="mpdist",
                key="_test_blocking",
                runner=blocking_runner,
                description="test-only parked runner",
            )
        )
        try:
            with BackgroundService(
                ServiceConfig(port=0, workers=1, backlog=8)
            ) as background:
                local = ServiceClient(port=background.port, timeout=120)
                results: dict[int, float] = {}

                def post(tag: int) -> None:
                    # ServiceClient keeps one HTTP connection alive and is
                    # not thread-safe; each thread needs its own (the main
                    # thread polls ``local.stats()`` while these are parked).
                    client = ServiceClient(port=background.port, timeout=120)
                    envelope, _ = client.analyze(
                        values,
                        AnalysisRequest(
                            kind="mpdist", algo="_test_blocking", params={"tag": tag}
                        ),
                    )
                    results[tag] = envelope.payload

                threads = []
                for tag in (1, 2, 3):
                    thread = threading.Thread(target=post, args=(tag,))
                    thread.start()
                    threads.append(thread)
                    # Enqueue strictly one at a time so the expected FIFO
                    # order is well-defined.
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        stats = local.stats()
                        if stats["received"] >= tag:
                            break
                        time.sleep(0.01)
                release.set()
                for thread in threads:
                    thread.join(timeout=120)
                assert results == {1: 1.0, 2: 2.0, 3: 3.0}
                order = local.stats()["completion_order"]
                assert order == sorted(order)
        finally:
            unregister("mpdist", "_test_blocking")

    def test_full_queue_answers_503(self, values):
        release = threading.Event()
        entered = threading.Event()

        def blocking_runner(session, **params):
            entered.set()
            release.wait(timeout=60)
            return 0.0

        register(
            AlgorithmSpec(
                kind="mpdist",
                key="_test_backpressure",
                runner=blocking_runner,
                description="test-only parked runner",
            )
        )
        try:
            with BackgroundService(
                ServiceConfig(port=0, workers=1, backlog=2)
            ) as background:
                local = ServiceClient(port=background.port, timeout=120)

                def post(tag: int) -> None:
                    # Per-thread client: see test_queue_is_fifo_under_backpressure.
                    client = ServiceClient(port=background.port, timeout=120)
                    client.analyze(
                        values,
                        AnalysisRequest(
                            kind="mpdist",
                            algo="_test_backpressure",
                            params={"tag": tag},
                        ),
                    )

                threads = [
                    threading.Thread(target=post, args=(tag,)) for tag in range(3)
                ]
                threads[0].start()
                assert entered.wait(timeout=30)  # worker busy, queue empty
                for thread in threads[1:]:
                    thread.start()
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    if local.health()["queue_depth"] >= 2:
                        break
                    time.sleep(0.01)
                assert local.health()["queue_depth"] == 2  # backlog full
                status, payload = local.analyze_raw(
                    values,
                    AnalysisRequest(
                        kind="mpdist", algo="_test_backpressure", params={"tag": 99}
                    ),
                )
                assert status == 503 and "queue is full" in payload["error"]
                release.set()
                for thread in threads:
                    thread.join(timeout=120)
                stats = local.stats()
                assert stats["rejected"] == 1 and stats["completed"] == 3
        finally:
            unregister("mpdist", "_test_backpressure")


def test_unregister_restores_the_displaced_default():
    """Installing a test algorithm as a kind's default and removing it must
    restore the previous default, not promote an arbitrary survivor."""
    from repro.api.registry import resolve_algorithm

    previous = resolve_algorithm("matrix_profile", None).key
    register(
        AlgorithmSpec(
            kind="matrix_profile",
            key="_test_default",
            runner=lambda session, **params: 0.0,
            description="test-only default",
        ),
        default=True,
    )
    try:
        assert resolve_algorithm("matrix_profile", None).key == "_test_default"
    finally:
        unregister("matrix_profile", "_test_default")
    assert resolve_algorithm("matrix_profile", None).key == previous


# --------------------------------------------------------------------- #
# persistence through the service
# --------------------------------------------------------------------- #
def test_fresh_service_gets_persistent_hit(values, tmp_path):
    config = lambda: ServiceConfig(  # noqa: E731 - two identical configs
        port=0, cache=CacheConfig(persist_dir=tmp_path / "spill")
    )
    request = _mp_request(40)
    with BackgroundService(config()) as first:
        served, source = ServiceClient(port=first.port).analyze(values, request)
        assert source == "computed"
    with BackgroundService(config()) as second:
        revived, source = ServiceClient(port=second.port).analyze(values, request)
        assert source == "persistent"
    np.testing.assert_allclose(
        revived.profile().distances, served.profile().distances
    )


# --------------------------------------------------------------------- #
# CLI and harness integration
# --------------------------------------------------------------------- #
def test_cli_request_round_trip(service, capsys):
    exit_code = cli_main(
        [
            "request",
            "--url",
            f"http://127.0.0.1:{service.port}",
            "--workload",
            "ecg",
            "--length",
            "512",
            "--kind",
            "matrix_profile",
            "--params",
            '{"window": 48}',
        ]
    )
    assert exit_code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["payload_type"] == "matrix_profile"
    assert document["cache"] in ("computed", "memory", "persistent")
    assert len(document["payload"]["distances"]) == 512 - 48 + 1


def test_cli_request_rejects_bad_params(service):
    with pytest.raises(InvalidParameterError):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "request",
                "--url",
                f"http://127.0.0.1:{service.port}",
                "--workload",
                "ecg",
                "--kind",
                "matrix_profile",
                "--params",
                "not-json",
            ]
        )
        from repro.cli import _command_request

        _command_request(args)


def test_cli_serve_parser_accepts_service_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        [
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--backlog",
            "16",
            "--cache-entries",
            "8",
            "--cache-bytes",
            "1000000",
            "--cache-dir",
            "/tmp/spill",
        ]
    )
    assert args.command == "serve"
    assert args.workers == 2 and args.backlog == 16 and args.cache_dir == "/tmp/spill"


def test_harness_service_backed_mode_matches_in_process(service, values):
    in_process = compare_algorithms(
        values, 16, 18, algorithms=("valmod", "stomp-range")
    )
    service_backed = compare_algorithms(
        values,
        16,
        18,
        algorithms=("valmod", "stomp-range"),
        service_url=f"http://127.0.0.1:{service.port}",
    )
    for local, remote in zip(in_process, service_backed):
        assert local.algorithm == remote.algorithm
        best_local, best_remote = local.best_overall(), remote.best_overall()
        assert best_local.window == best_remote.window
        assert {best_local.offset_a, best_local.offset_b} == {
            best_remote.offset_a,
            best_remote.offset_b,
        }
        np.testing.assert_allclose(
            best_local.distance, best_remote.distance, atol=1e-8
        )
