"""Integration and exactness tests for the VALMOD algorithm itself."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.brute_force_range import brute_force_range
from repro.baselines.stomp_range import stomp_range
from repro.core.valmod import valmod, valmod_with_config
from repro.core.config import ValmodConfig
from repro.exceptions import InvalidParameterError, LengthRangeError
from repro.generators import generate_planted_motifs


class TestExactness:
    """VALMOD must return exactly the same motif distances as the oracles."""

    def test_matches_stomp_range_on_random_walk(self, small_random_series):
        result = valmod(small_random_series, 16, 40, top_k=2)
        oracle = stomp_range(small_random_series, 16, 40, top_k=2)
        for length in oracle.lengths:
            expected = [pair.distance for pair in oracle.motifs_at(length)]
            observed = [pair.distance for pair in result.motifs_at(length)]
            np.testing.assert_allclose(observed, expected, atol=1e-6)

    def test_matches_stomp_range_on_ecg(self, small_ecg_series):
        result = valmod(small_ecg_series, 24, 48, top_k=3)
        oracle = stomp_range(small_ecg_series, 24, 48, top_k=3)
        for length in oracle.lengths:
            expected = [pair.distance for pair in oracle.motifs_at(length)]
            observed = [pair.distance for pair in result.motifs_at(length)]
            np.testing.assert_allclose(observed, expected, atol=1e-6)

    def test_matches_brute_force_on_planted(self, planted_series):
        series, _ = planted_series
        result = valmod(series, 32, 56, top_k=1)
        oracle = brute_force_range(series, 32, 56, top_k=1)
        for length in oracle.lengths:
            assert result.motifs_at(length)[0].distance == pytest.approx(
                oracle.motifs_at(length)[0].distance, abs=1e-6
            )

    @pytest.mark.parametrize("capacity", [1, 4, 64])
    def test_exact_for_any_profile_capacity(self, small_random_series, capacity):
        result = valmod(small_random_series, 16, 28, top_k=1, profile_capacity=capacity)
        oracle = stomp_range(small_random_series, 16, 28, top_k=1)
        for length in oracle.lengths:
            assert result.motifs_at(length)[0].distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )

    @pytest.mark.parametrize("kind", ["tight", "paper"])
    def test_exact_for_both_lower_bounds(self, small_random_series, kind):
        result = valmod(small_random_series, 16, 28, top_k=1, lower_bound_kind=kind)
        oracle = stomp_range(small_random_series, 16, 28, top_k=1)
        for length in oracle.lengths:
            assert result.motifs_at(length)[0].distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )

    def test_exact_on_series_with_flat_regions(self):
        values = np.concatenate(
            [np.zeros(60), np.sin(np.linspace(0, 25, 200)), np.full(50, 2.0)]
        )
        result = valmod(values, 12, 24, top_k=1)
        oracle = stomp_range(values, 12, 24, top_k=1)
        for length in oracle.lengths:
            assert result.motifs_at(length)[0].distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )


class TestResultStructure:
    def test_lengths_and_motif_counts(self, small_random_series):
        result = valmod(small_random_series, 16, 24, top_k=2)
        assert result.lengths == list(range(16, 25))
        for length in result.lengths:
            motifs = result.motifs_at(length)
            assert 1 <= len(motifs) <= 2
            assert all(pair.window == length for pair in motifs)

    def test_unknown_length_raises(self, small_random_series):
        result = valmod(small_random_series, 16, 20, top_k=1)
        with pytest.raises(InvalidParameterError):
            result.motifs_at(99)

    def test_top_motifs_sorted_by_normalized_distance(self, small_ecg_series):
        result = valmod(small_ecg_series, 24, 40, top_k=2)
        ranked = result.top_motifs(5, distinct_events=False)
        normalized = [pair.normalized_distance for pair in ranked]
        assert normalized == sorted(normalized)

    def test_best_motif_is_global_minimum(self, small_ecg_series):
        result = valmod(small_ecg_series, 24, 40, top_k=2)
        best = result.best_motif()
        assert best.normalized_distance <= min(
            pair.normalized_distance for pair in result.all_motifs()
        ) + 1e-12

    def test_valmap_consistency_with_base_profile(self, small_random_series):
        result = valmod(small_random_series, 16, 24, top_k=1)
        valmap = result.valmap
        base = result.base_profile
        assert len(valmap) == len(base)
        # every VALMAP entry is at least as good as the base profile entry
        assert np.all(
            valmap.normalized_profile <= base.normalized_distances + 1e-9
        )
        # entries never updated still carry the base length
        never_updated = valmap.length_profile == 16
        np.testing.assert_allclose(
            valmap.normalized_profile[never_updated],
            base.normalized_distances[never_updated],
            atol=1e-9,
        )

    def test_valmap_entries_match_reported_pairs(self, small_random_series):
        result = valmod(small_random_series, 16, 30, top_k=2)
        valmap = result.valmap
        for checkpoint in valmap.checkpoints:
            pairs = result.motifs_at(checkpoint.length)
            assert any(
                checkpoint.offset in pair.offsets
                and checkpoint.normalized_distance == pytest.approx(
                    pair.normalized_distance, abs=1e-9
                )
                for pair in pairs
            )

    def test_pruning_statistics_accounting(self, small_random_series):
        result = valmod(small_random_series, 16, 32, top_k=1)
        for length in result.lengths:
            stats = result.length_results[length].pruning
            assert stats.num_valid + stats.num_non_valid == stats.num_profiles
            assert 0 <= stats.num_recomputed <= stats.num_non_valid + 1
            assert 0.0 <= stats.valid_fraction <= 1.0
        summary = result.pruning_summary()
        assert summary["lengths_evaluated"] == len(result.lengths) - 1
        assert 0.0 <= summary["recomputed_fraction"] <= 1.0

    def test_elapsed_time_recorded(self, small_random_series):
        result = valmod(small_random_series, 16, 20, top_k=1)
        assert result.elapsed_seconds > 0.0

    def test_length_step(self, small_random_series):
        result = valmod(small_random_series, 16, 30, top_k=1, length_step=5)
        assert result.lengths == [16, 21, 26, 30]

    def test_with_config_object(self, small_random_series):
        config = ValmodConfig(min_length=16, max_length=20, top_k=1)
        result = valmod_with_config(small_random_series, config)
        assert result.config == config

    def test_as_dict_is_json_friendly(self, small_random_series):
        import json

        result = valmod(small_random_series, 16, 20, top_k=1)
        payload = result.as_dict()
        text = json.dumps(payload)
        assert "valmap" in text


class TestParameterValidation:
    def test_range_exceeding_series_raises(self, small_random_series):
        with pytest.raises(LengthRangeError):
            valmod(small_random_series, 16, small_random_series.size)

    def test_min_length_too_small_raises(self, small_random_series):
        with pytest.raises(LengthRangeError):
            valmod(small_random_series, 2, 20)

    def test_nan_series_raises(self):
        from repro.exceptions import InvalidSeriesError

        values = np.ones(100)
        values[10] = np.nan
        with pytest.raises(InvalidSeriesError):
            valmod(values, 8, 16)


class TestGroundTruthRecovery:
    def test_planted_motif_recovered(self, planted_series):
        series, truth = planted_series
        planted = truth[0]
        result = valmod(series, 32, 64, top_k=2)
        best = result.best_motif()
        tolerance = planted.length
        assert min(abs(best.offset_a - offset) for offset in planted.offsets) <= tolerance
        assert min(abs(best.offset_b - offset) for offset in planted.offsets) <= tolerance

    def test_two_planted_lengths_both_found(self, two_length_planted_series):
        series, truth = two_length_planted_series
        result = valmod(series, 28, 88, top_k=2, length_step=4)
        ranked = result.top_motifs(6)
        from repro.analysis.evaluation import recall_of_planted_motifs

        assert recall_of_planted_motifs(ranked, truth, coverage=0.4) == 1.0


class TestEngineBatchedRecomputations:
    """engine= batches the per-length exact recomputations; results are exact."""

    @pytest.mark.parametrize("engine", ["serial", "parallel"])
    def test_engine_routed_valmod_matches_serial_oracle(
        self, small_random_series, engine
    ):
        kwargs = {"n_jobs": 2} if engine == "parallel" else {}
        oracle = valmod(small_random_series, 16, 40, top_k=2)
        routed = valmod(small_random_series, 16, 40, top_k=2, engine=engine, **kwargs)
        for length in oracle.lengths:
            expected = [(p.offsets, p.distance) for p in oracle.motifs_at(length)]
            observed = [(p.offsets, p.distance) for p in routed.motifs_at(length)]
            assert [o for o, _ in observed] == [o for o, _ in expected]
            np.testing.assert_allclose(
                [d for _, d in observed], [d for _, d in expected], atol=1e-8
            )

    def test_batched_recomputation_is_a_superset_of_serial(self, small_ecg_series):
        """The batch may recompute more profiles, never report different pairs."""
        oracle = valmod(small_ecg_series, 24, 40, top_k=3, profile_capacity=4)
        routed = valmod(
            small_ecg_series, 24, 40, top_k=3, profile_capacity=4, engine="serial"
        )
        assert (
            routed.extra["total_recomputed_profiles"]
            >= oracle.extra["total_recomputed_profiles"]
        )
        for length in oracle.lengths:
            expected = [p.distance for p in oracle.motifs_at(length)]
            observed = [p.distance for p in routed.motifs_at(length)]
            np.testing.assert_allclose(observed, expected, atol=1e-8)
