"""Join/anytime-tier kernel pins: AB-join recurrence and batched SCRIMP.

The kernelization PR promised that the fast join kernels are *bit-for-bit*
equal to the historical per-subsequence MASS loop (now ``kernel="oracle"``)
whenever reseeding is disabled, and that the batched SCRIMP diagonal sweep
is bit-identical to the one-diagonal-at-a-time oracle for **every**
fraction, resume point and block size.  Each promise is pinned here:

* ``ab_join``/``join_sweep_rows``: numpy and native kernels at
  ``reseed_interval=0`` match the oracle exactly — distances AND indices —
  across uneven lengths, flat runs / zero-variance windows on either side,
  a window equal to the shorter series, and an entirely constant series;
* at the default reseed interval the fast kernels agree with each other
  bitwise, and with the oracle on indices (distances to 1e-8);
* row-range partitioning and the ``engine=`` path reproduce the serial
  sweep;
* ``scrimp``/``scrimp_pp``: all kernels bitwise identical at any
  ``diag_block_size``, full or partial fractions, and resumed states;
* ``mpdist`` rides the same guarantees through ``ab_join_both``;
* an explicit ``kernel="native"`` request degrades to numpy with a single
  RuntimeWarning when no compiler is available.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.matrix_profile import _native, kernels
from repro.matrix_profile.ab_join import JoinProfile, ab_join, ab_join_both, join_sweep_rows
from repro.matrix_profile.kernels import available_kernels
from repro.matrix_profile.mpdist import mpdist
from repro.matrix_profile.scrimp import ScrimpState, pre_scrimp, scrimp, scrimp_pp
from repro.stats.sliding import SlidingStats

FAST_KERNELS = [name for name in ("numpy", "native") if name in available_kernels()]


def _walk(n: int, seed: int) -> np.ndarray:
    return np.cumsum(np.random.default_rng(seed).normal(size=n))


def _flat_patched(n: int, seed: int, runs) -> np.ndarray:
    values = _walk(n, seed)
    for start, stop in runs:
        values[start:stop] = values[start]
    return values


#: (series_a, series_b, window) triples covering the equality matrix.
JOIN_CASES = {
    "uneven_lengths": (_walk(300, 1), _walk(451, 2), 24),
    "flat_runs_in_a": (_flat_patched(256, 3, [(40, 90), (200, 230)]), _walk(180, 4), 16),
    "flat_runs_in_b": (_walk(180, 5), _flat_patched(256, 6, [(10, 60), (150, 200)]), 16),
    "flat_in_both": (
        _flat_patched(200, 7, [(0, 40)]),
        _flat_patched(240, 8, [(100, 160)]),
        12,
    ),
    # The largest window the validator allows: the shorter series holds
    # exactly two subsequences.
    "window_at_shorter_series_limit": (_walk(200, 9), _walk(49, 10), 48),
    "all_flat_b": (_walk(150, 11), np.full(96, 3.25), 16),
    "tiny": (_walk(20, 12), _walk(17, 13), 5),
}


def _assert_joins_equal(result: JoinProfile, reference: JoinProfile) -> None:
    np.testing.assert_array_equal(result.indices, reference.indices)
    np.testing.assert_array_equal(result.distances, reference.distances)


class TestJoinEqualityMatrix:
    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    @pytest.mark.parametrize("case", sorted(JOIN_CASES))
    def test_reseed_zero_is_bitwise_oracle(self, kernel, case):
        values_a, values_b, window = JOIN_CASES[case]
        oracle = ab_join(values_a, values_b, window, kernel="oracle")
        fast = ab_join(values_a, values_b, window, kernel=kernel, reseed_interval=0)
        _assert_joins_equal(fast, oracle)

    @pytest.mark.parametrize("case", sorted(JOIN_CASES))
    @pytest.mark.parametrize("reseed", [None, 7])
    def test_fast_kernels_agree_bitwise(self, case, reseed):
        if "native" not in FAST_KERNELS:
            pytest.skip("native kernel unavailable (no compiler)")
        values_a, values_b, window = JOIN_CASES[case]
        numpy_join = ab_join(
            values_a, values_b, window, kernel="numpy", reseed_interval=reseed
        )
        native_join = ab_join(
            values_a, values_b, window, kernel="native", reseed_interval=reseed
        )
        _assert_joins_equal(native_join, numpy_join)

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_default_reseed_close_to_oracle(self, kernel):
        values_a, values_b, window = JOIN_CASES["uneven_lengths"]
        oracle = ab_join(values_a, values_b, window, kernel="oracle")
        fast = ab_join(values_a, values_b, window, kernel=kernel)
        np.testing.assert_array_equal(fast.indices, oracle.indices)
        np.testing.assert_allclose(fast.distances, oracle.distances, atol=1e-8)

    def test_negative_reseed_interval_raises(self):
        values_a, values_b, window = JOIN_CASES["tiny"]
        with pytest.raises(InvalidParameterError):
            ab_join(values_a, values_b, window, kernel="numpy", reseed_interval=-1)

    def test_unknown_kernel_raises(self):
        values_a, values_b, window = JOIN_CASES["tiny"]
        with pytest.raises(InvalidParameterError):
            ab_join(values_a, values_b, window, kernel="fortran")


class TestJoinPartitioning:
    @pytest.mark.parametrize("kernel", ["oracle"] + FAST_KERNELS)
    def test_row_ranges_concatenate_to_full_sweep(self, kernel):
        values_a, values_b, window = JOIN_CASES["uneven_lengths"]
        stats_a = SlidingStats(values_a)
        stats_b = SlidingStats(values_b)
        count_a = values_a.size - window + 1
        full = join_sweep_rows(
            values_a,
            values_b,
            window,
            0,
            count_a,
            stats_a=stats_a,
            stats_b=stats_b,
            kernel=kernel,
            reseed_interval=0,
        )
        pieces = [
            join_sweep_rows(
                values_a,
                values_b,
                window,
                start,
                min(start + 50, count_a),
                stats_a=stats_a,
                stats_b=stats_b,
                kernel=kernel,
                reseed_interval=0,
            )
            for start in range(0, count_a, 50)
        ]
        np.testing.assert_array_equal(
            np.concatenate([piece.distances for piece in pieces]), full.distances
        )
        np.testing.assert_array_equal(
            np.concatenate([piece.indices for piece in pieces]), full.indices
        )

    def test_engine_path_matches_serial(self):
        values_a, values_b, window = JOIN_CASES["uneven_lengths"]
        oracle = ab_join(values_a, values_b, window, kernel="oracle")
        engined = ab_join(
            values_a,
            values_b,
            window,
            kernel="numpy",
            reseed_interval=0,
            engine="parallel",
            n_jobs=2,
            block_size=64,
        )
        _assert_joins_equal(engined, oracle)

    def test_engine_path_default_kernel(self):
        # At the default reseed interval every engine block starts from a
        # fresh FFT seed, so the recurrence rounding differs slightly from
        # the serial sweep: indices agree, distances to 1e-8.
        values_a, values_b, window = JOIN_CASES["flat_runs_in_b"]
        serial = ab_join(values_a, values_b, window)
        engined = ab_join(
            values_a, values_b, window, engine="parallel", n_jobs=2, block_size=50
        )
        np.testing.assert_array_equal(engined.indices, serial.indices)
        np.testing.assert_allclose(engined.distances, serial.distances, atol=1e-8)


class TestStatsPassthrough:
    def test_precomputed_stats_change_nothing(self):
        values_a, values_b, window = JOIN_CASES["flat_runs_in_a"]
        stats_a = SlidingStats(values_a)
        stats_b = SlidingStats(values_b)
        plain = ab_join(values_a, values_b, window, kernel="oracle")
        seeded = ab_join(
            values_a, values_b, window, stats_a=stats_a, stats_b=stats_b, kernel="oracle"
        )
        _assert_joins_equal(seeded, plain)

        fwd_plain, bwd_plain = ab_join_both(values_a, values_b, window, kernel="oracle")
        fwd, bwd = ab_join_both(
            values_a, values_b, window, stats_a=stats_a, stats_b=stats_b, kernel="oracle"
        )
        _assert_joins_equal(fwd, fwd_plain)
        _assert_joins_equal(bwd, bwd_plain)

        assert mpdist(
            values_a, values_b, window, stats_a=stats_a, stats_b=stats_b
        ) == mpdist(values_a, values_b, window)

    def test_ab_join_both_matches_two_one_sided_joins(self):
        values_a, values_b, window = JOIN_CASES["uneven_lengths"]
        forward, backward = ab_join_both(values_a, values_b, window, kernel="oracle")
        _assert_joins_equal(forward, ab_join(values_a, values_b, window, kernel="oracle"))
        _assert_joins_equal(backward, ab_join(values_b, values_a, window, kernel="oracle"))


class TestMpdistKernels:
    #: Pairs exercising the MPdist properties the module docstring promises.
    CORPUS = [
        (_walk(200, 20), _walk(200, 21), 20),
        (_walk(150, 22), _walk(260, 23), 16),
        (_flat_patched(180, 24, [(30, 80)]), _walk(140, 25), 12),
    ]

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_fast_equals_oracle_at_reseed_zero(self, kernel):
        for values_a, values_b, window in self.CORPUS:
            oracle = mpdist(values_a, values_b, window, kernel="oracle")
            fast = mpdist(values_a, values_b, window, kernel=kernel, reseed_interval=0)
            assert fast == oracle

    def test_default_close_to_oracle_and_symmetric(self):
        for values_a, values_b, window in self.CORPUS:
            oracle = mpdist(values_a, values_b, window, kernel="oracle")
            fast = mpdist(values_a, values_b, window)
            assert fast == pytest.approx(oracle, abs=1e-8)
            assert mpdist(values_a, values_b, window) == mpdist(
                values_b, values_a, window
            )
        values_a, _, window = self.CORPUS[0]
        assert mpdist(values_a, values_a, window) == pytest.approx(0.0, abs=1e-9)


class TestScrimpKernels:
    SERIES = _flat_patched(400, 30, [(120, 160)])
    WINDOW = 24

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    @pytest.mark.parametrize("fraction", [1.0, 0.35])
    @pytest.mark.parametrize("block", [None, 1, 3, 10**6])
    def test_bitwise_equal_to_oracle(self, kernel, fraction, block):
        oracle = scrimp(
            self.SERIES, self.WINDOW, fraction=fraction, random_state=11, kernel="oracle"
        )
        fast = scrimp(
            self.SERIES,
            self.WINDOW,
            fraction=fraction,
            random_state=11,
            kernel=kernel,
            diag_block_size=block,
        )
        np.testing.assert_array_equal(fast.distances, oracle.distances)
        np.testing.assert_array_equal(fast.indices, oracle.indices)

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_resume_from_seeded_state_bitwise(self, kernel):
        seeded = pre_scrimp(self.SERIES, self.WINDOW, random_state=5)
        count = self.SERIES.size - self.WINDOW + 1

        def fresh_state():
            return ScrimpState(
                distances=np.array(seeded.distances),
                indices=np.array(seeded.indices),
                window=self.WINDOW,
                exclusion_radius=seeded.exclusion_radius,
                diagonals_done=0,
                diagonals_total=max(count - seeded.exclusion_radius - 1, 0),
            )

        oracle = scrimp(
            self.SERIES,
            self.WINDOW,
            fraction=0.6,
            random_state=7,
            state=fresh_state(),
            kernel="oracle",
        )
        fast = scrimp(
            self.SERIES,
            self.WINDOW,
            fraction=0.6,
            random_state=7,
            state=fresh_state(),
            kernel=kernel,
        )
        np.testing.assert_array_equal(fast.distances, oracle.distances)
        np.testing.assert_array_equal(fast.indices, oracle.indices)

    @pytest.mark.parametrize("kernel", FAST_KERNELS)
    def test_scrimp_pp_bitwise(self, kernel):
        oracle = scrimp_pp(
            self.SERIES, self.WINDOW, fraction=0.8, random_state=9, kernel="oracle"
        )
        fast = scrimp_pp(
            self.SERIES, self.WINDOW, fraction=0.8, random_state=9, kernel=kernel
        )
        np.testing.assert_array_equal(fast.distances, oracle.distances)
        np.testing.assert_array_equal(fast.indices, oracle.indices)

    def test_invalid_block_size_raises(self):
        with pytest.raises(InvalidParameterError):
            scrimp(self.SERIES, self.WINDOW, kernel="numpy", diag_block_size=0)


@pytest.fixture
def _native_reset():
    """Restore the native loader's cached probe state around env flips."""
    yield
    _native.reset()


def test_native_fallback_covers_join_kernels(monkeypatch, _native_reset):
    monkeypatch.setenv(_native.DISABLE_ENV, "1")
    _native.reset()
    monkeypatch.setattr(kernels, "_warned_native_fallback", False)

    values_a, values_b, window = JOIN_CASES["tiny"]
    with pytest.warns(RuntimeWarning, match="falling back"):
        degraded = ab_join(values_a, values_b, window, kernel="native", reseed_interval=0)
    oracle = ab_join(values_a, values_b, window, kernel="oracle")
    _assert_joins_equal(degraded, oracle)

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the warning fires once per process
        fast = scrimp(values_a, window, kernel="native")
    reference = scrimp(values_a, window, kernel="oracle")
    np.testing.assert_array_equal(fast.distances, reference.distances)
