"""The queryable motif/discord index (``repro.index``).

Covers the subsystem's contracts end to end: extraction determinism
(index-vs-recompute oracle across three registry algorithms), ingest
hooks and cache-hit dedup, backfill idempotency and live-vs-backfill row
equality, tolerant loading of older sidecars, catalog corruption healing,
store-removal pruning, concurrent ingest-while-query, the query grammar,
and the HTTP/CLI front ends (identical JSON, URL-unsafe names, /stats
counters).
"""

from __future__ import annotations

import json
import threading
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.api.cache import CacheConfig, series_digest
from repro.api.requests import AnalysisRequest
from repro.api.session import analyze
from repro.cli import main
from repro.core.discords import variable_length_discords
from repro.core.motif_sets import expand_motif_pair
from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError
from repro.index import (
    IndexRecord,
    MotifIndex,
    QuerySpec,
    catalog_path,
    extract_records,
    open_motif_index,
    records_from_motif_set,
)
from repro.index.extract import load_sidecar_view
from repro.matrix_profile.stomp import stomp
from repro.service.client import ServiceClient
from repro.service.server import BackgroundService, ServiceConfig
from repro.store import SeriesStore


def _record(digest="a" * 40, kind="motif", length=32, score=1.0, start=0, **over):
    fields = {
        "series_digest": digest,
        "series_name": "series",
        "kind": kind,
        "length": length,
        "score": score,
        "start": start,
        "end": start + length,
        "partner": start + 100,
        "distance": score * np.sqrt(length),
        "algorithm": "stomp",
        "result_key": "key",
    }
    fields.update(over)
    return IndexRecord(**fields)


def _row_identity(row: dict):
    return (
        row["kind"],
        row["length"],
        row["start"],
        row["end"],
        row["partner"],
        round(row["score"], 10),
        round(row["distance"], 10),
    )


# --------------------------------------------------------------------- #
# the query grammar
# --------------------------------------------------------------------- #
def test_query_spec_parses_the_cli_grammar():
    spec = QuerySpec.parse("kind=motif length=64..128 score=..1.5 top=5 trim=true")
    assert spec.kind == "motif"
    assert (spec.min_length, spec.max_length) == (64, 128)
    assert (spec.min_score, spec.max_score) == (None, 1.5)
    assert spec.top == 5
    assert spec.trim_overlaps is True
    assert spec.effective_order == "score"
    # an empty query matches everything
    assert QuerySpec.parse("") == QuerySpec()
    # discords rank strongest-first by default
    assert QuerySpec.parse("kind=discord").effective_order == "-score"


@pytest.mark.parametrize(
    "text",
    [
        "bogus=1",
        "kind=nonsense",
        "length=128..64",
        "top=0",
        "order=sideways",
        "length",  # no '='
        "length=64 min_length=32",  # conflicting range forms
    ],
)
def test_query_spec_rejects_malformed_queries(text):
    with pytest.raises(InvalidParameterError):
        QuerySpec.parse(text)


# --------------------------------------------------------------------- #
# catalog basics: dedup, ordering, trimming, pruning
# --------------------------------------------------------------------- #
def test_add_is_idempotent_and_remove_prunes(tmp_path):
    with MotifIndex(tmp_path) as index:
        record = _record()
        assert index.add([record]) == 1
        assert index.add([record]) == 0  # the UNIQUE identity dedupes
        assert index.count() == 1
        other = _record(digest="b" * 40)
        index.add([other])
        assert index.series_count() == 2
        assert index.remove_series("a" * 40) == 1
        assert [row["series_digest"] for row in index.query("")] == ["b" * 40]


def test_query_ordering_and_overlap_trim(tmp_path):
    with MotifIndex(tmp_path) as index:
        index.add(
            [
                _record(start=0, score=0.5),
                _record(start=8, score=0.9),  # covers >half of the first span
                _record(start=200, score=1.2),
                _record(kind="discord", start=300, score=3.0),
                _record(kind="discord", start=400, score=2.0),
            ]
        )
        scores = [row["score"] for row in index.query("kind=motif")]
        assert scores == sorted(scores)
        # discords come strongest-first without an explicit order
        assert [r["score"] for r in index.query("kind=discord")] == [3.0, 2.0]
        trimmed = index.query("kind=motif trim=true top=5")
        assert [row["start"] for row in trimmed] == [0, 200]
        assert index.query("kind=motif length=64..128") == []
        assert len(index.query("score=1.0..")) == 3


def test_answer_document_shape(tmp_path):
    with MotifIndex(tmp_path) as index:
        index.add([_record()])
        document = index.answer("kind=motif top=1")
        assert set(document) == {"spec", "count", "rows"}
        assert document["count"] == 1
        assert document["spec"]["kind"] == "motif"
        assert document["rows"][0]["start"] == 0
        # the document is JSON-clean
        json.dumps(document)


def test_motif_set_records(tmp_path, planted_series):
    series, _ = planted_series
    pair = stomp(series, 48).motifs(1)[0]
    motif_set = expand_motif_pair(series, pair, radius_factor=2.0)
    records = records_from_motif_set(
        motif_set, series_digest="c" * 40, result_key="motif-set:48"
    )
    assert records, "the planted motif must yield occurrences"
    with MotifIndex(tmp_path) as index:
        index.add(records)
        rows = index.query("kind=motif_set")
        assert len(rows) == len(records)
        assert all(row["length"] == 48 for row in rows)


# --------------------------------------------------------------------- #
# the index-vs-recompute oracle (three registry algorithms)
# --------------------------------------------------------------------- #
def _oracle_case(which, values):
    if which == "stomp":
        request = AnalysisRequest(
            kind="matrix_profile", algo="stomp", params={"window": 48}
        )
        flat = lambda: stomp(values, 48)  # noqa: E731
    elif which == "valmod":
        request = AnalysisRequest(
            kind="motifs", algo="valmod", params={"min_length": 32, "max_length": 48}
        )
        flat = lambda: valmod(values, 32, 48)  # noqa: E731
    else:
        request = AnalysisRequest(
            kind="discords", algo="exact", params={"min_length": 32, "max_length": 40}
        )
        flat = lambda: variable_length_discords(values, 32, 40)  # noqa: E731
    return request, flat


@pytest.mark.parametrize("which", ["stomp", "valmod", "discords"])
def test_index_matches_recompute_oracle(tmp_path, small_random_series, which):
    """Rows answered from the catalog == rows extracted from a fresh
    recomputation through the flat functions — the index adds retrieval,
    never different answers."""
    values = small_random_series
    request, flat = _oracle_case(which, values)
    with open_motif_index(tmp_path) as index:
        with analyze(values, name="walk", index=index) as session:
            result = session.run(request)
            digest = session.series_digest

        class _Fresh:
            series_name = "walk"
            algo = result.algo
            payload = flat()

        expected = [
            record.as_dict()
            for record in extract_records(
                _Fresh(), series_digest=digest, result_key="oracle"
            )
        ]
        assert expected, f"the {which} oracle produced no rows"
        rows = index.query(QuerySpec(algorithm=result.algo))
        assert sorted(map(_row_identity, rows)) == sorted(
            map(_row_identity, expected)
        )


def test_cache_hits_do_not_reingest(tmp_path, small_random_series):
    request = AnalysisRequest(
        kind="matrix_profile", algo="stomp", params={"window": 32}
    )
    with open_motif_index(tmp_path) as index:
        with analyze(small_random_series, index=index) as session:
            session.run(request)
            added = index.count()
            session.run(request)  # memory hit
        assert index.count() == added
        assert index.stats()["ingested_results"] == 1


# --------------------------------------------------------------------- #
# backfill
# --------------------------------------------------------------------- #
def _populate_corpus(root: Path, values) -> str:
    cache = CacheConfig(persist_dir=root / "results")
    with open_motif_index(root) as live:
        with analyze(values, name="walk", cache_config=cache, index=live) as session:
            session.run(
                AnalysisRequest(
                    kind="matrix_profile", algo="stomp", params={"window": 48}
                )
            )
            session.run(
                AnalysisRequest(
                    kind="motifs",
                    algo="valmod",
                    params={"min_length": 32, "max_length": 48},
                )
            )
            return session.series_digest


def test_backfill_populates_live_ingest_rows_and_is_idempotent(
    tmp_path, small_random_series
):
    _populate_corpus(tmp_path, small_random_series)
    with open_motif_index(tmp_path) as live:
        live_rows = sorted(
            (row["result_key"], _row_identity(row)) for row in live.query("")
        )
        assert live_rows
    # A cold catalog rebuilt purely from the on-disk corpus must hold the
    # very same rows, under the very same keys.
    rebuilt = MotifIndex(tmp_path / "rebuilt.db")
    report = rebuilt.backfill(tmp_path)
    assert report["envelopes"] == 2 and report["skipped"] == 0
    rebuilt_rows = sorted(
        (row["result_key"], _row_identity(row)) for row in rebuilt.query("")
    )
    assert rebuilt_rows == live_rows
    # idempotency: a second walk adds zero duplicate rows
    again = rebuilt.backfill(tmp_path)
    assert again["rows_added"] == 0
    assert sorted(
        (row["result_key"], _row_identity(row)) for row in rebuilt.query("")
    ) == live_rows
    rebuilt.close()


def test_backfill_walks_older_sidecars_missing_optional_fields(
    tmp_path, small_random_series
):
    """An orphaned pre-upgrade sidecar (no envelope, no ``base_profile``)
    still contributes its per-length motifs through the degraded view."""
    _populate_corpus(tmp_path, small_random_series)
    sidecars = list((tmp_path / "results").glob("*/*/*.valmod.json"))
    assert len(sidecars) == 1
    sidecar = sidecars[0]
    payload = json.loads(sidecar.read_text())
    del payload["base_profile"]
    sidecar.write_text(json.dumps(payload))
    # orphan it: the envelope under the same key is gone
    sidecar.with_name(sidecar.name[: -len(".valmod.json")] + ".json").unlink()

    view = load_sidecar_view(payload)
    assert view.lengths, "the degraded view keeps the per-length motifs"

    with MotifIndex(tmp_path / "rebuilt.db") as rebuilt:
        report = rebuilt.backfill(tmp_path)
        assert report["sidecars"] == 1 and report["skipped"] == 0
        rows = rebuilt.query(QuerySpec(algorithm="valmod"))
        assert rows
        assert all(row["result_key"].startswith("sidecar:") for row in rows)


def test_rehydrate_keeps_older_sidecar_but_unlinks_corrupt_one(
    tmp_path, small_random_series
):
    cache = CacheConfig(persist_dir=tmp_path / "results")
    request = AnalysisRequest(
        kind="motifs", algo="valmod", params={"min_length": 32, "max_length": 40}
    )
    with analyze(small_random_series, cache_config=cache) as session:
        session.run(request)
    (sidecar,) = (tmp_path / "results").glob("*/*/*.valmod.json")
    payload = json.loads(sidecar.read_text())
    del payload["base_profile"]
    sidecar.write_text(json.dumps(payload))
    with analyze(small_random_series, cache_config=cache) as session:
        result, source = session.run_with_info(request)
        assert source == "persistent"
        assert result.is_envelope_view  # degraded, not raised
    assert sidecar.is_file(), "an older-format sidecar must survive for backfill"
    sidecar.write_text("not json at all")
    with analyze(small_random_series, cache_config=cache) as session:
        result, source = session.run_with_info(request)
        assert source == "persistent"
    assert not sidecar.is_file(), "a corrupt sidecar is removed so the slot heals"


# --------------------------------------------------------------------- #
# degradation and pruning
# --------------------------------------------------------------------- #
def test_corrupt_catalog_heals_to_empty_with_tagged_warning(tmp_path):
    path = catalog_path(tmp_path)
    with MotifIndex(path) as index:
        index.add([_record()])
    path.write_bytes(b"this is not a sqlite database, not even close")
    with MotifIndex(path) as index:
        with pytest.warns(RuntimeWarning, match=r"\[repro\.index\]"):
            assert index.count() == 0
        assert index.stats()["heals"] == 1
        # the healed catalog is fully usable again
        index.add([_record()])
        assert index.count() == 1
    with MotifIndex(path) as index:  # and it persists
        assert index.count() == 1


def test_ingest_never_raises_on_broken_payloads(tmp_path):
    with MotifIndex(tmp_path) as index:

        class _Hostile:
            series_name = "x"
            algo = "stomp"

            @property
            def payload(self):
                raise RuntimeError("boom")

        with pytest.warns(RuntimeWarning, match=r"\[repro\.index\]"):
            assert (
                index.ingest_result(
                    _Hostile(), series_digest="a" * 40, result_key="k"
                )
                == 0
            )
        assert index.stats()["skipped_payloads"] == 1


def test_store_removal_prunes_index_rows(tmp_path, small_random_series):
    values = np.asarray(small_random_series)
    other = values * 2.0 + 1.0
    with open_motif_index(tmp_path) as index:
        store = SeriesStore(tmp_path / "series")
        store.subscribe_removal(index.remove_series)
        digest_a = store.put(values, name="a")
        digest_b = store.put(other, name="b")
        index.add([_record(digest=digest_a), _record(digest=digest_b)])
        # rm prunes exactly the removed series' rows
        assert store.rm(digest_a)
        assert {row["series_digest"] for row in index.query("")} == {digest_b}
        # a vanished blob is pruned by gc's reconciliation
        store.blob_path(digest_b).unlink()
        store.gc()
        assert index.count() == 0
        assert index.stats()["pruned_rows"] == 2


def test_store_eviction_prunes_index_rows(tmp_path):
    rng = np.random.default_rng(11)
    first = np.cumsum(rng.standard_normal(300))
    second = np.cumsum(rng.standard_normal(300))
    with open_motif_index(tmp_path) as index:
        store = SeriesStore(tmp_path / "series", max_bytes=3000)  # one 2400B series
        store.subscribe_removal(index.remove_series)
        digest_first = store.put(first, name="cold")
        index.add([_record(digest=digest_first)])
        store.put(second, name="hot")  # evicts the cold series over budget
        assert digest_first not in store
        assert index.count() == 0


def test_concurrent_ingest_while_query(tmp_path):
    errors: list = []
    with MotifIndex(tmp_path, timeout=30.0) as index:
        stop = threading.Event()

        def _query_loop():
            try:
                while not stop.is_set():
                    rows = index.query("kind=motif top=8")
                    assert all(row["kind"] == "motif" for row in rows)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        reader = threading.Thread(target=_query_loop)
        reader.start()
        try:
            for batch in range(20):
                index.add(
                    [
                        _record(start=batch * 500 + offset, score=float(batch))
                        for offset in range(5)
                    ]
                )
        finally:
            stop.set()
            reader.join(timeout=30)
        assert not errors
        assert index.count() == 100


# --------------------------------------------------------------------- #
# the front ends: GET /query, /stats, the CLI
# --------------------------------------------------------------------- #
@pytest.fixture()
def indexed_service(tmp_path, small_random_series):
    config = ServiceConfig(
        port=0,
        workers=1,
        backlog=32,
        cache=CacheConfig(persist_dir=tmp_path / "results"),
        store_dir=tmp_path / "series",
        index_dir=tmp_path / "index",
    )
    rng = np.random.default_rng(23)
    other = np.cumsum(rng.standard_normal(280))
    request = AnalysisRequest(
        kind="matrix_profile", algo="stomp", params={"window": 32}
    )
    with BackgroundService(config) as background:
        with ServiceClient(port=background.port) as client:
            client.analyze(
                np.asarray(small_random_series),
                request,
                series_name="walk one/α β",  # URL-unsafe on purpose
            )
            client.analyze(other, request, series_name="plain")
            yield tmp_path, background, client


def test_service_query_answers_cross_series_without_recompute(indexed_service):
    root, background, client = indexed_service
    completed_before = client.stats()["completed"]
    document = client.query("kind=motif top=5")
    assert document["count"] == 5
    assert len({row["series_digest"] for row in document["rows"]}) == 2
    scores = [row["score"] for row in document["rows"]]
    assert scores == sorted(scores)
    # answering came from the catalog, not from new /analyze work
    assert client.stats()["completed"] == completed_before


def test_service_query_handles_url_unsafe_names(indexed_service):
    _, _, client = indexed_service
    document = client.query({"name": "one/α β", "kind": "motif"})
    assert document["count"] > 0
    assert all("walk one" in row["series_name"] for row in document["rows"])
    assert document["spec"]["name"] == "one/α β"


def test_service_query_rejects_unknown_parameters(indexed_service):
    _, _, client = indexed_service
    with pytest.raises(Exception, match="unknown query parameter"):
        client.query("bogus=1")


def test_service_stats_exposes_index_counters(indexed_service):
    _, _, client = indexed_service
    index_stats = client.stats()["index"]
    assert index_stats["rows"] > 0
    assert index_stats["series"] == 2
    assert index_stats["ingested_results"] == 2
    assert index_stats["schema_version"] >= 1


def test_service_without_index_answers_404_on_query(tmp_path):
    with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
        with ServiceClient(port=background.port) as client:
            with pytest.raises(Exception) as excinfo:
                client.query("kind=motif")
            assert getattr(excinfo.value, "status", None) == 404


def test_cli_and_http_query_return_identical_json(indexed_service, capsys):
    root, background, client = indexed_service
    query = "kind=motif top=5"
    http_document = client.query(query)
    assert main(["query", "--data-dir", str(root), query]) == 0
    local_document = json.loads(capsys.readouterr().out)
    assert local_document == http_document
    assert (
        main(["query", "--url", f"http://127.0.0.1:{background.port}", query]) == 0
    )
    url_document = json.loads(capsys.readouterr().out)
    assert url_document == http_document


def test_cli_index_backfill_and_stats(indexed_service, capsys):
    root, _, client = indexed_service
    rows = client.stats()["index"]["rows"]
    assert main(["index", "--data-dir", str(root), "backfill"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["rows_added"] == 0  # live ingest already catalogued it all
    assert report["rows"] == rows
    assert main(["index", "--data-dir", str(root), "stats"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["rows"] == rows


def test_cli_store_rm_prunes_existing_catalog(tmp_path, capsys):
    rng = np.random.default_rng(3)
    values = np.cumsum(rng.standard_normal(300))
    store = SeriesStore(tmp_path / "series")
    digest = store.put(values, name="doomed")
    with open_motif_index(tmp_path) as index:
        index.add([_record(digest=digest)])
    assert main(["store", "--data-dir", str(tmp_path), "rm", digest]) == 0
    capsys.readouterr()
    with open_motif_index(tmp_path) as index:
        assert index.count() == 0


def test_cli_store_rm_without_catalog_creates_none(tmp_path, capsys):
    rng = np.random.default_rng(4)
    store = SeriesStore(tmp_path / "series")
    digest = store.put(np.cumsum(rng.standard_normal(300)), name="plain")
    assert main(["store", "--data-dir", str(tmp_path), "rm", digest]) == 0
    capsys.readouterr()
    assert not catalog_path(tmp_path).exists()


def test_live_service_ingest_equals_cli_backfill(tmp_path, small_random_series):
    """The acceptance criterion end to end: rows a fresh catalog gets from
    walking the service's persisted corpus == the rows the service indexed
    live, key for key."""
    _populate_corpus(tmp_path, small_random_series)
    with open_motif_index(tmp_path) as live:
        live_rows = {
            (row["result_key"], _row_identity(row)) for row in live.query("")
        }
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no tagged degradation on this path
        with MotifIndex(tmp_path / "cold.db") as cold:
            cold.backfill(tmp_path)
            cold_rows = {
                (row["result_key"], _row_identity(row)) for row in cold.query("")
            }
    assert cold_rows == live_rows
