"""The service's multi-process data plane, pipelining, and /metrics.

Covers the PR-8 surface: blob-backed zero-copy process workers, the
in-flight-job shutdown fix, the partial-start unwind fix, keep-alive
request pipelining (in-order responses over one socket), the latency
histogram endpoint, and the flat-payload batch transport.

Single-core safe: correctness and ordering only — parallel *speedup* is
the throughput benchmark's job (core-count gated there).
"""

from __future__ import annotations

import asyncio
import json
import pickle
import socket
import threading
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.api.cache import series_digest
from repro.api.registry import AlgorithmSpec, register, unregister
from repro.api.requests import AnalysisRequest
from repro.api.session import Analysis
from repro.engine.batch import ProfileJob, _prepare_parallel_tasks, compute_profiles
from repro.engine.shm import (
    BlobHandle,
    SharedArraysHandle,
    attach_blob,
    shared_memory_available,
)
from repro.exceptions import InvalidParameterError, StoreError
from repro.harness.tables import metrics_rows
from repro.service import BackgroundService, ServiceClient, ServiceConfig
from repro.service.server import _LATENCY_BUCKET_BOUNDS, _METRIC_PHASES, AnalysisService
from repro.store import SeriesStore


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return np.cumsum(np.random.default_rng(11).standard_normal(512))


def _process_pools_work() -> bool:
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 1).result(timeout=60) == 1
    except Exception:
        return False


# --------------------------------------------------------------------- #
# BlobHandle transport
# --------------------------------------------------------------------- #
class TestBlobHandle:
    def test_attach_is_zero_copy_and_verified(self, tmp_path, values):
        store = SeriesStore(tmp_path)
        digest = store.put(values)
        handle = store.handle(digest)
        assert isinstance(handle, BlobHandle)
        assert handle.digest == digest
        assert handle.length == values.size
        attached = attach_blob(handle)
        np.testing.assert_array_equal(attached, values)
        assert not attached.flags.writeable
        # Tiny on the wire: the whole point of the handle transport.
        assert len(pickle.dumps(handle)) < 512

    def test_attach_rejects_corruption(self, tmp_path):
        # Unique values: attach_blob caches by digest, so reusing the module
        # fixture would answer from the (healthy) cached copy.
        store = SeriesStore(tmp_path)
        digest = store.put(np.random.default_rng(7101).standard_normal(256))
        handle = store.handle(digest)
        blob = tmp_path / "blobs" / digest[:2] / f"{digest}.f64"
        data = bytearray(blob.read_bytes())
        data[0] ^= 0xFF
        blob.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="corrupt"):
            attach_blob(handle)

    def test_attach_rejects_truncation(self, tmp_path):
        store = SeriesStore(tmp_path)
        digest = store.put(np.random.default_rng(7102).standard_normal(256))
        handle = store.handle(digest)
        blob = tmp_path / "blobs" / digest[:2] / f"{digest}.f64"
        blob.write_bytes(blob.read_bytes()[:-8])
        with pytest.raises(StoreError):
            attach_blob(handle)

    def test_handle_for_unknown_digest_is_none(self, tmp_path):
        store = SeriesStore(tmp_path)
        assert store.handle("0" * 40) is None

    def test_profile_job_accepts_blob_handle(self, tmp_path, values):
        store = SeriesStore(tmp_path)
        digest = store.put(values)
        handle = store.handle(digest)
        via_handle = compute_profiles(
            [ProfileJob(handle, window=32)], executor="serial"
        )[0].unwrap()
        via_array = compute_profiles(
            [ProfileJob(values, window=32)], executor="serial"
        )[0].unwrap()
        np.testing.assert_allclose(
            via_handle.distances, via_array.distances, atol=1e-10
        )


# --------------------------------------------------------------------- #
# flat parallel payloads (the per-job O(n) pickle fix)
# --------------------------------------------------------------------- #
class TestFlatPayloads:
    @pytest.mark.skipif(
        not shared_memory_available(), reason="no shared memory on this platform"
    )
    def test_shared_series_jobs_are_rewritten_onto_handles(self, values):
        jobs = [ProfileJob(values, window=window) for window in (16, 24, 32, 48)]
        tasks, buffers = _prepare_parallel_tasks(jobs)
        try:
            assert len(tasks) == len(jobs)
            assert all(
                isinstance(task.series, SharedArraysHandle) for task in tasks
            )
            # The payload no longer scales with the series: each rewritten
            # job pickles to a fraction of the raw-array job.
            flat = max(len(pickle.dumps(task)) for task in tasks)
            fat = len(pickle.dumps(jobs[0]))
            assert flat < fat / 4
            assert flat < 2048
        finally:
            for buffer in buffers:
                buffer.close()
                buffer.unlink()

    def test_singleton_series_jobs_pass_through(self, values):
        other = values[:128].copy()
        jobs = [ProfileJob(values, window=16), ProfileJob(other, window=16)]
        tasks, buffers = _prepare_parallel_tasks(jobs)
        assert buffers == []
        assert tasks[0].series is values
        assert tasks[1].series is other


# --------------------------------------------------------------------- #
# shutdown fixes
# --------------------------------------------------------------------- #
class TestLifecycleFixes:
    def test_stop_fails_inflight_job_with_503(self, values):
        """A job already *executing* (not just queued) must have its future
        failed on stop — previously only queued jobs were failed and the
        connection handler hung forever."""
        release = threading.Event()
        entered = threading.Event()

        def parked_runner(session, **params):
            entered.set()
            release.wait(timeout=60)
            return 0.0

        register(
            AlgorithmSpec(
                kind="mpdist",
                key="_test_inflight",
                runner=parked_runner,
                description="test-only parked runner",
            )
        )
        statuses: dict[str, object] = {}
        try:
            background = BackgroundService(ServiceConfig(port=0, workers=1))
            background.__enter__()
            try:

                def post() -> None:
                    client = ServiceClient(port=background.port, timeout=120)
                    status, payload = client.analyze_raw(
                        values,
                        AnalysisRequest(kind="mpdist", algo="_test_inflight"),
                    )
                    statuses["status"] = status
                    statuses["payload"] = payload

                thread = threading.Thread(target=post)
                thread.start()
                assert entered.wait(timeout=60), "the job never started executing"
            finally:
                # Stop the service while the job is mid-run_in_executor.
                background.__exit__(None, None, None)
            thread.join(timeout=60)
            assert not thread.is_alive(), "the client hung on an unresolved job"
            assert statuses["status"] == 503
            assert "shutting down" in statuses["payload"]["error"]
        finally:
            release.set()
            unregister("mpdist", "_test_inflight")

    def test_start_unwinds_on_bind_conflict(self):
        """A bind failure (port in use) must not leak the executor or the
        worker tasks; the same config retried on a free port must work."""

        async def scenario() -> None:
            blocker = socket.socket()
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            taken_port = blocker.getsockname()[1]
            try:
                service = AnalysisService(
                    ServiceConfig(host="127.0.0.1", port=taken_port)
                )
                with pytest.raises(OSError):
                    await service.start()
                assert service._workers == []
                assert service._executor is None
                assert service._compute is None
            finally:
                blocker.close()
            retry = AnalysisService(ServiceConfig(host="127.0.0.1", port=0))
            await retry.start()
            try:
                assert retry.port > 0
            finally:
                await retry.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------- #
# pipelining
# --------------------------------------------------------------------- #
def _http_post(path: str, document: dict) -> bytes:
    body = json.dumps(document).encode("utf-8")
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body


def _read_response(stream) -> tuple[int, dict]:
    status_line = stream.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = stream.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    return status, json.loads(stream.read(length).decode("utf-8"))


class TestPipelining:
    def test_pipelined_responses_arrive_in_request_order(self, values):
        """Two requests stuffed down one socket: the second (fast) one
        completes while the first is parked, yet the responses come back in
        request order with clean framing."""
        release = threading.Event()
        entered = threading.Event()

        def parked_runner(session, **params):
            entered.set()
            release.wait(timeout=60)
            return 1.0

        register(
            AlgorithmSpec(
                kind="mpdist",
                key="_test_pipeline",
                runner=parked_runner,
                description="test-only parked runner",
            )
        )
        try:
            with BackgroundService(
                ServiceConfig(port=0, workers=2, backlog=8)
            ) as background:
                series = values.tolist()
                slow = _http_post(
                    "/analyze",
                    {
                        "id": "slow",
                        "series": series,
                        "request": {"kind": "mpdist", "algo": "_test_pipeline"},
                    },
                )
                fast = _http_post(
                    "/analyze",
                    {
                        "id": "fast",
                        # A *different* series: same-digest jobs share one
                        # session (and its lock), which would serialise the
                        # fast job behind the parked one.
                        "series": series[:256],
                        "request": {
                            "kind": "matrix_profile",
                            "params": {"window": 32},
                        },
                    },
                )
                poll = ServiceClient(port=background.port, timeout=30)
                with socket.create_connection(
                    ("127.0.0.1", background.port), timeout=120
                ) as raw:
                    raw.sendall(slow + fast)  # both on the wire at once
                    assert entered.wait(timeout=60)
                    # The fast request completes while the slow one is
                    # still parked — the reader kept draining the socket.
                    deadline = time.monotonic() + 60
                    while time.monotonic() < deadline:
                        if poll.stats()["completed"] >= 1:
                            break
                        time.sleep(0.01)
                    assert poll.stats()["completed"] >= 1
                    assert not release.is_set()
                    release.set()
                    stream = raw.makefile("rb")
                    first = _read_response(stream)
                    second = _read_response(stream)
                assert first[0] == 200 and second[0] == 200
                # Response order is request order, not completion order.
                assert first[1]["id"] == "slow"
                assert second[1]["id"] == "fast"
                order = poll.stats()["completion_order"]
                assert order == [2, 1]
        finally:
            release.set()
            unregister("mpdist", "_test_pipeline")


# --------------------------------------------------------------------- #
# /metrics
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_schema_and_monotonicity(self, values):
        with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
            client = ServiceClient(port=background.port, timeout=120)
            request = AnalysisRequest(kind="matrix_profile", params={"window": 32})
            client.analyze(values, request)
            first = client.metrics()
            assert first["bounds"] == list(_LATENCY_BUCKET_BOUNDS)
            assert first["phases"] == list(_METRIC_PHASES)
            histograms = first["kinds"]["matrix_profile"]
            for phase in _METRIC_PHASES:
                histogram = histograms[phase]
                assert histogram["count"] == 1
                assert sum(histogram["counts"]) == histogram["count"]
                assert len(histogram["counts"]) == len(first["bounds"]) + 1
                assert histogram["sum"] >= 0.0
            # Cache hits are observed too; counters only ever grow.
            client.analyze(values, request)
            second = client.metrics()
            for phase in _METRIC_PHASES:
                assert (
                    second["kinds"]["matrix_profile"][phase]["count"]
                    == 2
                )
            stats = client.stats()
            summary = stats["latency"]["matrix_profile"]["total"]
            assert summary["count"] == 2
            assert summary["p50"] is not None
            assert summary["p95"] >= summary["p50"]

    def test_metrics_rows_flattens_the_document(self, values):
        with BackgroundService(ServiceConfig(port=0, workers=1)) as background:
            client = ServiceClient(port=background.port, timeout=120)
            client.analyze(
                values, AnalysisRequest(kind="matrix_profile", params={"window": 16})
            )
            rows = metrics_rows(client.metrics())
        assert {row["phase"] for row in rows} == set(_METRIC_PHASES)
        for row in rows:
            assert row["kind"] == "matrix_profile"
            assert row["count"] == 1
            assert row["p95"] >= row["p50"] > 0


# --------------------------------------------------------------------- #
# the process data plane, end to end
# --------------------------------------------------------------------- #
class TestProcessWorkers:
    @pytest.mark.skipif(
        not _process_pools_work(), reason="process pools unavailable here"
    )
    def test_zero_copy_end_to_end(self, tmp_path, values):
        config = ServiceConfig(
            port=0,
            workers=2,
            worker_kind="process",
            store_dir=tmp_path / "series",
        )
        with BackgroundService(config) as background:
            client = ServiceClient(port=background.port, timeout=300)
            request = AnalysisRequest(kind="matrix_profile", params={"window": 48})
            result, source = client.analyze(values, request)
            assert source == "computed"
            stats = client.stats()
            assert stats["worker_kind"] == "process"
            # The worker attached the store blob instead of unpickling the
            # values — the zero-copy counter proves the path was taken.
            assert stats["zero_copy_jobs"] >= 1
            # Adoption: the repeat answers from the parent's memory cache
            # without another process round-trip.
            again, source_again = client.analyze(values, request)
            assert source_again == "memory"
            # And the answer matches the in-process oracle exactly.
            oracle = Analysis(values).matrix_profile(48)
            np.testing.assert_allclose(
                np.asarray(result.payload.distances),
                np.asarray(oracle.payload.distances),
                atol=1e-8,
            )
            # Digest-string analyze: the client never holds the values.
            digest = series_digest(values)
            via_digest, digest_source = client.analyze(digest, request)
            assert digest_source == "memory"
            np.testing.assert_allclose(
                np.asarray(via_digest.payload.distances),
                np.asarray(oracle.payload.distances),
                atol=1e-8,
            )

    @pytest.mark.skipif(
        not _process_pools_work(), reason="process pools unavailable here"
    )
    def test_errors_cross_the_pool_boundary(self, values):
        config = ServiceConfig(port=0, workers=1, worker_kind="process")
        with BackgroundService(config) as background:
            client = ServiceClient(port=background.port, timeout=300)
            status, payload = client.analyze_raw(
                values,
                AnalysisRequest(
                    kind="matrix_profile", params={"window": 10**9}
                ),
            )
            assert status == 422
            assert "error" in payload

    def test_degrades_to_threads_where_pools_fail(self, values, monkeypatch):
        """worker_kind='process' on a pool-hostile platform must start (with
        the engine's degradation warning) and serve on threads."""
        import repro.engine.executor as executor_module

        class _Exploding:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pools here")

        monkeypatch.setattr(executor_module, "ProcessPoolExecutor", _Exploding)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            with BackgroundService(
                ServiceConfig(port=0, workers=1, worker_kind="process")
            ) as background:
                client = ServiceClient(port=background.port, timeout=120)
                result, _ = client.analyze(
                    values,
                    AnalysisRequest(kind="matrix_profile", params={"window": 32}),
                )
                assert client.stats()["worker_kind"] == "thread"
        oracle = Analysis(values).matrix_profile(32)
        np.testing.assert_allclose(
            np.asarray(result.payload.distances),
            np.asarray(oracle.payload.distances),
            atol=1e-8,
        )


class TestClientDigestStrings:
    def test_unknown_digest_stays_404(self, tmp_path):
        config = ServiceConfig(port=0, store_dir=tmp_path / "series")
        with BackgroundService(config) as background:
            client = ServiceClient(port=background.port, timeout=60)
            status, payload = client.analyze_raw(
                "f" * 40,
                AnalysisRequest(kind="matrix_profile", params={"window": 8}),
            )
            assert status == 404
            assert payload["unknown_digest"] == "f" * 40

    def test_digest_string_rejects_values_transport(self):
        client = ServiceClient(port=1)
        with pytest.raises(InvalidParameterError, match="values"):
            client.analyze_raw(
                "f" * 40,
                AnalysisRequest(kind="matrix_profile", params={"window": 8}),
                transport="values",
            )
