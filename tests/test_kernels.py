"""Sweep-kernel regression pins: bit-for-bit equality, aliasing, allocations.

The PR that introduced :mod:`repro.matrix_profile.kernels` made three
promises, each pinned here:

* the numpy row-block kernel and the compiled kernel produce **identical**
  profiles and indices to the serial oracle — not merely close — across
  window sizes, reseed intervals, seam-straddling partial ranges, tiny
  series and constant/near-constant segments, for every entry point
  (``stomp``, the engine blocks, VALMOD's base pass, ``stomp-range``,
  SKIMP);
* the fast path makes **no per-row O(n) allocations** (the old loop
  allocated three O(n) temporaries per row);
* the hooks no longer alias the recurrence buffer: ``profile_callback``
  receives a read-only copy plus an owned distances array (safe to keep
  across rows), ``ingest`` receives a read-only view consumed during the
  call.

Zero-variance behaviour (flat and near-flat segments, including at block
seams) is pinned both at the ``distances_from_dot_products`` convention
level and through the cross-kernel equality sweeps.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.api.session import Analysis, EngineConfig
from repro.baselines.stomp_range import stomp_range
from repro.core.skimp import skimp
from repro.core.valmod import valmod
from repro.engine.partition import partitioned_stomp
from repro.exceptions import InvalidParameterError
from repro.matrix_profile import _native, kernels
from repro.matrix_profile.distance_profile import distances_from_dot_products
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.kernels import available_kernels, resolve_kernel, run_sweep
from repro.matrix_profile.stomp import stomp
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats

#: Fast kernels actually usable in this environment ("numpy" always is;
#: "native" joins when a C compiler is present — the CI fallback leg sets
#: REPRO_NO_NATIVE=1 so both configurations stay exercised).
FAST_KERNELS = [name for name in ("numpy", "native") if name in available_kernels()]


def _walk(n: int, seed: int = 7) -> np.ndarray:
    return np.cumsum(np.random.default_rng(seed).normal(size=n))


def _seam_series(n: int = 320) -> np.ndarray:
    """A walk with two flat runs, one straddling the 128-row block seam."""
    values = _walk(n, seed=3)
    values[50:90] = values[50]  # flat run well inside the first block
    values[120:140] = values[120]  # flat run straddling offset 128
    return values


SERIES_CASES = {
    "walk": (_walk(300), 32),
    "offset": (1e6 + _walk(300, seed=11), 32),  # triggers compensated centering
    "flat": (np.full(120, 3.25), 16),
    "seam": (_seam_series(), 24),
    "tiny": (_walk(40, seed=5), 8),
    "w3": (_walk(90, seed=9), 3),
}


def _sweep_args(values: np.ndarray, window: int):
    stats = SlidingStats(np.asarray(values, dtype=np.float64))
    centered = stats.centered_values
    means, stds = stats.centered_mean_std(window)
    first = sliding_dot_product(centered[:window], centered)
    radius = default_exclusion_radius(window)
    return centered, window, radius, means, stds, first


# --------------------------------------------------------------------- #
# bit-for-bit equality (satellite: the property test)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("case", sorted(SERIES_CASES))
@pytest.mark.parametrize("reseed", [None, 64, 17])
def test_kernels_bit_equal_full_sweep(case, reseed):
    values, window = SERIES_CASES[case]
    args = _sweep_args(values, window)
    count = args[3].size
    reference = run_sweep(*args, 0, count, kernel="oracle", reseed_interval=reseed)
    for name in FAST_KERNELS:
        profile, indices = run_sweep(
            *args, 0, count, kernel=name, reseed_interval=reseed
        )
        np.testing.assert_array_equal(profile, reference[0], err_msg=name)
        np.testing.assert_array_equal(indices, reference[1], err_msg=name)


@pytest.mark.parametrize("case", ["walk", "offset", "seam"])
def test_kernels_bit_equal_partial_ranges(case):
    """Row ranges that start mid-series and straddle reseed boundaries."""
    values, window = SERIES_CASES[case]
    args = _sweep_args(values, window)
    count = args[3].size
    start = count // 3
    stop = min(count, start + 123)
    for reseed in (None, 50):
        reference = run_sweep(
            *args, start, stop, kernel="oracle", reseed_interval=reseed
        )
        for name in FAST_KERNELS:
            result = run_sweep(*args, start, stop, kernel=name, reseed_interval=reseed)
            np.testing.assert_array_equal(result[0], reference[0], err_msg=name)
            np.testing.assert_array_equal(result[1], reference[1], err_msg=name)


@pytest.mark.parametrize("kernel", FAST_KERNELS)
def test_entry_points_bit_equal(kernel):
    """stomp / engine blocks / valmod / stomp-range / skimp, kernel threaded."""
    values, window = SERIES_CASES["seam"]
    reference = stomp(values, window, kernel="oracle")

    fast = stomp(values, window, kernel=kernel)
    np.testing.assert_array_equal(fast.distances, reference.distances)
    np.testing.assert_array_equal(fast.indices, reference.indices)

    blocked_ref = partitioned_stomp(
        values, window, executor="serial", block_size=100, kernel="oracle"
    )
    blocked = partitioned_stomp(
        values, window, executor="serial", block_size=100, kernel=kernel
    )
    np.testing.assert_array_equal(blocked.distances, blocked_ref.distances)
    np.testing.assert_array_equal(blocked.indices, blocked_ref.indices)

    valmod_ref = valmod(values, window, window + 2, kernel="oracle")
    valmod_fast = valmod(values, window, window + 2, kernel=kernel)
    np.testing.assert_array_equal(
        valmod_fast.base_profile.distances, valmod_ref.base_profile.distances
    )
    np.testing.assert_array_equal(
        valmod_fast.base_profile.indices, valmod_ref.base_profile.indices
    )
    for length, result in valmod_ref.length_results.items():
        assert valmod_fast.length_results[length].motifs == result.motifs

    range_ref = stomp_range(values, window, window + 2, kernel="oracle")
    range_fast = stomp_range(values, window, window + 2, kernel=kernel)
    assert range_fast.motifs_by_length == range_ref.motifs_by_length

    pan_ref = skimp(values, window, window + 2, kernel="oracle")
    pan_fast = skimp(values, window, window + 2, kernel=kernel)
    np.testing.assert_array_equal(
        pan_fast.normalized_profiles, pan_ref.normalized_profiles
    )
    np.testing.assert_array_equal(pan_fast.index_profiles, pan_ref.index_profiles)


def test_session_kernel_threads_through_api():
    values, window = SERIES_CASES["walk"]
    reference = None
    for kernel in ("oracle", *FAST_KERNELS):
        session = Analysis(values, engine=EngineConfig(kernel=kernel))
        profile = session.matrix_profile(window).value
        if reference is None:
            reference = profile
        else:
            np.testing.assert_array_equal(profile.distances, reference.distances)
            np.testing.assert_array_equal(profile.indices, reference.indices)


# --------------------------------------------------------------------- #
# allocation regression (satellite: no per-row O(n) temporaries)
# --------------------------------------------------------------------- #
class _CountingNumpy:
    """Proxy for the kernels module's ``np`` that counts array constructions."""

    _CONSTRUCTORS = frozenset(
        {"empty", "zeros", "full", "array", "empty_like", "zeros_like", "arange"}
    )

    def __init__(self):
        self.calls = 0

    def __getattr__(self, name):
        attr = getattr(np, name)
        if name in self._CONSTRUCTORS:
            def counted(*args, **kwargs):
                self.calls += 1
                return attr(*args, **kwargs)

            return counted
        return attr


def test_numpy_kernel_allocation_count_is_row_independent(monkeypatch):
    """Doubling the row count must not change the kernel's allocation count.

    The pre-kernel loop allocated three O(n) temporaries per row; the
    row-block kernel allocates its workspace once per sweep.  Counting the
    array constructions issued from the kernels module at two different
    series sizes pins that: any per-row allocation would scale the count
    with the number of rows.
    """
    counts = []
    for n in (240, 480):
        args = _sweep_args(_walk(n), 24)
        proxy = _CountingNumpy()
        monkeypatch.setattr(kernels, "np", proxy)
        try:
            run_sweep(*args, 0, args[3].size, kernel="numpy")
        finally:
            monkeypatch.setattr(kernels, "np", np)
        counts.append(proxy.calls)
    assert counts[0] == counts[1], counts


# --------------------------------------------------------------------- #
# aliasing contract (satellite: the qt use-after-advance fix)
# --------------------------------------------------------------------- #
def test_profile_callback_rows_safe_to_keep_across_rows():
    values, window = SERIES_CASES["walk"]
    kept_qt, kept_distances, snapshots = [], [], []

    def callback(offset, dot_products, distances):
        kept_qt.append(dot_products)
        kept_distances.append(distances)
        snapshots.append((dot_products.copy(), distances.copy()))

    stomp(values, window, profile_callback=callback)

    assert len(kept_qt) == values.size - window + 1
    for row, (qt, distances) in enumerate(zip(kept_qt, kept_distances)):
        qt_then, distances_then = snapshots[row]
        # The arrays a callback keeps must still hold row ``row``'s values
        # after the sweep advanced past it — the old code handed out the
        # buffer the recurrence mutated next row.
        np.testing.assert_array_equal(qt, qt_then)
        np.testing.assert_array_equal(distances, distances_then)
        assert not qt.flags.writeable  # read-only copy
        assert distances.flags.writeable  # owned outright
    # Owned means no hidden sharing between consecutive rows either.
    assert not np.shares_memory(kept_distances[0], kept_distances[1])
    assert not np.shares_memory(kept_qt[0], kept_qt[1])


class _IngestRecorder:
    """Minimal ingest hook: copies what it keeps, as the contract demands."""

    def __init__(self):
        self.rows = {}
        self.writeable = []

    def ingest_centered_profile(self, offset, dot_products):
        self.writeable.append(dot_products.flags.writeable)
        self.rows[int(offset)] = np.array(dot_products)


@pytest.mark.parametrize("kernel", ["oracle", *FAST_KERNELS])
def test_ingest_views_read_only_and_consistent(kernel):
    """Every kernel feeds ingest the same read-only centered rows.

    A native request with ingest runs the numpy kernel (the compiled loop
    has no per-row hook), so this also pins that silent downgrade.
    """
    values, window = SERIES_CASES["walk"]
    args = _sweep_args(values, window)
    count = args[3].size

    reference = _IngestRecorder()
    run_sweep(*args, 0, count, kernel="oracle", ingest=reference)

    recorder = _IngestRecorder()
    run_sweep(*args, 0, count, kernel=kernel, ingest=recorder)
    assert not any(recorder.writeable)
    assert recorder.rows.keys() == reference.rows.keys()
    for offset, row in reference.rows.items():
        np.testing.assert_array_equal(recorder.rows[offset], row)


# --------------------------------------------------------------------- #
# zero-variance conventions (satellite: std == 0 asymmetries)
# --------------------------------------------------------------------- #
def test_distance_conventions_for_constant_subsequences():
    window = 8
    qt = np.zeros(4)
    means = np.array([0.0, 1.0, -2.0, 0.5])
    stds = np.array([0.0, 1.0, 0.0, 2.0])

    # Constant query: 0 against constant targets, sqrt(m) elsewhere.
    constant_query = distances_from_dot_products(qt, window, 0.0, 0.0, means, stds)
    np.testing.assert_array_equal(
        constant_query,
        np.where(stds == 0.0, 0.0, np.sqrt(window)),
    )

    # Non-constant query: sqrt(m) exactly at constant target columns.
    mixed = distances_from_dot_products(qt, window, 0.0, 1.5, means, stds)
    np.testing.assert_array_equal(
        mixed[stds == 0.0], np.full(2, np.sqrt(window))
    )
    assert np.all(np.isfinite(mixed))


def test_flat_series_profile_is_all_zero_for_every_kernel():
    values, window = SERIES_CASES["flat"]
    for kernel in ("oracle", *FAST_KERNELS):
        profile = stomp(values, window, kernel=kernel)
        # Every subsequence is constant: distance 0 to any non-excluded one.
        np.testing.assert_array_equal(profile.distances, np.zeros(len(profile)))
        assert np.all(profile.indices >= 0)


def test_near_flat_seam_profiles_finite_and_conventional():
    values, window = SERIES_CASES["seam"]
    stats = SlidingStats(values)
    _, stds = stats.centered_mean_std(window)
    constant_rows = np.flatnonzero(stds == 0.0)
    assert constant_rows.size > 0  # the fixture must exercise the case
    for kernel in ("oracle", *FAST_KERNELS):
        profile = partitioned_stomp(
            values, window, executor="serial", block_size=128, kernel=kernel
        )
        assert np.all(np.isfinite(profile.distances))
        # Two disjoint flat runs exist, so every constant row has an exact
        # constant partner: distance exactly 0, matched to a constant row.
        np.testing.assert_array_equal(
            profile.distances[constant_rows], np.zeros(constant_rows.size)
        )
        assert np.all(stds[profile.indices[constant_rows]] == 0.0)


# --------------------------------------------------------------------- #
# selection, fallback and configuration plumbing
# --------------------------------------------------------------------- #
def test_validate_kernel_rejects_unknown_names():
    with pytest.raises(InvalidParameterError):
        kernels.validate_kernel("fortran")
    with pytest.raises(InvalidParameterError):
        run_sweep(*_sweep_args(_walk(60), 8), 0, 1, kernel="fortran")
    with pytest.raises(InvalidParameterError):
        EngineConfig(kernel="fortran")


def test_engine_config_kernel_roundtrip():
    config = EngineConfig(executor="serial", kernel="numpy")
    assert config.as_dict()["kernel"] == "numpy"
    assert EngineConfig.from_dict(config.as_dict()).kernel == "numpy"
    assert EngineConfig.from_dict({"executor": None}).kernel is None


def test_kernel_env_override(monkeypatch):
    monkeypatch.setenv(kernels.KERNEL_ENV, "oracle")
    assert resolve_kernel(None) == "oracle"
    monkeypatch.setenv(kernels.KERNEL_ENV, "")
    assert resolve_kernel(None) in ("numpy", "native")


@pytest.fixture
def _native_reset():
    """Restore the native loader's cached probe state around env flips."""
    yield
    _native.reset()


def test_native_fallback_warns_once_and_degrades(monkeypatch, _native_reset):
    monkeypatch.setenv(_native.DISABLE_ENV, "1")
    _native.reset()
    monkeypatch.setattr(kernels, "_warned_native_fallback", False)

    assert "native" not in available_kernels()
    assert resolve_kernel("auto") == "numpy"
    with pytest.warns(RuntimeWarning, match="falling back"):
        assert resolve_kernel("native") == "numpy"
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the warning fires once per process
        assert resolve_kernel("native") == "numpy"

    # An explicit native request still computes (on the numpy kernel).
    values, window = SERIES_CASES["tiny"]
    fast = stomp(values, window, kernel="native")
    reference = stomp(values, window, kernel="oracle")
    np.testing.assert_array_equal(fast.distances, reference.distances)
