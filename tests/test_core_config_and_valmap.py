"""Tests for ValmodConfig and the VALMAP structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ValmodConfig
from repro.core.valmap import Valmap
from repro.exceptions import InvalidParameterError, LengthRangeError
from repro.matrix_profile.profile import MatrixProfile, MotifPair


class TestValmodConfig:
    def test_defaults(self):
        config = ValmodConfig(min_length=10, max_length=20)
        assert config.top_k == 3
        assert config.profile_capacity == 16
        assert config.range_width == 11
        assert config.lengths == list(range(10, 21))

    def test_length_step_includes_max(self):
        config = ValmodConfig(min_length=10, max_length=21, length_step=4)
        assert config.lengths == [10, 14, 18, 21]

    def test_invalid_ranges(self):
        with pytest.raises(LengthRangeError):
            ValmodConfig(min_length=2, max_length=10)
        with pytest.raises(LengthRangeError):
            ValmodConfig(min_length=20, max_length=10)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            ValmodConfig(min_length=10, max_length=20, top_k=0)
        with pytest.raises(InvalidParameterError):
            ValmodConfig(min_length=10, max_length=20, profile_capacity=0)
        with pytest.raises(InvalidParameterError):
            ValmodConfig(min_length=10, max_length=20, exclusion_factor=0)
        with pytest.raises(InvalidParameterError):
            ValmodConfig(min_length=10, max_length=20, lower_bound_kind="nope")
        with pytest.raises(InvalidParameterError):
            ValmodConfig(min_length=10, max_length=20, length_step=0)

    def test_as_dict_round_trip(self):
        config = ValmodConfig(min_length=10, max_length=20, top_k=5)
        payload = config.as_dict()
        rebuilt = ValmodConfig(**payload)
        assert rebuilt == config


def _base_profile() -> MatrixProfile:
    distances = np.array([2.0, 1.0, 3.0, 0.5, 4.0])
    indices = np.array([3, 3, 4, 1, 0])
    return MatrixProfile(distances=distances, indices=indices, window=4, exclusion_radius=1)


class TestValmap:
    def test_from_base_profile(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        assert len(valmap) == 5
        np.testing.assert_allclose(valmap.normalized_profile, _base_profile().normalized_distances)
        assert set(valmap.length_profile.tolist()) == {4}
        assert valmap.min_length == 4 and valmap.max_length == 10

    def test_update_improves_entry(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        # raw distance 1.2 at length 9 -> normalized 0.4 < 0.5 (entry 0 had 2/2=1.0)
        assert valmap.update(0, 9, 4, 1.2)
        assert valmap.length_profile[0] == 9
        assert valmap.index_profile[0] == 4
        assert valmap.normalized_profile[0] == pytest.approx(0.4)

    def test_update_rejected_when_worse(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        assert not valmap.update(3, 9, 4, 3.0)  # normalized 1.0 > 0.25
        assert valmap.length_profile[3] == 4

    def test_update_out_of_range_raises(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        with pytest.raises(InvalidParameterError):
            valmap.update(99, 9, 4, 1.0)
        with pytest.raises(InvalidParameterError):
            valmap.update(0, 99, 4, 1.0)

    def test_update_from_pair_both_members(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        pair = MotifPair(distance=0.9, offset_a=0, offset_b=2, window=9)
        improved = valmap.update_from_pair(pair)
        assert improved == 2
        assert valmap.length_profile[0] == 9
        assert valmap.length_profile[2] == 9

    def test_update_from_pair_left_only(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        pair = MotifPair(distance=0.9, offset_a=0, offset_b=2, window=9)
        improved = valmap.update_from_pair(pair, both_members=False)
        assert improved == 1
        assert valmap.length_profile[2] == 4

    def test_checkpoints_and_snapshot(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=12)
        valmap.update(0, 6, 4, 1.0)
        valmap.update(0, 9, 4, 0.9)
        valmap.update(2, 11, 1, 1.0)
        assert len(valmap.checkpoints) == 3
        assert [cp.length for cp in valmap.checkpoints_up_to(9)] == [6, 9]

        snapshot = valmap.snapshot_at(6)
        assert snapshot.length_profile[0] == 6
        assert snapshot.length_profile[2] == 4
        assert len(snapshot.checkpoints) == 1

        original = valmap.snapshot_at(12)
        assert original.length_profile[0] == 9
        assert original.length_profile[2] == 11

    def test_snapshot_requires_tracking(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10, track_checkpoints=False)
        valmap.update(0, 9, 4, 1.0)
        assert valmap.checkpoints == []
        with pytest.raises(InvalidParameterError):
            valmap.snapshot_at(9)

    def test_best_entry_and_updated_positions(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        valmap.update(4, 10, 0, 0.1)
        offset, length, match, normalized = valmap.best_entry()
        assert offset == 4 and length == 10 and match == 0
        assert normalized == pytest.approx(0.1 / np.sqrt(10))
        assert valmap.updated_positions().tolist() == [4]

    def test_as_dict(self):
        valmap = Valmap.from_base_profile(_base_profile(), max_length=10)
        payload = valmap.as_dict()
        assert payload["min_length"] == 4
        assert len(payload["normalized_profile"]) == 5

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            Valmap(5, 10, 0)
        with pytest.raises(InvalidParameterError):
            Valmap(10, 5, 4)
