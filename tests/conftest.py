"""Shared fixtures for the test suite.

All fixtures are deliberately small (hundreds of points) so the full suite,
including the brute-force cross-checks, runs in well under a minute.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.generators import generate_ecg, generate_planted_motifs, generate_random_walk
from repro.series.dataseries import DataSeries


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A session-wide deterministic random generator."""
    return np.random.default_rng(20180610)


@pytest.fixture(scope="session")
def small_random_series() -> np.ndarray:
    """A small random-walk array (no DataSeries wrapper)."""
    generator = np.random.default_rng(7)
    return np.cumsum(generator.normal(size=300))


@pytest.fixture(scope="session")
def small_ecg_series() -> DataSeries:
    """A short synthetic ECG with a beat period of 60 points."""
    return generate_ecg(500, beat_period=60, random_state=1)


@pytest.fixture(scope="session")
def planted_series():
    """A 900-point series with one planted motif of length 48 (plus ground truth)."""
    return generate_planted_motifs(
        900, motif_lengths=(48,), copies_per_motif=2, distortion=0.01, random_state=3
    )


@pytest.fixture(scope="session")
def two_length_planted_series():
    """A series with planted motifs of two different lengths (plus ground truth)."""
    return generate_planted_motifs(
        1600,
        motif_lengths=(32, 80),
        copies_per_motif=2,
        distortion=0.03,
        random_state=9,
    )


@pytest.fixture(scope="session")
def random_walk_series() -> DataSeries:
    """A plain random walk (no planted structure)."""
    return generate_random_walk(400, random_state=5)
