"""Tests of the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.generators import (
    add_gaussian_noise,
    add_spikes,
    generate_astro,
    generate_ecg,
    generate_epg,
    generate_noise,
    generate_planted_motifs,
    generate_random_walk,
    generate_seismic,
    generate_smooth_random_walk,
)
from repro.series.dataseries import DataSeries
from repro.stats.distance import znorm_euclidean


class TestNoiseHelpers:
    def test_generate_noise_kinds(self):
        for kind in ("gaussian", "uniform", "laplace"):
            noise = generate_noise(100, kind=kind, random_state=0)
            assert noise.shape == (100,)

    def test_generate_noise_invalid(self):
        with pytest.raises(InvalidParameterError):
            generate_noise(0)
        with pytest.raises(InvalidParameterError):
            generate_noise(10, kind="pink")

    def test_add_gaussian_noise_zero_level_is_identity(self):
        values = np.arange(10, dtype=float)
        np.testing.assert_array_equal(add_gaussian_noise(values, 0.0), values)

    def test_add_spikes(self):
        values = np.zeros(100)
        spiked = add_spikes(values, num_spikes=3, magnitude=5.0, random_state=0)
        assert np.count_nonzero(spiked) == 3


class TestDeterminismAndShape:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: generate_ecg(600, beat_period=80, random_state=seed),
            lambda seed: generate_astro(800, transit_duration=60, transit_period=250, random_state=seed),
            lambda seed: generate_seismic(800, event_duration=60, random_state=seed),
            lambda seed: generate_epg(800, burst_duration=60, random_state=seed),
            lambda seed: generate_random_walk(500, random_state=seed),
            lambda seed: generate_smooth_random_walk(500, random_state=seed),
        ],
    )
    def test_deterministic_given_seed(self, factory):
        first = factory(7)
        second = factory(7)
        third = factory(8)
        np.testing.assert_array_equal(first.values, second.values)
        assert not np.array_equal(first.values, third.values)

    def test_all_return_dataseries_of_requested_length(self):
        assert isinstance(generate_ecg(300, beat_period=50, random_state=0), DataSeries)
        assert len(generate_ecg(300, beat_period=50, random_state=0)) == 300
        assert len(generate_astro(400, transit_duration=40, transit_period=150, random_state=0)) == 400
        assert len(generate_seismic(400, event_duration=40, random_state=0)) == 400
        assert len(generate_epg(400, burst_duration=40, random_state=0)) == 400


class TestEcg:
    def test_metadata_beats(self):
        series = generate_ecg(1000, beat_period=100, random_state=0)
        starts = series.metadata["beat_starts"]
        assert len(starts) >= 8
        assert starts == sorted(starts)
        assert series.metadata["beat_period"] == 100

    def test_beats_are_similar(self):
        series = generate_ecg(
            1200,
            beat_period=100,
            noise_level=0.0,
            period_jitter=0.0,
            amplitude_jitter=0.0,
            baseline_wander=0.0,
            random_state=0,
        )
        starts = series.metadata["beat_starts"]
        first = series.values[starts[1] : starts[1] + 100]
        second = series.values[starts[2] : starts[2] + 100]
        # two noiseless beats are near-identical under z-normalisation
        assert znorm_euclidean(first, second) < 0.5

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generate_ecg(100, beat_period=4)
        with pytest.raises(InvalidParameterError):
            generate_ecg(100, noise_level=-1.0)


class TestAstroSeismicEpg:
    def test_astro_metadata(self):
        series = generate_astro(2000, transit_duration=80, transit_period=400, random_state=1)
        starts = series.metadata["transit_starts"]
        durations = series.metadata["transit_durations"]
        assert len(starts) == len(durations) >= 3
        assert all(duration >= 8 for duration in durations)

    def test_astro_transits_dim_the_curve(self):
        series = generate_astro(
            2000, transit_duration=80, transit_period=400, noise_level=0.0, random_state=1
        )
        starts = series.metadata["transit_starts"]
        durations = series.metadata["transit_durations"]
        values = series.values
        in_transit = np.mean(
            [values[s : s + d].min() for s, d in zip(starts, durations) if s + d <= len(series)]
        )
        assert in_transit < values.mean()

    def test_astro_invalid_period(self):
        with pytest.raises(InvalidParameterError):
            generate_astro(500, transit_duration=100, transit_period=50)

    def test_seismic_events_have_larger_amplitude(self):
        series = generate_seismic(2000, event_duration=100, num_events=4, random_state=2)
        starts = series.metadata["event_starts"]
        values = series.values
        event_energy = np.mean([np.abs(values[s : s + 100]).max() for s in starts])
        assert event_energy > 2.0 * np.abs(values).std()

    def test_epg_metadata(self):
        series = generate_epg(2000, burst_duration=80, random_state=3)
        assert len(series.metadata["burst_starts"]) >= 3


class TestPlantedMotifs:
    def test_ground_truth_structure(self):
        series, truth = generate_planted_motifs(
            1500, motif_lengths=(40, 64), copies_per_motif=2, random_state=0
        )
        assert len(truth) == 2
        for planted in truth:
            assert len(planted.offsets) == 2
            for offset in planted.offsets:
                assert 0 <= offset <= len(series) - planted.length
        assert series.metadata["planted_motifs"][0]["length"] == 40

    def test_copies_are_similar(self):
        series, truth = generate_planted_motifs(
            1200, motif_lengths=(48,), copies_per_motif=2, distortion=0.0, random_state=1
        )
        planted = truth[0]
        a = series.values[planted.offsets[0] : planted.offsets[0] + planted.length]
        b = series.values[planted.offsets[1] : planted.offsets[1] + planted.length]
        assert znorm_euclidean(a, b) < 1.0

    def test_copies_do_not_overlap(self):
        _, truth = generate_planted_motifs(
            2000, motif_lengths=(50,), copies_per_motif=3, random_state=2
        )
        offsets = sorted(truth[0].offsets)
        assert all(b - a >= 50 for a, b in zip(offsets, offsets[1:]))

    def test_too_small_series_raises(self):
        with pytest.raises(InvalidParameterError):
            generate_planted_motifs(200, motif_lengths=(64,), copies_per_motif=3)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            generate_planted_motifs(1000, motif_lengths=(), copies_per_motif=2)
        with pytest.raises(InvalidParameterError):
            generate_planted_motifs(1000, motif_lengths=(4,), copies_per_motif=2)
        with pytest.raises(InvalidParameterError):
            generate_planted_motifs(1000, motif_lengths=(32,), copies_per_motif=1)
