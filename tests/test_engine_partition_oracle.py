"""Randomized-oracle property tests for the block-partitioned engine.

Strategy: draw ~50 random ``(generator, n, m, block_size)`` configurations
from a seeded generator and assert that the block-partitioned profile
matches the serial :func:`~repro.matrix_profile.stomp.stomp` sweep — the
library's certified oracle — to ``1e-8`` in distances and **exactly** in
indices.  A handful of small configurations are additionally cross-checked
against the definitional :func:`brute_force_matrix_profile`, and a subset
re-runs through a shared two-worker :class:`ProcessPoolExecutor`-backed
:class:`~repro.engine.executor.ParallelExecutor` to cover the pickling /
ordering path.

The random block sizes deliberately include the degenerate shapes the
merge must survive: blocks of a single row, blocks smaller than the
window, a single block covering everything, and block boundaries falling
inside an exclusion zone (block_size near the exclusion radius).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ParallelExecutor, partitioned_stomp, plan_blocks
from repro.engine.partition import default_block_size
from repro.exceptions import InvalidParameterError
from repro.generators import generate_planted_motifs, generate_random_walk
from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.stomp import stomp

DISTANCE_TOL = 1e-8
NUM_RANDOM_CONFIGS = 50


def _random_config(rng: np.random.Generator, index: int):
    """One random (series, window, block_size) oracle configuration."""
    n = int(rng.integers(120, 600))
    m = int(rng.integers(4, max(5, min(64, n // 3))))
    count = n - m + 1
    kind = ["random_walk", "planted"][index % 2]
    seed = int(rng.integers(0, 2**31))
    series = None
    if kind == "planted":
        motif_length = max(8, min(2 * m, n // 8))
        try:
            planted, _ = generate_planted_motifs(
                n,
                motif_lengths=(motif_length,),
                copies_per_motif=2,
                distortion=0.02,
                random_state=seed,
            )
            series = np.array(planted.values)
        except InvalidParameterError:
            series = None  # placement can fail for tight draws; fall back
    if series is None:
        series = np.array(generate_random_walk(n, random_state=seed).values)
    # Block sizes biased toward the tricky shapes: single-row blocks,
    # blocks below the window length, near the exclusion radius (so a
    # boundary straddles an exclusion zone), and whole-range blocks.
    radius = default_exclusion_radius(m)
    block_choices = [1, max(1, m // 2), radius, m, int(rng.integers(1, count + 1)), count, count + 50]
    block_size = int(block_choices[int(rng.integers(0, len(block_choices)))])
    return series, m, max(1, block_size)


@pytest.fixture(scope="module")
def configs():
    rng = np.random.default_rng(20180611)
    return [_random_config(rng, index) for index in range(NUM_RANDOM_CONFIGS)]


def _assert_matches(reference, candidate, context: str) -> None:
    assert np.array_equal(reference.indices, candidate.indices), context
    deviation = float(np.max(np.abs(reference.distances - candidate.distances)))
    assert deviation <= DISTANCE_TOL, f"{context}: max deviation {deviation}"


def test_blocked_matches_serial_oracle_over_random_configs(configs):
    for index, (series, window, block_size) in enumerate(configs):
        reference = stomp(series, window)
        blocked = partitioned_stomp(
            series, window, executor="serial", block_size=block_size
        )
        _assert_matches(
            reference,
            blocked,
            f"config {index}: n={series.size} m={window} block={block_size}",
        )


def test_blocked_matches_brute_force_on_small_configs(configs):
    small = [cfg for cfg in configs if cfg[0].size <= 220][:4]
    assert small, "the seeded draw should produce small configurations"
    for series, window, block_size in small:
        oracle = brute_force_matrix_profile(series, window)
        blocked = partitioned_stomp(
            series, window, executor="serial", block_size=block_size
        )
        assert np.array_equal(oracle.indices, blocked.indices)
        assert np.max(np.abs(oracle.distances - blocked.distances)) <= 1e-6


def test_parallel_matches_serial_oracle(configs):
    with ParallelExecutor(n_jobs=2) as executor:
        for series, window, block_size in configs[:8]:
            reference = stomp(series, window)
            parallel = partitioned_stomp(
                series, window, executor=executor, block_size=block_size
            )
            _assert_matches(
                reference,
                parallel,
                f"parallel: n={series.size} m={window} block={block_size}",
            )


def test_edge_blocks_explicitly():
    """The shapes called out in the issue, pinned (not left to the draw)."""
    series = np.array(generate_random_walk(300, random_state=11).values)
    window = 32
    count = series.size - window + 1
    radius = default_exclusion_radius(window)
    reference = stomp(series, window)
    for block_size in (1, window // 2, radius, radius + 1, count, count + 10):
        blocked = partitioned_stomp(
            series, window, executor="serial", block_size=block_size
        )
        _assert_matches(reference, blocked, f"edge block_size={block_size}")


def test_exclusion_zone_straddling_block_boundary():
    """A best match just across a block seam must survive the merge.

    With planted copies at known offsets and a block boundary placed
    between a query row and its (nearby but non-trivial) match, the
    blocked result must still find the identical match.
    """
    series, truth = generate_planted_motifs(
        400, motif_lengths=(24,), copies_per_motif=2, distortion=0.01, random_state=5
    )
    values = np.array(series.values)
    window = 24
    reference = stomp(values, window)
    # Boundaries at and around the planted offsets, including mid-exclusion-zone.
    planted = truth[0].offsets[0]
    for block_size in (max(1, planted - 3), planted, planted + 5):
        blocked = partitioned_stomp(
            values, window, executor="serial", block_size=block_size
        )
        _assert_matches(reference, blocked, f"straddle block_size={block_size}")


def test_plan_blocks_partitions_exactly():
    for count, block_size in ((1, 1), (10, 3), (100, 100), (100, 101), (7, 1)):
        blocks = plan_blocks(count, block_size)
        rows = [row for start, stop in blocks for row in range(start, stop)]
        assert rows == list(range(count))
    with pytest.raises(InvalidParameterError):
        plan_blocks(0, 4)
    with pytest.raises(InvalidParameterError):
        plan_blocks(4, 0)


def test_default_block_size_bounds():
    assert default_block_size(10, 4) >= 1
    for count, jobs in ((100, 1), (10**5, 8), (8192, 2), (10**6, 1)):
        size = default_block_size(count, jobs)
        assert 1 <= size <= count
        # Four blocks per worker (load balancing) unless that would
        # produce seed-dominated slivers.
        assert len(plan_blocks(count, size)) <= max(4 * jobs, count // 64 + 1)


def test_engine_knob_on_stomp_rejects_unknown_engine():
    series = np.array(generate_random_walk(120, random_state=1).values)
    with pytest.raises(InvalidParameterError):
        stomp(series, 16, engine="gpu")


def test_profile_callback_runs_in_row_order_with_any_executor():
    """Callbacks are order-dependent; the engine must serialise for them."""
    series = np.array(generate_random_walk(200, random_state=3).values)
    seen: list[int] = []
    profile = partitioned_stomp(
        series,
        24,
        executor=ParallelExecutor(n_jobs=2),
        block_size=40,
        profile_callback=lambda offset, qt, distances: seen.append(offset),
    )
    assert seen == list(range(len(profile)))
    reference = stomp(series, 24)
    _assert_matches(reference, profile, "callback path")
