"""Tests for JSON persistence of profiles, VALMAP and results."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.valmod import valmod
from repro.exceptions import SerializationError
from repro.io.serialization import (
    load_matrix_profile,
    load_result,
    load_valmap,
    save_matrix_profile,
    save_result,
    save_valmap,
)
from repro.matrix_profile.stomp import stomp


@pytest.fixture(scope="module")
def small_result():
    rng = np.random.default_rng(0)
    values = np.cumsum(rng.normal(size=250))
    return values, valmod(values, 16, 24, top_k=2)


class TestMatrixProfileRoundTrip:
    def test_round_trip(self, small_result, tmp_path):
        values, _ = small_result
        profile = stomp(values, 16)
        path = save_matrix_profile(profile, tmp_path / "profile.json")
        loaded = load_matrix_profile(path)
        np.testing.assert_allclose(loaded.distances, profile.distances)
        np.testing.assert_array_equal(loaded.indices, profile.indices)
        assert loaded.window == profile.window
        assert loaded.exclusion_radius == profile.exclusion_radius

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something_else"}))
        with pytest.raises(SerializationError):
            load_matrix_profile(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_matrix_profile(tmp_path / "missing.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not valid json")
        with pytest.raises(SerializationError):
            load_matrix_profile(path)


class TestValmapRoundTrip:
    def test_round_trip_including_checkpoints(self, small_result, tmp_path):
        _, result = small_result
        path = save_valmap(result.valmap, tmp_path / "valmap.json")
        loaded = load_valmap(path)
        np.testing.assert_allclose(
            loaded.normalized_profile, result.valmap.normalized_profile
        )
        np.testing.assert_array_equal(loaded.index_profile, result.valmap.index_profile)
        np.testing.assert_array_equal(loaded.length_profile, result.valmap.length_profile)
        assert len(loaded.checkpoints) == len(result.valmap.checkpoints)
        if loaded.checkpoints:
            assert loaded.checkpoints[0] == result.valmap.checkpoints[0]

    def test_snapshot_still_works_after_reload(self, small_result, tmp_path):
        _, result = small_result
        path = save_valmap(result.valmap, tmp_path / "valmap.json")
        loaded = load_valmap(path)
        snapshot = loaded.snapshot_at(result.config.min_length)
        assert set(snapshot.length_profile.tolist()) == {result.config.min_length}

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "not_valmap.json"
        path.write_text(json.dumps({"kind": "matrix_profile"}))
        with pytest.raises(SerializationError):
            load_valmap(path)


class TestResultRoundTrip:
    def test_round_trip(self, small_result, tmp_path):
        _, result = small_result
        path = save_result(result, tmp_path / "result.json")
        payload = load_result(path)
        assert payload["series_length"] == result.series_length
        assert payload["config"]["min_length"] == result.config.min_length
        assert payload["lengths"] == result.lengths
        best = result.best_motif()
        lengths_payload = payload["length_results"][str(best.window)]["motifs"]
        assert any(
            entry["offset_a"] == best.offset_a and entry["offset_b"] == best.offset_b
            for entry in lengths_payload
        )

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "foo.json"
        path.write_text(json.dumps({"kind": "valmap"}))
        with pytest.raises(SerializationError):
            load_result(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(SerializationError):
            load_result(path)
