"""Unit tests for repro.stats.znorm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.stats.znorm import is_constant, znormalize, znormalize_subsequences


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        values = np.random.default_rng(0).normal(3.0, 2.0, size=100)
        normalized = znormalize(values)
        assert normalized.mean() == pytest.approx(0.0, abs=1e-12)
        assert normalized.std() == pytest.approx(1.0, rel=1e-12)

    def test_constant_maps_to_zeros(self):
        np.testing.assert_array_equal(znormalize(np.full(10, 4.2)), np.zeros(10))

    def test_rejects_empty(self):
        with pytest.raises(InvalidSeriesError):
            znormalize(np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(InvalidSeriesError):
            znormalize(np.array([1.0, np.nan, 2.0]))

    def test_rejects_2d(self):
        with pytest.raises(InvalidSeriesError):
            znormalize(np.ones((2, 2)))

    def test_scale_and_shift_invariance(self):
        values = np.random.default_rng(1).normal(size=50)
        np.testing.assert_allclose(
            znormalize(values), znormalize(3.0 * values + 7.0), atol=1e-10
        )

    @settings(max_examples=50, deadline=None)
    @given(
        values=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=50),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, width=64),
        )
    )
    def test_property_output_is_normalized_or_zero(self, values):
        normalized = znormalize(values)
        if np.allclose(normalized, 0.0):
            return
        assert normalized.mean() == pytest.approx(0.0, abs=1e-8)
        assert normalized.std() == pytest.approx(1.0, rel=1e-6)


class TestIsConstant:
    def test_detects_constant(self):
        assert is_constant(np.full(5, 3.3))

    def test_detects_non_constant(self):
        assert not is_constant(np.array([1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(InvalidSeriesError):
            is_constant(np.array([]))


class TestZnormalizeSubsequences:
    def test_shape(self):
        values = np.arange(20, dtype=float)
        matrix = znormalize_subsequences(values, 5)
        assert matrix.shape == (16, 5)

    def test_rows_match_individual_normalization(self):
        values = np.random.default_rng(2).normal(size=30)
        matrix = znormalize_subsequences(values, 7)
        for i in (0, 5, 23):
            np.testing.assert_allclose(matrix[i], znormalize(values[i : i + 7]), atol=1e-10)

    def test_constant_rows_are_zero(self):
        values = np.concatenate([np.full(10, 2.0), np.random.default_rng(3).normal(size=10)])
        matrix = znormalize_subsequences(values, 5)
        np.testing.assert_array_equal(matrix[0], np.zeros(5))

    def test_invalid_window(self):
        with pytest.raises(InvalidParameterError):
            znormalize_subsequences(np.arange(10, dtype=float), 0)
        with pytest.raises(InvalidParameterError):
            znormalize_subsequences(np.arange(10, dtype=float), 11)
