"""Registry dispatch: every algorithm reachable, errors list valid keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import (
    AlgorithmSpec,
    algorithm_keys,
    capabilities,
    registered_kinds,
    resolve_algorithm,
)
from repro.api.requests import AnalysisRequest
from repro.api.session import analyze
from repro.baselines.brute_force_range import brute_force_range
from repro.baselines.moen import moen
from repro.baselines.quick_motif import quick_motif_range
from repro.baselines.stomp_range import stomp_range
from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.scrimp import scrimp, scrimp_pp
from repro.matrix_profile.stamp import stamp
from repro.matrix_profile.stomp import stomp


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(5)
    return np.cumsum(rng.standard_normal(300))


@pytest.fixture()
def session(series):
    return analyze(series)


class TestResolution:
    def test_all_expected_kinds_registered(self):
        assert registered_kinds() == [
            "ab_join",
            "discords",
            "matrix_profile",
            "motifs",
            "mpdist",
            "pan_profile",
        ]

    def test_matrix_profile_keys(self):
        assert algorithm_keys("matrix_profile") == [
            "brute",
            "scrimp",
            "scrimp++",
            "stamp",
            "stomp",
        ]

    def test_motif_keys(self):
        assert algorithm_keys("motifs") == [
            "brute",
            "moen",
            "quick_motif",
            "stomp_range",
            "valmod",
        ]

    def test_unknown_kind_lists_kinds(self):
        with pytest.raises(InvalidParameterError, match="available kinds.*matrix_profile"):
            resolve_algorithm("sorcery")

    def test_unknown_algo_lists_valid_keys(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            resolve_algorithm("matrix_profile", "gpu")
        message = str(excinfo.value)
        for key in algorithm_keys("matrix_profile"):
            assert key in message

    def test_unknown_motif_method_lists_valid_keys(self, session):
        with pytest.raises(InvalidParameterError) as excinfo:
            session.motifs(16, 20, method="magic")
        message = str(excinfo.value)
        for key in algorithm_keys("motifs"):
            assert key in message

    def test_defaults(self):
        assert resolve_algorithm("matrix_profile").key == "stomp"
        assert resolve_algorithm("motifs").key == "valmod"

    def test_aliases_resolve_to_canonical_keys(self):
        assert resolve_algorithm("motifs", "stomp-range").key == "stomp_range"
        assert resolve_algorithm("motifs", "quickmotif").key == "quick_motif"
        assert resolve_algorithm("matrix_profile", "brute-force").key == "brute"
        assert resolve_algorithm("matrix_profile", "scrimp_pp").key == "scrimp++"

    def test_duplicate_registration_rejected(self):
        spec = resolve_algorithm("matrix_profile", "stomp")
        from repro.api import registry

        with pytest.raises(InvalidParameterError):
            registry.register(
                AlgorithmSpec(
                    kind=spec.kind,
                    key=spec.key,
                    runner=spec.runner,
                    description="dup",
                )
            )

    def test_capabilities_cover_every_spec(self):
        table = capabilities()
        assert len(table) == 14
        stomp_row = next(
            row for row in table if row["kind"] == "matrix_profile" and row["key"] == "stomp"
        )
        assert stomp_row["engine_aware"] and stomp_row["default"]


class TestDispatchMatchesDirectCalls:
    """Every registered algorithm, driven through one AnalysisRequest path."""

    @pytest.mark.parametrize(
        "algo, direct",
        [
            ("stomp", lambda s, w: stomp(s, w)),
            ("scrimp", lambda s, w: scrimp(s, w, random_state=0)),
            ("scrimp++", lambda s, w: scrimp_pp(s, w, random_state=0)),
            ("stamp", lambda s, w: stamp(s, w)),
            ("brute", lambda s, w: brute_force_matrix_profile(s, w)),
        ],
    )
    def test_matrix_profile_algorithms(self, series, session, algo, direct):
        options = {"random_state": 0} if "scrimp" in algo else {}
        request = AnalysisRequest(
            kind="matrix_profile", algo=algo, params={"window": 24, **options}
        )
        dispatched = session.run(request).profile()
        reference = direct(series, 24)
        assert np.array_equal(dispatched.indices, reference.indices)
        np.testing.assert_allclose(
            dispatched.distances, reference.distances, atol=1e-8
        )

    @pytest.mark.parametrize(
        "method, direct",
        [
            ("valmod", lambda s: valmod(s, 16, 20, top_k=1)),
            ("stomp_range", lambda s: stomp_range(s, 16, 20, top_k=1)),
            ("moen", lambda s: moen(s, 16, 20)),
            ("quick_motif", lambda s: quick_motif_range(s, 16, 20)),
            ("brute", lambda s: brute_force_range(s, 16, 20, top_k=1)),
        ],
    )
    def test_motif_algorithms(self, series, session, method, direct):
        params = {"min_length": 16, "max_length": 20}
        if method in ("valmod", "stomp_range", "brute"):
            params["top_k"] = 1
        request = AnalysisRequest(kind="motifs", algo=method, params=params)
        dispatched = session.run(request)
        reference = direct(series)
        ref_best = (
            reference.best_motif()
            if hasattr(reference, "best_motif")
            else reference.best_overall()
        )
        best = dispatched.best_motif()
        assert best.offsets == ref_best.offsets
        assert best.distance == pytest.approx(ref_best.distance, abs=1e-9)
