"""Unit tests for repro.stats.fft (sliding dot products)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import InvalidParameterError
from repro.stats.fft import sliding_dot_product, sliding_dot_product_naive


class TestNaive:
    def test_simple_case(self):
        series = np.array([1.0, 2.0, 3.0, 4.0])
        query = np.array([1.0, 1.0])
        np.testing.assert_allclose(
            sliding_dot_product_naive(query, series), np.array([3.0, 5.0, 7.0])
        )

    def test_query_equal_to_series(self):
        series = np.array([1.0, -2.0, 3.0])
        result = sliding_dot_product_naive(series, series)
        assert result.shape == (1,)
        assert result[0] == pytest.approx(float(series @ series))

    def test_rejects_long_query(self):
        with pytest.raises(InvalidParameterError):
            sliding_dot_product_naive(np.ones(5), np.ones(3))

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            sliding_dot_product_naive(np.array([]), np.ones(3))

    def test_rejects_2d(self):
        with pytest.raises(InvalidParameterError):
            sliding_dot_product_naive(np.ones((2, 2)), np.ones(5))


class TestFFT:
    def test_matches_naive_long_query(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=500)
        query = rng.normal(size=64)
        np.testing.assert_allclose(
            sliding_dot_product(query, series),
            sliding_dot_product_naive(query, series),
            atol=1e-8,
        )

    def test_matches_naive_short_query(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=100)
        query = rng.normal(size=4)  # below the naive cutoff
        np.testing.assert_allclose(
            sliding_dot_product(query, series),
            sliding_dot_product_naive(query, series),
            atol=1e-10,
        )

    def test_output_length(self):
        result = sliding_dot_product(np.ones(30), np.ones(100))
        assert result.shape == (71,)

    def test_query_longer_than_series_raises(self):
        with pytest.raises(InvalidParameterError):
            sliding_dot_product(np.ones(11), np.ones(10))

    @settings(max_examples=30, deadline=None)
    @given(
        series=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=20, max_value=120),
            elements=st.floats(min_value=-100, max_value=100, allow_nan=False, width=64),
        ),
        query_length=st.integers(min_value=2, max_value=40),
    )
    def test_property_fft_equals_naive(self, series, query_length):
        query_length = min(query_length, series.size)
        query = series[:query_length]
        np.testing.assert_allclose(
            sliding_dot_product(query, series),
            sliding_dot_product_naive(query, series),
            atol=1e-6 * max(1.0, np.abs(series).max() ** 2 * query_length),
        )
