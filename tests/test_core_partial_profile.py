"""Tests of the partial-profile store (VALMOD's cross-length memory)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partial_profile import PartialProfileStore
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.stomp import stomp
from repro.stats.sliding import SlidingStats


def _build_store(values: np.ndarray, base_length: int, capacity: int) -> PartialProfileStore:
    stats = SlidingStats(values)
    store = PartialProfileStore(values, stats, base_length, capacity)
    stomp(values, base_length, stats=stats, ingest_store=store)
    return store


class TestConstruction:
    def test_capacity_must_be_positive(self, small_random_series):
        stats = SlidingStats(small_random_series)
        with pytest.raises(InvalidParameterError):
            PartialProfileStore(small_random_series, stats, 16, 0)

    def test_raw_ingest_shim_fails_loudly(self, small_random_series):
        """The old raw-value entry point must refuse with an explanation,
        not silently corrupt the now-centered store."""
        stats = SlidingStats(small_random_series)
        store = PartialProfileStore(small_random_series, stats, 16, 4)
        with pytest.raises(InvalidParameterError, match="mean-centered"):
            store.ingest_base_profile(0, np.zeros(store.num_profiles))

    def test_double_ingest_raises(self, small_random_series):
        stats = SlidingStats(small_random_series)
        store = PartialProfileStore(small_random_series, stats, 16, 4)
        qt = np.zeros(store.num_profiles)
        store.ingest_centered_profile(0, qt)
        with pytest.raises(InvalidParameterError):
            store.ingest_centered_profile(0, qt)

    def test_wrong_profile_length_raises(self, small_random_series):
        stats = SlidingStats(small_random_series)
        store = PartialProfileStore(small_random_series, stats, 16, 4)
        with pytest.raises(InvalidParameterError):
            store.ingest_centered_profile(0, np.zeros(5))

    def test_properties(self, small_random_series):
        store = _build_store(small_random_series, 16, 8)
        assert store.base_length == 16
        assert store.capacity == 8
        assert store.num_profiles == small_random_series.size - 16 + 1
        assert store.current_length == 16


class TestAdvance:
    def test_cannot_shrink(self, small_random_series):
        store = _build_store(small_random_series, 16, 4)
        store.advance_to(20)
        with pytest.raises(InvalidParameterError):
            store.advance_to(18)

    def test_cannot_exceed_series(self, small_random_series):
        store = _build_store(small_random_series, 16, 4)
        with pytest.raises(InvalidParameterError):
            store.advance_to(small_random_series.size + 1)

    def test_evaluate_below_base_raises(self, small_random_series):
        store = _build_store(small_random_series, 16, 4)
        with pytest.raises(InvalidParameterError):
            store.evaluate(10)

    @pytest.mark.parametrize(
        "size,base,capacity", [(200, 16, 4), (200, 16, 32), (257, 24, 8)]
    )
    def test_blocked_advance_is_bitwise_stepwise(self, size, base, capacity):
        """The blocked multi-step tail update must be *bit-for-bit* equal to
        the per-step reference loop — including multi-stage resumes and an
        advance to the full series length."""
        values = np.cumsum(np.random.default_rng(size + capacity).normal(size=size))
        blocked = _build_store(values, base, capacity)
        stepwise = _build_store(values, base, capacity)
        targets = [base + 1, base + 7, base + 40, size]
        for target in targets:
            blocked.advance_to(target)
            stepwise._advance_to_stepwise(target)
            assert blocked.current_length == stepwise.current_length == target
            assert (
                blocked._dot_products.tobytes() == stepwise._dot_products.tobytes()
            ), f"dot products diverged advancing to {target}"
        evaluated = blocked.evaluate(size)
        reference = stepwise.evaluate(size)
        np.testing.assert_array_equal(evaluated.min_distances, reference.min_distances)
        np.testing.assert_array_equal(evaluated.min_indices, reference.min_indices)
        np.testing.assert_array_equal(evaluated.valid, reference.valid)


class TestEvaluationCorrectness:
    @pytest.mark.parametrize("capacity", [2, 8, 32])
    def test_valid_profiles_have_exact_minima(self, small_random_series, capacity):
        """For every *valid* profile, minDist must equal the true profile minimum."""
        values = small_random_series
        base = 16
        store = _build_store(values, base, capacity)
        for length in (17, 20, 28):
            evaluation = store.evaluate(length)
            oracle = brute_force_matrix_profile(
                values, length, exclusion_radius=default_exclusion_radius(length)
            )
            valid = np.flatnonzero(evaluation.valid)
            if capacity >= 8:
                # with a reasonable capacity the vast majority of profiles
                # just above the base length should stay valid
                assert valid.size > 0
            np.testing.assert_allclose(
                evaluation.min_distances[valid], oracle.distances[valid], atol=1e-5
            )

    @pytest.mark.parametrize("capacity", [2, 8])
    def test_max_lb_bounds_true_minimum_of_non_valid_profiles(
        self, small_random_series, capacity
    ):
        """For *non-valid* profiles maxLB is a certified floor on the true minimum.

        (For valid profiles the retained minimum may legitimately sit below
        maxLB — that is precisely what makes them valid.)
        """
        values = small_random_series
        store = _build_store(values, 16, capacity)
        for length in (18, 24, 32):
            evaluation = store.evaluate(length)
            oracle = brute_force_matrix_profile(
                values, length, exclusion_radius=default_exclusion_radius(length)
            )
            non_valid = ~evaluation.valid & np.isfinite(oracle.distances)
            assert np.all(
                evaluation.max_lower_bounds[non_valid]
                <= oracle.distances[non_valid] + 1e-6
            )

    def test_min_distances_are_upper_bounds(self, small_random_series):
        """minDist (from retained entries) can never be below the true minimum."""
        values = small_random_series
        store = _build_store(values, 16, 4)
        for length in (18, 26):
            evaluation = store.evaluate(length)
            oracle = brute_force_matrix_profile(
                values, length, exclusion_radius=default_exclusion_radius(length)
            )
            finite = np.isfinite(evaluation.min_distances) & np.isfinite(oracle.distances)
            assert np.all(
                evaluation.min_distances[finite] >= oracle.distances[finite] - 1e-6
            )

    def test_larger_capacity_never_reduces_validity(self, small_random_series):
        small = _build_store(small_random_series, 16, 2)
        large = _build_store(small_random_series, 16, 24)
        evaluation_small = small.evaluate(28)
        evaluation_large = large.evaluate(28)
        assert evaluation_large.num_valid >= evaluation_small.num_valid

    def test_evaluation_statistics_consistency(self, small_random_series):
        store = _build_store(small_random_series, 16, 8)
        evaluation = store.evaluate(22)
        assert evaluation.num_valid + evaluation.num_non_valid == evaluation.valid.size
        if evaluation.num_non_valid:
            assert np.isfinite(evaluation.min_lb_abs)
        else:
            assert evaluation.min_lb_abs == np.inf

    def test_flat_series_never_prunes_incorrectly(self):
        """A series with constant stretches must still produce exact valid minima."""
        values = np.concatenate(
            [np.zeros(40), np.sin(np.linspace(0, 20, 150)), np.zeros(40), np.ones(30)]
        )
        store = _build_store(values, 12, 4)
        for length in (14, 18):
            evaluation = store.evaluate(length)
            oracle = brute_force_matrix_profile(
                values, length, exclusion_radius=default_exclusion_radius(length)
            )
            valid = np.flatnonzero(evaluation.valid)
            np.testing.assert_allclose(
                evaluation.min_distances[valid], oracle.distances[valid], atol=1e-5
            )
