"""Tests for the baseline algorithms and their shared result container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import RangeDiscoveryResult
from repro.baselines.brute_force_range import brute_force_range
from repro.baselines.moen import moen
from repro.baselines.quick_motif import quick_motif, quick_motif_range
from repro.baselines.stomp_range import stomp_range
from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.profile import MotifPair
from repro.matrix_profile.stomp import stomp


class TestRangeDiscoveryResult:
    def _result(self) -> RangeDiscoveryResult:
        pairs = {
            10: [MotifPair(distance=2.0, offset_a=0, offset_b=50, window=10)],
            11: [MotifPair(distance=1.0, offset_a=5, offset_b=70, window=11)],
        }
        return RangeDiscoveryResult(algorithm="toy", motifs_by_length=pairs, elapsed_seconds=0.5)

    def test_lengths_sorted(self):
        assert self._result().lengths == [10, 11]

    def test_motifs_at_and_best_at(self):
        result = self._result()
        assert result.best_at(11).distance == 1.0
        with pytest.raises(InvalidParameterError):
            result.motifs_at(99)

    def test_best_overall_uses_normalized_distance(self):
        result = self._result()
        assert result.best_overall().window == 11

    def test_best_at_empty_raises(self):
        result = RangeDiscoveryResult(
            algorithm="toy", motifs_by_length={10: []}, elapsed_seconds=0.0
        )
        with pytest.raises(EmptyResultError):
            result.best_at(10)
        with pytest.raises(EmptyResultError):
            result.best_overall()

    def test_as_dict(self):
        payload = self._result().as_dict()
        assert payload["algorithm"] == "toy"
        assert "10" in payload["motifs_by_length"]


class TestStompRangeAndBruteForce:
    def test_agree_with_each_other(self, small_random_series):
        fast = stomp_range(small_random_series, 16, 24, top_k=1)
        slow = brute_force_range(small_random_series, 16, 24, top_k=1)
        assert fast.lengths == slow.lengths
        for length in fast.lengths:
            assert fast.best_at(length).distance == pytest.approx(
                slow.best_at(length).distance, abs=1e-6
            )

    def test_length_step_includes_max(self, small_random_series):
        result = stomp_range(small_random_series, 16, 25, top_k=1, length_step=4)
        assert result.lengths == [16, 20, 24, 25]

    def test_reports_elapsed_and_extra(self, small_random_series):
        result = stomp_range(small_random_series, 16, 18, top_k=1)
        assert result.elapsed_seconds > 0
        assert result.extra["lengths_evaluated"] == 3


class TestMoen:
    def test_exact_per_length(self, small_random_series):
        result = moen(small_random_series, 16, 28)
        oracle = stomp_range(small_random_series, 16, 28, top_k=1)
        for length in oracle.lengths:
            assert result.best_at(length).distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )

    def test_exact_on_ecg(self, small_ecg_series):
        result = moen(small_ecg_series, 24, 36)
        oracle = stomp_range(small_ecg_series, 24, 36, top_k=1)
        for length in oracle.lengths:
            assert result.best_at(length).distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )

    def test_exact_with_flat_regions(self):
        values = np.concatenate([np.zeros(40), np.sin(np.linspace(0, 15, 150)), np.zeros(30)])
        result = moen(values, 12, 20)
        oracle = stomp_range(values, 12, 20, top_k=1)
        for length in oracle.lengths:
            assert result.best_at(length).distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )

    def test_reports_pruning_counters(self, small_random_series):
        result = moen(small_random_series, 16, 24)
        assert result.extra["profiles_computed"] > 0
        assert result.extra["profiles_pruned"] >= 0

    @pytest.mark.parametrize("kind", ["tight", "paper"])
    def test_both_bounds_give_exact_results(self, small_random_series, kind):
        result = moen(small_random_series, 16, 20, lower_bound_kind=kind)
        oracle = stomp_range(small_random_series, 16, 20, top_k=1)
        for length in oracle.lengths:
            assert result.best_at(length).distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )


class TestQuickMotif:
    def test_matches_stomp_best_pair(self, small_random_series):
        for window in (16, 25):
            expected = stomp(small_random_series, window).best()
            observed = quick_motif(small_random_series, window)
            assert observed.distance == pytest.approx(expected.distance, abs=1e-6)

    def test_matches_stomp_on_ecg(self, small_ecg_series):
        window = 30
        expected = stomp(small_ecg_series, window).best()
        observed = quick_motif(small_ecg_series, window)
        assert observed.distance == pytest.approx(expected.distance, abs=1e-6)

    def test_different_segment_counts_agree(self, small_random_series):
        window = 20
        reference = quick_motif(small_random_series, window, segments=4)
        finer = quick_motif(small_random_series, window, segments=16)
        assert reference.distance == pytest.approx(finer.distance, abs=1e-6)

    def test_group_size_does_not_change_result(self, small_random_series):
        window = 20
        coarse = quick_motif(small_random_series, window, group_size=64)
        fine = quick_motif(small_random_series, window, group_size=8)
        assert coarse.distance == pytest.approx(fine.distance, abs=1e-6)

    def test_range_wrapper(self, small_random_series):
        result = quick_motif_range(small_random_series, 16, 20, length_step=2)
        oracle = stomp_range(small_random_series, 16, 20, top_k=1, length_step=2)
        assert result.lengths == oracle.lengths
        for length in result.lengths:
            assert result.best_at(length).distance == pytest.approx(
                oracle.best_at(length).distance, abs=1e-6
            )

    def test_invalid_parameters(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            quick_motif(small_random_series, 16, segments=0)
        with pytest.raises(InvalidParameterError):
            quick_motif(small_random_series, 16, group_size=0)
