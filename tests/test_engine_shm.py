"""Shared-memory series transport: round-trip, fallback, engine wiring.

The acceptance criterion: :class:`~repro.engine.shm.SharedSeriesBuffer`
round-trips the series without per-task pickling when shared memory is
available, and falls back cleanly when it is not — both paths under test.
The fallback is forced deterministically by monkeypatching the module's
``shared_memory`` binding to ``None``, so the tests do not depend on the
host actually lacking ``/dev/shm``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.engine import shm as shm_module
from repro.engine.executor import ParallelExecutor
from repro.engine.partition import _block_task, partitioned_stomp
from repro.engine.shm import (
    SharedArraysHandle,
    SharedSeriesBuffer,
    attach_arrays,
    shared_memory_available,
)
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.stomp import stomp
from repro.stats.sliding import SlidingStats

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory missing from this interpreter",
)


def _values(n: int = 400, seed: int = 9) -> np.ndarray:
    return np.cumsum(np.random.default_rng(seed).normal(size=n))


class TestBuffer:
    def test_round_trip_multiple_arrays(self):
        arrays = {
            "values": np.arange(64, dtype=np.float64),
            "means": np.linspace(-3, 3, 17),
            "stds": np.full(5, 2.5),
        }
        buffer = SharedSeriesBuffer.create(arrays)
        if buffer is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        try:
            attached = attach_arrays(buffer.handle)
            assert set(attached) == set(arrays)
            for key, original in arrays.items():
                np.testing.assert_array_equal(attached[key], original)
                assert not attached[key].flags.writeable
        finally:
            buffer.close()
            buffer.unlink()

    def test_handle_is_compact(self):
        """The whole point: the payload carries a name + offsets, not data."""
        import pickle

        buffer = SharedSeriesBuffer.create({"values": np.zeros(100_000)})
        if buffer is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        try:
            assert isinstance(buffer.handle, SharedArraysHandle)
            assert len(pickle.dumps(buffer.handle)) < 1024
            assert buffer.handle.total_elements == 100_000
        finally:
            buffer.close()
            buffer.unlink()

    def test_attach_is_cached_per_segment(self):
        buffer = SharedSeriesBuffer.create({"x": np.arange(8.0)})
        if buffer is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        try:
            first = attach_arrays(buffer.handle)
            second = attach_arrays(buffer.handle)
            assert first["x"] is second["x"]
        finally:
            buffer.close()
            buffer.unlink()

    def test_evicted_arrays_stay_valid(self, monkeypatch):
        """Arrays a caller holds must survive cache eviction — they are
        private copies with no lifetime coupling to the segment.  (The
        zero-copy alternative fails this test with silent aliasing:
        ``SharedMemory.__del__`` closes the mapping on collection and the
        held view then reads whatever lands in the recycled pages.)"""
        # Two 3-element segments (24 bytes each) overflow a 32-byte cap, so
        # the second attach must evict the first.
        monkeypatch.setattr(shm_module, "ATTACH_CACHE_MAX_BYTES", 32)
        first = SharedSeriesBuffer.create({"x": np.array([1.0, 2.0, 3.0])})
        if first is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        extras = []
        try:
            held = attach_arrays(first.handle)["x"]
            extra = SharedSeriesBuffer.create({"x": np.full(3, 7.0)})
            assert extra is not None
            extras.append(extra)
            attach_arrays(extra.handle)
            assert first.handle.shm_name not in shm_module._ATTACH_CACHE
            np.testing.assert_array_equal(held, [1.0, 2.0, 3.0])
        finally:
            for buffer in (first, *extras):
                buffer.close()
                buffer.unlink()

    def test_attach_cache_is_byte_capped(self, monkeypatch):
        """The worker-side cache evicts oldest-first once the byte budget is
        exceeded, but always retains the entry being inserted."""
        monkeypatch.setattr(shm_module, "ATTACH_CACHE_MAX_BYTES", 200)
        buffers = []
        try:
            for index in range(4):
                buffer = SharedSeriesBuffer.create({"x": np.full(10, float(index))})
                if buffer is None:
                    pytest.skip("platform refuses shared-memory segments at runtime")
                buffers.append(buffer)
                attach_arrays(buffer.handle)
            cached = [b.handle.shm_name in shm_module._ATTACH_CACHE for b in buffers]
            # 80 bytes per entry, 200-byte cap: at most two entries stay.
            assert cached[-1], "the newest entry must always be cached"
            assert sum(shm_module._ATTACH_CACHE_BYTES.values()) <= 200
            assert cached == [False, False, True, True]
        finally:
            for buffer in buffers:
                buffer.close()
                buffer.unlink()

    def test_rejects_non_1d_arrays(self):
        with pytest.raises(InvalidParameterError, match="1-D"):
            SharedSeriesBuffer.create({"bad": np.zeros((3, 3))})

    def test_rejects_empty_mapping(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            SharedSeriesBuffer.create({})

    def test_create_returns_none_when_module_missing(self, monkeypatch):
        monkeypatch.setattr(shm_module, "_shared_memory", None)
        assert SharedSeriesBuffer.create({"x": np.arange(4.0)}) is None
        assert not shared_memory_available()
        with pytest.raises(InvalidParameterError, match="unavailable"):
            attach_arrays(SharedArraysHandle(shm_name="ghost", fields=(("x", 0, 4),)))


class TestEngineTransport:
    def test_block_task_accepts_handle_and_arrays_identically(self):
        """One block computed from a shared-memory handle and from plain
        arrays must be bit-identical — transport must not change math."""
        values = _values()
        stats = SlidingStats(values)
        window = 24
        sweep = stats.centered_values
        means, stds = stats.centered_mean_std(window)
        from repro.stats.fft import sliding_dot_product

        first_row = sliding_dot_product(sweep[:window], sweep)
        arrays = {
            "values": sweep,
            "means": means,
            "stds": stds,
            "first_row_dots": first_row,
        }
        direct = _block_task(
            ((sweep, means, stds, first_row), window, 6, 10, 60, 512, (4, 4, "tight"), None)
        )
        buffer = SharedSeriesBuffer.create(arrays)
        if buffer is None:
            pytest.skip("platform refuses shared-memory segments at runtime")
        try:
            via_shm = _block_task(
                (buffer.handle, window, 6, 10, 60, 512, (4, 4, "tight"), None)
            )
        finally:
            buffer.close()
            buffer.unlink()
        np.testing.assert_array_equal(direct[0], via_shm[0])
        np.testing.assert_array_equal(direct[1], via_shm[1])
        for key, value in direct[2].items():
            if isinstance(value, np.ndarray):
                np.testing.assert_array_equal(value, via_shm[2][key], err_msg=key)
            else:
                assert value == via_shm[2][key], key

    def test_degraded_pool_skips_shared_memory(self, monkeypatch):
        """An in-process (degraded) pool must not set up shared memory at
        all: there is no process boundary, and the parent attaching to its
        own segments would pin their mappings for the process lifetime."""
        from repro.engine import partition as partition_module

        calls = []

        def recording_create(arrays):
            calls.append(set(arrays))
            return None  # force the array-payload path either way

        monkeypatch.setattr(
            partition_module.SharedSeriesBuffer, "create", staticmethod(recording_create)
        )
        values = _values(300, seed=4)
        oracle = stomp(values, 16)

        executor = ParallelExecutor(n_jobs=2)
        executor._degraded = True  # what a sandboxed pool failure leaves behind
        with executor:
            profile = partitioned_stomp(values, 16, executor=executor, block_size=64)
        assert calls == []  # degraded => in-process => no segment created
        np.testing.assert_array_equal(profile.indices, oracle.indices)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ParallelExecutor(n_jobs=2) as healthy:
                if healthy.uses_processes:
                    partitioned_stomp(values, 16, executor=healthy, block_size=64)
                    assert calls  # a real pool does go through the transport

    @pytest.mark.parametrize("force_fallback", [False, True])
    def test_parallel_profile_matches_oracle_on_both_transports(
        self, monkeypatch, force_fallback
    ):
        """The engine result must not depend on the transport: shared
        memory when available, pickled arrays when forced off."""
        if force_fallback:
            monkeypatch.setattr(shm_module, "_shared_memory", None)
        values = _values(500, seed=12)
        oracle = stomp(values, 20)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with ParallelExecutor(n_jobs=2) as executor:
                profile = partitioned_stomp(
                    values, 20, executor=executor, block_size=90
                )
        np.testing.assert_array_equal(profile.indices, oracle.indices)
        np.testing.assert_allclose(profile.distances, oracle.distances, atol=1e-8)
