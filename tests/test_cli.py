"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.series.loaders import save_text


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover", "--min-length", "10", "--max-length", "20"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exit_info:
            build_parser().parse_args(["--version"])
        assert exit_info.value.code == 0


class TestGenerateCommand:
    def test_generate_writes_file(self, tmp_path, capsys):
        output = tmp_path / "ecg.txt"
        code = main(
            ["generate", "--workload", "ecg", "--length", "400", "--output", str(output)]
        )
        assert code == 0
        assert output.exists()
        assert "400 points" in capsys.readouterr().out


class TestDiscoverCommand:
    def test_discover_on_workload(self, capsys, tmp_path):
        result_path = tmp_path / "result.json"
        valmap_path = tmp_path / "valmap.json"
        code = main(
            [
                "discover",
                "--workload",
                "ecg",
                "--length",
                "400",
                "--min-length",
                "24",
                "--max-length",
                "32",
                "--top-k",
                "2",
                "--output",
                str(result_path),
                "--valmap-output",
                str(valmap_path),
                "--plot",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "VALMOD on" in out
        assert "VALMAP MPn" in out
        assert result_path.exists() and valmap_path.exists()
        payload = json.loads(result_path.read_text())
        assert payload["kind"] == "valmod_result"

    def test_discover_on_file(self, capsys, tmp_path):
        rng = np.random.default_rng(0)
        series_path = tmp_path / "series.txt"
        save_text(np.cumsum(rng.normal(size=300)), series_path)
        code = main(
            [
                "discover",
                "--input",
                str(series_path),
                "--min-length",
                "16",
                "--max-length",
                "20",
            ]
        )
        assert code == 0
        assert "top-3" in capsys.readouterr().out

    def test_error_is_reported_not_raised(self, capsys, tmp_path):
        rng = np.random.default_rng(0)
        series_path = tmp_path / "short.txt"
        save_text(rng.normal(size=30), series_path)
        code = main(
            [
                "discover",
                "--input",
                str(series_path),
                "--min-length",
                "16",
                "--max-length",
                "200",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCompareCommand:
    def test_compare_prints_all_algorithms(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "random-walk",
                "--length",
                "400",
                "--min-length",
                "16",
                "--max-length",
                "20",
                "--algorithms",
                "valmod",
                "stomp-range",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "valmod" in out and "stomp-range" in out


class TestFigureCommand:
    def test_figure_json_output(self, capsys, monkeypatch):
        # patch the figure registry to a tiny workload so the test stays fast
        import repro.cli as cli_module

        monkeypatch.setitem(
            cli_module._FIGURES,
            "fig2",
            lambda: [{"profile_capacity": 4, "valid_fraction": 1.0}],
        )
        code = main(["figure", "--name", "fig2", "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["profile_capacity"] == 4

    def test_figure_table_output(self, capsys, monkeypatch):
        import repro.cli as cli_module

        monkeypatch.setitem(
            cli_module._FIGURES,
            "ablation-exactness",
            lambda: {"mismatches": 0, "speedup": 3.0},
        )
        code = main(["figure", "--name", "ablation-exactness"])
        assert code == 0
        assert "mismatches" in capsys.readouterr().out
