"""The content-addressed series store: identity, bounds, degradation.

Covers the satellite checklist of the store subsystem: LRU eviction order
and byte bounds, atomic-write crash simulation, digest-mismatch and
corrupted-manifest degradation, and chunked-ingest equivalence with the
one-shot put.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.exceptions import InvalidParameterError, StoreError
from repro.store import RESULTS_SUBDIR, SERIES_SUBDIR, SeriesStore, open_data_root


def _walk(n: int, seed: int = 0) -> np.ndarray:
    return np.cumsum(np.random.default_rng(seed).standard_normal(n))


@pytest.fixture()
def store(tmp_path) -> SeriesStore:
    return SeriesStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get_round_trip(self, store):
        values = _walk(64)
        digest = store.put(values, name="walk")
        assert digest == repro.DataSeries(values).digest()
        got = store.get(digest)
        np.testing.assert_array_equal(got, values)
        assert not got.flags.writeable  # memory-mapped, read-only

    def test_load_wraps_as_dataseries_with_name(self, store):
        digest = store.put(repro.DataSeries(_walk(32), name="labelled"))
        series = store.load(digest)
        assert isinstance(series, repro.DataSeries)
        assert series.name == "labelled"

    def test_get_unknown_digest_is_a_miss(self, store):
        assert store.get("0" * 40) is None
        assert store.get("not-a-digest") is None
        assert store.load("0" * 40) is None

    def test_put_is_idempotent(self, store):
        values = _walk(48)
        assert store.put(values) == store.put(values)
        assert len(store) == 1

    def test_analyze_accepts_store_backed_digest(self, store):
        values = _walk(128)
        digest = store.put(values, name="catalogued")
        session = repro.analyze(digest, store=store)
        assert session.name == "catalogued"
        direct = repro.analyze(values).matrix_profile(16).profile()
        via_store = session.matrix_profile(16).profile()
        np.testing.assert_allclose(via_store.distances, direct.distances)

    def test_analyze_digest_without_store_fails_loudly(self, store):
        digest = store.put(_walk(32))
        with pytest.raises(InvalidParameterError, match="no store="):
            repro.analyze(digest)
        with pytest.raises(InvalidParameterError, match="not in the store"):
            repro.analyze("f" * 40, store=store)


class TestChunkedIngest:
    def test_chunked_equals_one_shot(self, store):
        """Any chunking — by values, by bytes, unaligned — lands the same
        digest and the same blob as a one-shot put."""
        values = _walk(100, seed=5)
        one_shot = store.put(values)
        blob = store.blob_path(one_shot).read_bytes()

        ingest = store.begin(name="chunks")
        ingest.append_chunk(values[:33])
        rest = values[33:].tobytes()
        ingest.append_bytes(rest[:101])  # deliberately not 8-byte aligned
        ingest.append_bytes(rest[101:])
        assert ingest.finalize() == one_shot
        assert store.blob_path(one_shot).read_bytes() == blob

    def test_expected_digest_verifies(self, store):
        values = _walk(40, seed=6)
        digest = repro.DataSeries(values).digest()
        ingest = store.begin(expected_digest=digest)
        ingest.append_chunk(values)
        assert ingest.finalize() == digest

    def test_digest_mismatch_raises_and_leaves_no_trace(self, store):
        values = _walk(40, seed=7)
        wrong = "a" * 40
        ingest = store.begin(expected_digest=wrong)
        ingest.append_chunk(values)
        with pytest.raises(StoreError, match="digest mismatch"):
            ingest.finalize()
        assert wrong not in store
        assert len(store) == 0
        assert not list(store.root.glob(".ingest.*.tmp"))

    def test_empty_and_misaligned_ingests_are_rejected(self, store):
        ingest = store.begin()
        with pytest.raises(StoreError, match="non-empty"):
            ingest.finalize()
        ingest = store.begin()
        ingest.append_bytes(b"12345")  # not a float64 multiple
        with pytest.raises(StoreError, match="multiple of 8"):
            ingest.finalize()

    def test_finalised_ingest_rejects_further_use(self, store):
        ingest = store.begin()
        ingest.append_chunk(_walk(16))
        ingest.finalize()
        with pytest.raises(StoreError, match="already finalised"):
            ingest.append_bytes(b"x" * 8)

    def test_abort_removes_the_temp_file(self, store):
        ingest = store.begin()
        ingest.append_chunk(_walk(16))
        ingest.abort()
        assert not list(store.root.glob(".ingest.*.tmp"))
        assert len(store) == 0


class TestEvictionAndBounds:
    def test_byte_cap_holds_and_evicts_lru(self, tmp_path):
        # 25 floats = 200 bytes per series; cap of 500 holds two.
        store = SeriesStore(tmp_path / "s", max_bytes=500)
        first = store.put(_walk(25, seed=1))
        second = store.put(_walk(25, seed=2))
        assert store.get(first) is not None  # touch: first is now hotter
        third = store.put(_walk(25, seed=3))
        assert store.total_bytes <= 500
        assert store.get(second) is None  # the cold entry went
        assert store.get(first) is not None
        assert store.get(third) is not None
        assert not store.blob_path(second).exists()

    def test_newest_entry_survives_even_over_budget(self, tmp_path):
        store = SeriesStore(tmp_path / "s", max_bytes=100)
        digest = store.put(_walk(50, seed=4))  # 400 bytes > cap
        assert store.get(digest) is not None

    def test_ls_orders_hottest_first(self, store):
        first = store.put(_walk(16, seed=1))
        second = store.put(_walk(16, seed=2))
        assert [row["digest"] for row in store.ls()] == [second, first]
        store.get(first)
        assert [row["digest"] for row in store.ls()] == [first, second]

    def test_rm(self, store):
        digest = store.put(_walk(16))
        assert store.rm(digest)
        assert store.get(digest) is None
        assert not store.rm(digest)


class TestDegradation:
    def test_corrupted_blob_degrades_to_miss_and_heals(self, store):
        values = _walk(32, seed=9)
        digest = store.put(values)
        store.blob_path(digest).write_bytes(b"garbage!" * 8)
        assert store.get(digest) is None  # digest verification caught it
        assert not store.blob_path(digest).exists()  # slot healed
        assert store.put(values) == digest  # and is usable again
        assert store.get(digest) is not None

    def test_truncated_blob_degrades_to_miss(self, store):
        digest = store.put(_walk(32, seed=10))
        blob = store.blob_path(digest)
        blob.write_bytes(blob.read_bytes()[:-8])
        assert store.get(digest) is None

    def test_corrupted_manifest_degrades_to_empty_and_gc_readopts(self, tmp_path):
        store = SeriesStore(tmp_path / "s")
        digests = {store.put(_walk(24, seed=s)) for s in range(3)}
        (tmp_path / "s" / "manifest.json").write_text("{not json at all")
        fresh = SeriesStore(tmp_path / "s")
        assert len(fresh) == 0  # degraded, not crashed
        report = fresh.gc()
        assert report["adopted"] == 3
        assert {row["digest"] for row in fresh.ls()} == digests

    def test_crash_simulation_leaves_store_coherent(self, store):
        """A writer that dies mid-ingest leaves only a temp file: the
        already-stored blobs are untouched (writes go through a unique temp
        + rename, never in place) and gc removes the debris."""
        values = _walk(64, seed=11)
        digest = store.put(values)
        blob_bytes = store.blob_path(digest).read_bytes()

        crashed = store.begin(name="crash")
        crashed.append_chunk(_walk(64, seed=12))
        # ... the process dies here: no finalize, no abort.  (A real crash
        # runs no destructor either, so the GC safety net is disarmed.)
        crashed._handle.close()
        crashed._done = True

        assert store.blob_path(digest).read_bytes() == blob_bytes
        np.testing.assert_array_equal(store.get(digest), values)
        leftovers = list(store.root.glob(".ingest.*.tmp"))
        assert leftovers  # the debris is visible...
        report = store.gc()
        assert report["temp_files"] >= 1  # ...and gc removes it
        assert not list(store.root.glob(".ingest.*.tmp"))
        assert len(store) == 1

    def test_gc_drops_entries_whose_blob_vanished(self, store):
        digest = store.put(_walk(16))
        store.blob_path(digest).unlink()
        report = store.gc()
        assert report["dropped"] == 1
        assert len(store) == 0

    def test_gc_removes_blobs_that_fail_verification(self, store):
        digest = store.put(_walk(16))
        # Forge an unmanifested blob whose content does not match its name.
        forged = store.blob_path("b" * 40)
        forged.parent.mkdir(parents=True, exist_ok=True)
        forged.write_bytes(b"\x00" * 16)
        (store.root / "manifest.json").unlink()
        fresh = SeriesStore(store.root)
        report = fresh.gc()
        assert report["adopted"] == 1
        assert report["corrupted"] == 1
        assert not forged.exists()
        assert fresh.get(digest) is not None


class TestDataRoot:
    def test_open_data_root_shares_one_namespace(self, tmp_path):
        store, cache_config = repro.open_data_root(tmp_path / "root")
        assert store.root == tmp_path / "root" / SERIES_SUBDIR
        assert cache_config.persist_dir == tmp_path / "root" / RESULTS_SUBDIR
        values = _walk(200, seed=13)
        digest = store.put(values)
        # One digest keys both halves: the session resolves its series from
        # the catalog and spills its results next to it.
        session = repro.analyze(digest, store=store, cache_config=cache_config)
        session.matrix_profile(24)
        spilled = list((tmp_path / "root" / RESULTS_SUBDIR).rglob("*.json"))
        assert any(digest in str(path) for path in spilled)

    def test_invalid_max_bytes_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            SeriesStore(tmp_path, max_bytes=0)
