"""Tests for the anytime SCRIMP / PreSCRIMP / SCRIMP++ algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.scrimp import (
    ScrimpState,
    convergence_curve,
    pre_scrimp,
    profile_error,
    scrimp,
    scrimp_pp,
)
from repro.matrix_profile.stomp import stomp


class TestScrimpExactness:
    @pytest.mark.parametrize("window", [8, 16, 33])
    def test_full_scrimp_equals_stomp(self, small_random_series, window):
        exact = stomp(small_random_series, window)
        diagonal = scrimp(small_random_series, window, fraction=1.0, random_state=0)
        np.testing.assert_allclose(diagonal.distances, exact.distances, atol=1e-6)

    def test_full_scrimp_on_ecg(self, small_ecg_series):
        window = 24
        exact = stomp(small_ecg_series, window)
        diagonal = scrimp(small_ecg_series, window, fraction=1.0, random_state=3)
        np.testing.assert_allclose(diagonal.distances, exact.distances, atol=1e-6)

    def test_order_independence(self, small_random_series):
        window = 16
        first = scrimp(small_random_series, window, random_state=1)
        second = scrimp(small_random_series, window, random_state=99)
        np.testing.assert_allclose(first.distances, second.distances, atol=1e-9)

    def test_constant_region(self):
        values = np.concatenate([np.zeros(40), np.sin(np.linspace(0, 9, 90)), np.zeros(30)])
        window = 10
        np.testing.assert_allclose(
            scrimp(values, window).distances, stomp(values, window).distances, atol=1e-6
        )


class TestScrimpAnytime:
    def test_partial_run_is_upper_bound(self, small_random_series):
        window = 16
        exact = stomp(small_random_series, window)
        partial = scrimp(small_random_series, window, fraction=0.2, random_state=0)
        finite = np.isfinite(partial.distances)
        assert np.all(partial.distances[finite] >= exact.distances[finite] - 1e-9)

    def test_error_decreases_with_fraction(self, small_ecg_series):
        window = 24
        exact = stomp(small_ecg_series, window)
        errors = [
            profile_error(
                scrimp(small_ecg_series, window, fraction=fraction, random_state=5), exact
            )
            for fraction in (0.1, 0.5, 1.0)
        ]
        assert errors[0] >= errors[1] >= errors[2]
        assert errors[2] == pytest.approx(0.0, abs=1e-6)

    def test_invalid_fraction_raises(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            scrimp(small_random_series, 16, fraction=0.0)
        with pytest.raises(InvalidParameterError):
            scrimp(small_random_series, 16, fraction=1.5)

    def test_state_mismatch_raises(self, small_random_series):
        state = ScrimpState(
            distances=np.full(10, np.inf),
            indices=np.full(10, -1, dtype=np.int64),
            window=16,
            exclusion_radius=4,
            diagonals_done=0,
            diagonals_total=5,
        )
        with pytest.raises(InvalidParameterError):
            scrimp(small_random_series, 16, state=state)

    def test_completion_property(self, small_random_series):
        window = 16
        count = small_random_series.size - window + 1
        state = ScrimpState(
            distances=np.full(count, np.inf),
            indices=np.full(count, -1, dtype=np.int64),
            window=window,
            exclusion_radius=4,
            diagonals_done=0,
            diagonals_total=count - 5,
        )
        assert state.completion == 0.0
        scrimp(small_random_series, window, fraction=0.5, exclusion_radius=4, state=state)
        assert 0.0 < state.completion <= 1.0


class TestPreScrimp:
    def test_upper_bound_of_exact(self, small_ecg_series):
        window = 24
        exact = stomp(small_ecg_series, window)
        seeded = pre_scrimp(small_ecg_series, window, random_state=0)
        finite = np.isfinite(seeded.distances)
        assert np.all(seeded.distances[finite] >= exact.distances[finite] - 1e-9)

    def test_finds_planted_motif_neighbourhood(self, planted_series):
        series, truth = planted_series
        planted = truth[0]
        seeded = pre_scrimp(series, planted.length, step=planted.length // 4, random_state=0)
        best = seeded.best()
        tolerance = planted.length // 2
        assert min(abs(best.offset_a - offset) for offset in planted.offsets) < tolerance

    def test_step_one_is_exact(self, small_random_series):
        window = 16
        exact = stomp(small_random_series, window)
        seeded = pre_scrimp(small_random_series, window, step=1, random_state=0)
        np.testing.assert_allclose(seeded.distances, exact.distances, atol=1e-6)

    def test_invalid_step_raises(self, small_random_series):
        with pytest.raises(InvalidParameterError):
            pre_scrimp(small_random_series, 16, step=0)


class TestScrimpPlusPlus:
    def test_full_run_is_exact(self, small_random_series):
        window = 16
        exact = stomp(small_random_series, window)
        combined = scrimp_pp(small_random_series, window, fraction=1.0, random_state=0)
        np.testing.assert_allclose(combined.distances, exact.distances, atol=1e-6)

    def test_partial_run_better_than_prescrimp_alone(self, small_ecg_series):
        window = 24
        exact = stomp(small_ecg_series, window)
        seeded_only = pre_scrimp(small_ecg_series, window, random_state=7)
        combined = scrimp_pp(small_ecg_series, window, fraction=0.25, random_state=7)
        assert profile_error(combined, exact) <= profile_error(seeded_only, exact) + 1e-9


class TestConvergenceCurve:
    def test_rows_and_monotonicity(self, small_ecg_series):
        rows = convergence_curve(
            small_ecg_series, 24, fractions=(0.1, 0.5, 1.0), random_state=0
        )
        assert [row["fraction"] for row in rows] == [0.1, 0.5, 1.0]
        assert rows[-1]["profile_mae"] == pytest.approx(0.0, abs=1e-6)
        assert rows[0]["profile_mae"] >= rows[-1]["profile_mae"]

    def test_profile_error_requires_matching_profiles(self, small_random_series):
        first = stomp(small_random_series, 16)
        second = stomp(small_random_series, 20)
        with pytest.raises(InvalidParameterError):
            profile_error(first, second)


class TestScrimpProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        window=st.integers(min_value=4, max_value=24),
    )
    def test_full_scrimp_matches_stomp_on_random_walks(self, seed, window):
        rng = np.random.default_rng(seed)
        series = np.cumsum(rng.normal(size=160))
        np.testing.assert_allclose(
            scrimp(series, window, random_state=seed).distances,
            stomp(series, window).distances,
            atol=1e-5,
        )

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_partial_scrimp_never_underestimates(self, seed, fraction):
        rng = np.random.default_rng(seed)
        series = np.cumsum(rng.normal(size=150))
        window = 12
        exact = stomp(series, window)
        partial = scrimp(series, window, fraction=fraction, random_state=seed)
        finite = np.isfinite(partial.distances)
        assert np.all(partial.distances[finite] >= exact.distances[finite] - 1e-9)
