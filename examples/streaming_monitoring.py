"""Streaming monitoring: keep the motif structure current while data arrives.

Simulates an online acquisition of a synthetic ECG: the first half of the
recording is the warm-up, the second half is replayed point by point through
the :class:`repro.StreamingMatrixProfile`-backed monitor.  The monitor emits
an event whenever the best motif pair improves (a new, cleaner heartbeat
match) or a new strongest discord appears (an anomalous beat), and
periodically refreshes a variable-length VALMAP snapshot so the full
expressiveness of the paper's meta-data remains available on the stream.

Run with::

    python examples/streaming_monitoring.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.streaming import StreamingMotifMonitor


def main() -> None:
    # 1. A synthetic ECG with an injected anomaly in its second half.
    series = repro.generate_ecg(3000, beat_period=220, random_state=7)
    values = np.array(series.values)
    values[2400:2430] += 3.0  # a short artefact the discord tracking should flag
    warmup, live = values[:1500], values[1500:]

    # 2. Monitor two heartbeat-scale lengths while the stream grows.
    monitor = StreamingMotifMonitor(
        warmup,
        windows=(110, 220),
        improvement_margin=0.02,
        discord_margin=0.05,
        valmap_refresh=500,
    )
    print(f"warm-up: {len(warmup)} points; monitoring lengths {monitor.windows}")

    # 3. Replay the live part and report the events as they fire.
    events = monitor.extend(live)
    print(f"replayed {live.size} points, {len(events)} events:")
    for event in events[:20]:
        offsets = ", ".join(str(offset) for offset in event.offsets)
        print(
            f"  [{event.kind:>7}] at point {event.position}: length={event.window} "
            f"distance={event.distance:.3f} offsets=({offsets})"
        )
    if len(events) > 20:
        print(f"  ... and {len(events) - 20} more")

    # 4. Final state: best motif per monitored length, top discord, VALMAP snapshot.
    print()
    for window in monitor.windows:
        best = monitor.best_motif(window)
        print(
            f"final best motif @ length {window}: offsets=({best.offset_a}, {best.offset_b}) "
            f"distance={best.distance:.3f}"
        )
    discord = monitor.top_discords(1, window=110)[0]
    print(f"strongest discord @ length 110 starts at offset {discord} (injected artefact ≈ 2400)")

    if monitor.last_valmap_result is not None:
        snapshot = monitor.last_valmap_result
        best = snapshot.best_motif()
        print(
            f"VALMAP snapshot over lengths [{snapshot.lengths[0]}, {snapshot.lengths[-1]}]: "
            f"best variable-length motif has length {best.window} "
            f"(dn={best.normalized_distance:.3f})"
        )


if __name__ == "__main__":
    main()
