"""Quickstart: find variable-length motifs in a synthetic series.

Generates a random-walk series with two planted occurrences of an unknown
pattern, opens an analysis session (``repro.analyze``), runs VALMOD over a
range of subsequence lengths, and prints the ranked motif pairs, the pruning
statistics and a VALMAP summary.  The session validates the series once and
shares its sliding statistics across every follow-up question, so the
matrix-profile and discord calls at the end reuse the work the motif search
already paid for.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis import render_valmap, result_report


def main() -> None:
    # 1. Build a series with a planted motif of (deliberately unknown) length 72.
    series, ground_truth = repro.generate_planted_motifs(
        4000,
        motif_lengths=(72,),
        copies_per_motif=2,
        distortion=0.02,
        random_state=42,
    )
    print(f"series: {series.name}, {len(series)} points")
    print(f"ground truth (hidden from the algorithm): {ground_truth}")

    # 2. Open a session and run VALMOD over a range bracketing the length.
    session = repro.analyze(series)
    envelope = session.motifs(48, 96, method="valmod", top_k=3)
    result = envelope.value  # the full ValmodResult (VALMAP, pruning, ...)

    # 3. Inspect the output: report, best motif, VALMAP rendering.
    print()
    print(result_report(result, top_k=5))
    print()
    print(render_valmap(result.valmap))

    best = envelope.best_motif()
    print()
    print(
        f"best variable-length motif: length={best.window}, "
        f"offsets=({best.offset_a}, {best.offset_b}), "
        f"normalized distance={best.normalized_distance:.4f}"
    )
    planted = ground_truth[0]
    print(f"planted copies started at {planted.offsets} with length {planted.length}")

    # 4. Ask follow-up questions on the same session: the series statistics
    #    are shared and repeated calls hit the session cache.
    profile = session.matrix_profile(best.window).profile()
    print(
        f"matrix profile at length {best.window}: best pair distance "
        f"{profile.best().distance:.4f}"
    )
    anomalies = session.discords(48, 96, k=1).value
    if anomalies:
        print(
            f"strongest anomaly: offset {anomalies[0].offset} at length "
            f"{anomalies[0].window}"
        )
    print(f"session cache: {session.cache_info()}")


if __name__ == "__main__":
    main()
