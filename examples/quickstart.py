"""Quickstart: find variable-length motifs in a synthetic series.

Generates a random-walk series with two planted occurrences of an unknown
pattern, runs VALMOD over a range of subsequence lengths, and prints the
ranked motif pairs, the pruning statistics and a VALMAP summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.analysis import render_valmap, result_report


def main() -> None:
    # 1. Build a series with a planted motif of (deliberately unknown) length 72.
    series, ground_truth = repro.generate_planted_motifs(
        4000,
        motif_lengths=(72,),
        copies_per_motif=2,
        distortion=0.02,
        random_state=42,
    )
    print(f"series: {series.name}, {len(series)} points")
    print(f"ground truth (hidden from the algorithm): {ground_truth}")

    # 2. Run VALMOD over a length range that brackets the unknown length.
    result = repro.valmod(series, min_length=48, max_length=96, top_k=3)

    # 3. Inspect the output: report, best motif, VALMAP rendering.
    print()
    print(result_report(result, top_k=5))
    print()
    print(render_valmap(result.valmap))

    best = result.best_motif()
    print()
    print(
        f"best variable-length motif: length={best.window}, "
        f"offsets=({best.offset_a}, {best.offset_b}), "
        f"normalized distance={best.normalized_distance:.4f}"
    )
    planted = ground_truth[0]
    print(f"planted copies started at {planted.offsets} with length {planted.length}")


if __name__ == "__main__":
    main()
