"""Cross-recording analysis: joins and MPdist between two recordings.

The paper's self-join setting asks "where does this recording repeat
itself?"; real analyses also ask "does the pattern found in recording A occur
in recording B, and how similar are the two recordings overall?".  This
example answers both with the library's AB-join and MPdist extensions:

1. discover the best variable-length motif in recording A with VALMOD;
2. locate that motif inside recording B with an AB-join;
3. compare whole recordings (A vs. a same-patient recording, A vs. an
   unrelated random walk) with MPdist.

Run with::

    python examples/cross_recording_analysis.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    # Two ECG recordings of the "same patient" (same beat shape, different
    # noise and beat timing) and one unrelated series.
    recording_a = repro.generate_ecg(3000, beat_period=200, random_state=1, name="ecg-day-1")
    recording_b = repro.generate_ecg(3000, beat_period=200, random_state=2, name="ecg-day-2")
    unrelated = repro.generate_random_walk(3000, random_state=3, name="random-walk")

    # 1. Variable-length discovery on recording A.
    result = repro.valmod(recording_a, min_length=100, max_length=220, top_k=1, length_step=4)
    motif = result.best_motif()
    print(
        f"best motif in {recording_a.name}: length={motif.window}, "
        f"offsets=({motif.offset_a}, {motif.offset_b}), dn={motif.normalized_distance:.3f}"
    )

    # 2. Does that pattern occur in recording B?  Query it with MASS/AB-join.
    query = recording_a.subsequence(motif.offset_a, motif.window)
    profile = repro.mass(query, recording_b)
    best_match = int(np.argmin(profile))
    print(
        f"closest occurrence in {recording_b.name}: offset {best_match}, "
        f"z-normalised distance {float(profile[best_match]):.3f}"
    )

    # The full AB-join also tells us how well *every* part of A is covered by B.
    join = repro.ab_join(recording_a, recording_b, motif.window)
    covered = float(np.mean(join.distances < 0.5 * np.sqrt(motif.window)))
    print(f"{covered:.0%} of {recording_a.name}'s windows have a close match in {recording_b.name}")

    # 3. Whole-recording similarity with MPdist.
    window = 100
    same_patient = repro.mpdist(recording_a, recording_b, window)
    different_source = repro.mpdist(recording_a, unrelated, window)
    print()
    print(f"MPdist({recording_a.name}, {recording_b.name})   = {same_patient:.3f}")
    print(f"MPdist({recording_a.name}, {unrelated.name}) = {different_source:.3f}")
    print("the two ECG recordings are (much) closer to each other than to the random walk")


if __name__ == "__main__":
    main()
