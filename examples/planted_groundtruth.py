"""Accuracy check against ground truth and exactness check against brute force.

Plants motifs of two different lengths in a random-walk background, then:

* verifies that VALMOD's variable-length ranking recovers both planted
  patterns (recall = 1.0);
* verifies that the per-length motif distances are identical to the
  brute-force oracle (exactness);
* reports the speed-up over the oracle and over STOMP-range.
"""

from __future__ import annotations

import repro
from repro.analysis import format_motif_table, recall_of_planted_motifs
from repro.harness import timed_call


def main() -> None:
    series, ground_truth = repro.generate_planted_motifs(
        3000,
        motif_lengths=(40, 90),
        copies_per_motif=2,
        distortion=0.03,
        random_state=11,
    )
    print(f"series of {len(series)} points with planted motifs:")
    for motif in ground_truth:
        print(f"  length {motif.length} at offsets {motif.offsets}")

    min_length, max_length = 32, 112
    result, valmod_seconds = timed_call(
        repro.valmod, series, min_length, max_length, top_k=2
    )
    print()
    print(format_motif_table(result.top_motifs(6), title="top-6 variable-length motifs"))

    recall = recall_of_planted_motifs(result.top_motifs(6), ground_truth)
    print(f"\nrecall of planted motifs (top-6, 50% coverage): {recall:.2f}")

    # Exactness: compare per-length best distances with the brute-force oracle
    # on a handful of lengths (the oracle is slow).
    sample_lengths = [min_length, (min_length + max_length) // 2, max_length]
    oracle, oracle_seconds = timed_call(
        repro.brute_force_range,
        series,
        sample_lengths[0],
        sample_lengths[0],
        top_k=1,
    )
    checks = []
    for length in sample_lengths:
        oracle_result = repro.brute_force_range(series, length, length, top_k=1)
        expected = oracle_result.best_at(length).distance
        observed = result.motifs_at(length)[0].distance
        checks.append((length, expected, observed, abs(expected - observed) < 1e-6))
    print("\nexactness vs. brute force:")
    for length, expected, observed, ok in checks:
        print(f"  length {length}: oracle {expected:.6f}  valmod {observed:.6f}  -> {'OK' if ok else 'MISMATCH'}")

    _, stomp_seconds = timed_call(
        repro.stomp_range, series, min_length, max_length, top_k=1
    )
    print(
        f"\ntimings: valmod {valmod_seconds:.2f} s, stomp-range {stomp_seconds:.2f} s "
        f"({stomp_seconds / max(valmod_seconds, 1e-9):.1f}x), "
        f"one brute-force length {oracle_seconds:.2f} s"
    )


if __name__ == "__main__":
    main()
