"""Respiration analysis: breathing motifs, apnea discords, and the pan profile.

Reference [6] of the paper comes from sleep-study scoring: respiration series
contain short repeated breathing cycles and much longer, rarer apnea
episodes.  This example runs the three complementary tools of the library on
a synthetic respiration recording:

* VALMOD over the breathing-cycle scale (the dominant motif);
* variable-length discord discovery, which flags the apnea episodes as the
  least-repeated subsequences;
* a SKIMP pan matrix profile over a coarse grid of lengths, collapsed into a
  VALMAP-like view, to show at which scale each region of the recording is
  best explained.

Run with::

    python examples/respiration_apnea.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core import skimp, variable_length_discords


def main() -> None:
    series = repro.generate_respiration(
        4000, breath_period=80, apnea_duration=320, apnea_gap=1300, random_state=11
    )
    apnea_starts = series.metadata["apnea_starts"]
    print(f"{series.name}: {len(series)} points, apnea episodes start at {apnea_starts}")

    # 1. Breathing-cycle motifs (short scale).
    result = repro.valmod(series, min_length=60, max_length=100, top_k=3)
    best = result.best_motif()
    print(
        f"\nbest breathing motif: length={best.window}, offsets=({best.offset_a}, "
        f"{best.offset_b}), dn={best.normalized_distance:.3f}"
    )
    motif_set = repro.expand_motif_pair(series, best, radius_factor=2.0)
    print(f"its motif set has {len(motif_set)} occurrences (≈ one per breath)")

    # 2. Apnea episodes as variable-length discords (long scale).
    discords = variable_length_discords(series, 120, 360, k=3, length_step=40)
    print("\ntop discords (anomalously un-repeated subsequences):")
    for discord in discords:
        nearest_apnea = min(abs(discord.offset - start) for start in apnea_starts)
        print(
            f"  offset={discord.offset:>5} length={discord.window:>4} "
            f"dn={discord.normalized_distance:.3f} "
            f"(distance to nearest annotated apnea onset: {nearest_apnea} points)"
        )

    # 3. Pan matrix profile over a coarse grid of lengths.
    pan = skimp(series, 60, 340, lengths=[60, 80, 120, 200, 280, 340])
    collapsed = pan.collapse()
    lengths, counts = np.unique(collapsed.length_profile, return_counts=True)
    print("\npan-profile view — how many positions are best explained at each length:")
    for length, count in zip(lengths.tolist(), counts.tolist()):
        print(f"  length {length:>4}: {count} positions")
    print(
        "short lengths dominate (breathing cycles), while the regions around the "
        "apnea episodes prefer longer windows"
    )


if __name__ == "__main__":
    main()
