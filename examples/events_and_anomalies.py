"""Recurring events as motifs (seismology) and anomalies as discords (ECG).

Two demo scenarios in one script:

1. a synthetic seismogram with repeated transient events — VALMOD finds the
   recurring event shape as a variable-length motif and the motif-set
   expansion recovers (nearly) all of its occurrences;
2. a synthetic ECG in which one beat is corrupted — the variable-length
   discord extension localises the arrhythmic beat without knowing its
   length in advance.
"""

from __future__ import annotations

import numpy as np

import repro
from repro.analysis import format_motif_table, render_series
from repro.series import DataSeries


def seismic_motifs() -> None:
    """Part 1: recurring seismic events found as variable-length motifs."""
    series = repro.generate_seismic(
        6000, event_duration=150, num_events=6, noise_level=0.6, random_state=5
    )
    event_starts = series.metadata["event_starts"]
    print(f"seismogram: {len(series)} points, events planted at {event_starts}")
    print(render_series(series.values, label="seismic"))

    result = repro.valmod(series, min_length=80, max_length=200, top_k=3)
    best = result.best_motif()
    print()
    print(format_motif_table(result.top_motifs(4), title="top-4 variable-length motifs"))

    motif_set = repro.expand_motif_pair(series, best, radius_factor=2.5)
    print(
        f"\nmotif set of the best pair ({len(motif_set)} occurrences) at offsets: "
        f"{motif_set.occurrences}"
    )
    recovered = sum(
        1
        for start in event_starts
        if any(abs(start - offset) <= best.window for offset in motif_set.occurrences)
    )
    print(f"occurrences matching a true event: {recovered}/{len(event_starts)}")


def ecg_discords() -> None:
    """Part 2: an arrhythmic heartbeat found as a variable-length discord."""
    beat_period = 200
    base = repro.generate_ecg(4000, beat_period=beat_period, noise_level=0.01, random_state=2)
    values = np.array(base.values)
    anomaly_start, anomaly_length = 2100, 200
    time_axis = np.arange(anomaly_length)
    # Corrupt one beat: reverse it, damp it, and add a slow oscillation.
    values[anomaly_start : anomaly_start + anomaly_length] = (
        values[anomaly_start : anomaly_start + anomaly_length][::-1] * 0.6
        + 0.3 * np.sin(2 * np.pi * 3 * time_axis / anomaly_length)
    )
    series = DataSeries(values, name="ecg+arrhythmia", metadata=base.metadata)

    print()
    print(f"ECG with a corrupted beat at offset {anomaly_start}")
    print(render_series(series.values, label="ECG"))

    discords = repro.variable_length_discords(
        series, min_length=100, max_length=240, k=2, length_step=70
    )
    print("top discords (offset, length, normalized NN distance):")
    for discord in discords:
        print(
            f"  offset {discord.offset:5d}  length {discord.window:4d}  "
            f"dn={discord.normalized_distance:.3f}"
        )
    top = discords[0]
    overlaps = (
        top.offset < anomaly_start + anomaly_length
        and anomaly_start < top.offset + top.window
    )
    print(f"top discord {'overlaps' if overlaps else 'does not overlap'} the corrupted beat")


def main() -> None:
    seismic_motifs()
    ecg_discords()


if __name__ == "__main__":
    main()
