"""The paper's Figure 1 scenario on synthetic ECG data.

A fixed-length matrix profile (length 50) finds a motif that covers only a
fraction of a heartbeat; the variable-length analysis (VALMOD + VALMAP)
recovers a motif close to the full beat period and shows, through the length
profile, where longer matches keep improving on shorter ones.

Run with::

    python examples/ecg_motifs.py
"""

from __future__ import annotations

import repro
from repro.analysis import (
    format_motif_table,
    render_profile,
    render_series,
    render_valmap,
    summarize_checkpoints,
)


def main() -> None:
    beat_period = 220
    series = repro.generate_ecg(5000, beat_period=beat_period, random_state=0)
    print(f"synthetic ECG: {len(series)} points, nominal beat period {beat_period}")
    print(render_series(series.values, label="ECG"))

    # ---------------------------------------------------------------- #
    # Fixed-length analysis (Figure 1, left): subsequence length 50.
    # ---------------------------------------------------------------- #
    fixed_window = 50
    profile = repro.stomp(series, fixed_window)
    fixed_best = profile.best()
    print()
    print(f"fixed-length matrix profile (l = {fixed_window})")
    print(render_profile(profile.distances, label=f"MP l={fixed_window}"))
    print(
        f"  best motif: offsets ({fixed_best.offset_a}, {fixed_best.offset_b}), "
        f"distance {fixed_best.distance:.3f} — covers only "
        f"{fixed_window / beat_period:.0%} of a heartbeat"
    )

    # ---------------------------------------------------------------- #
    # Variable-length analysis (Figure 1, right): lengths 50..250.
    # ---------------------------------------------------------------- #
    result = repro.valmod(series, min_length=50, max_length=250, top_k=3)
    best = result.best_motif()
    print()
    print("VALMOD / VALMAP over lengths [50, 250]")
    print(render_valmap(result.valmap))
    print(format_motif_table(result.top_motifs(5), title="top-5 variable-length motifs"))
    print(
        f"\nbest variable-length motif has length {best.window} "
        f"(~{best.window / beat_period:.0%} of a heartbeat) at offsets "
        f"({best.offset_a}, {best.offset_b})"
    )

    summary = summarize_checkpoints(result.valmap)
    print(
        f"VALMAP recorded {summary.num_updates} updates over "
        f"{len(summary.update_regions)} contiguous regions — regions where a longer "
        f"pattern is a better match than the length-50 one"
    )

    # Expand the best pair into its motif set: all heartbeats similar to it.
    motif_set = repro.expand_motif_pair(series, best, radius_factor=2.0)
    print(
        f"motif set of the best pair: {len(motif_set)} occurrences at offsets "
        f"{motif_set.occurrences[:10]}{'...' if len(motif_set) > 10 else ''}"
    )


if __name__ == "__main__":
    main()
