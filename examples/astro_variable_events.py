"""Variable-duration transit events in a synthetic light curve (ASTRO scenario).

The ASTRO dataset of the paper contains repeated dimming events whose duration
is unknown a priori.  This example shows that a single fixed subsequence
length either truncates or over-stretches the events, whereas the
variable-length ranking lands on the true event duration, and compares
VALMOD's runtime with the re-run-STOMP-per-length baseline.
"""

from __future__ import annotations

import repro
from repro.analysis import format_motif_table, render_series
from repro.harness import timed_call


def main() -> None:
    transit_duration = 120
    series = repro.generate_astro(
        6000,
        transit_duration=transit_duration,
        transit_period=600,
        random_state=3,
    )
    starts = series.metadata["transit_starts"]
    durations = series.metadata["transit_durations"]
    print(f"synthetic light curve: {len(series)} points, {len(starts)} transit events")
    print(f"true event durations: {durations}")
    print(render_series(series.values, label="ASTRO"))

    min_length, max_length = 60, 180
    result, valmod_seconds = timed_call(
        repro.valmod, series, min_length, max_length, top_k=3
    )
    baseline, stomp_seconds = timed_call(
        repro.stomp_range, series, min_length, max_length, top_k=1
    )
    print()
    print(f"VALMOD      : {valmod_seconds:7.2f} s for lengths [{min_length}, {max_length}]")
    print(f"STOMP-range : {stomp_seconds:7.2f} s for the same range "
          f"({stomp_seconds / max(valmod_seconds, 1e-9):.1f}x slower)")

    print()
    print(format_motif_table(result.top_motifs(5), title="top-5 variable-length motifs"))
    best = result.best_motif()
    print(
        f"\nbest motif length {best.window} vs. nominal transit duration {transit_duration}; "
        f"offsets ({best.offset_a}, {best.offset_b}) vs. true event starts {starts[:6]}"
    )

    # The same pair at the base length only: what a fixed-length analysis sees.
    fixed_best = result.motifs_at(min_length)[0]
    print(
        f"fixed-length (l={min_length}) motif: offsets "
        f"({fixed_best.offset_a}, {fixed_best.offset_b}), which covers only "
        f"{min_length / best.window:.0%} of the variable-length motif"
    )


if __name__ == "__main__":
    main()
