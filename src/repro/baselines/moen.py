"""MOEN — enumeration of the best motif of every length in a range.

MOEN (Mueen, ICDM 2013, reference [5] of the demo paper) is, like VALMOD, an
exact algorithm that natively accepts a length range and reports the best
motif pair of every length.  Unlike VALMOD it does not carry per-profile
candidate lists across lengths: every length requires a full pass over all
subsequence pairs, with pruning limited to skipping pairs whose distance at
the *previous* length already proves they cannot beat the current
best-so-far at the new length.

This reproduction keeps MOEN's interface and complexity profile — exact,
top-1 per length, cost essentially proportional to ``n² · R`` for a range of
width ``R`` — and uses the same inter-length lower bound as the rest of the
library (:mod:`repro.core.lower_bound`) for the per-length pruning step:

1. at the smallest length a full STOMP pass yields the matrix profile and the
   best pair;
2. for each subsequent length, offsets are visited in ascending order of a
   lower bound on their new nearest-neighbour distance (derived from the
   previous length's profile); a full distance profile is computed only while
   that bound is below the best pair distance found so far at this length.

The pruning is much weaker than VALMOD's (the bound is anchored to the
previous length's nearest neighbour only, so most offsets are recomputed),
which reproduces the qualitative behaviour reported in the paper: MOEN stays
exact but its runtime grows steeply with the range width.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.baselines.base import RangeDiscoveryResult
from repro.core.lower_bound import lower_bound
from repro.matrix_profile.distance_profile import distance_profile
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.profile import MotifPair
from repro.matrix_profile.stomp import stomp
from repro.series.validation import validate_length_range, validate_series
from repro.stats.distance import distance_to_correlation
from repro.stats.sliding import SlidingStats

__all__ = ["moen"]


def moen(
    series,
    min_length: int,
    max_length: int,
    *,
    exclusion_factor: int = 4,
    lower_bound_kind: str = "tight",
    stats: SlidingStats | None = None,
) -> RangeDiscoveryResult:
    """Exact best motif pair of every length in ``[min_length, max_length]``."""
    values = validate_series(series)
    min_length, max_length = validate_length_range(values.size, min_length, max_length)

    started = time.perf_counter()
    if stats is None:
        stats = SlidingStats(values)
    motifs_by_length: Dict[int, List[MotifPair]] = {}
    profiles_computed = 0
    profiles_pruned = 0

    base = stomp(values, min_length, stats=stats)
    motifs_by_length[min_length] = base.motifs(1)
    previous_distances = np.array(base.distances)
    previous_length = min_length

    for length in range(min_length + 1, max_length + 1):
        count = values.size - length + 1
        radius = default_exclusion_radius(length, exclusion_factor)
        means, stds = stats.mean_std(length)
        base_stds = stats.stds(previous_length)[:count]

        # Lower bound on each offset's new nearest-neighbour distance, derived
        # from its previous-length nearest-neighbour distance.  The bound is
        # only valid w.r.t. that same neighbour, therefore it can only be used
        # to *order* the offsets and to stop once even the most optimistic
        # remaining offset cannot contain the best pair.
        previous_correlation = np.asarray(
            distance_to_correlation(previous_distances[:count], previous_length)
        )
        bounds = np.asarray(
            lower_bound(
                previous_correlation,
                previous_length,
                length,
                base_stds,
                stds[:count],
                kind=lower_bound_kind,
            ),
            dtype=np.float64,
        )
        # Degenerate (constant) subsequences fall outside the bound's
        # derivation: disable pruning for them, and cap every bound by the
        # conventional constant/non-constant distance when needed.
        if bool(np.any(stds[:count] <= 0.0)):
            bounds = np.minimum(bounds, max(float(np.sqrt(length)) - 1e-9, 0.0))
        bounds = np.where((base_stds <= 0.0) | (stds[:count] <= 0.0), 0.0, bounds)
        order = np.argsort(bounds)

        best_distance = np.inf
        best_pair: MotifPair | None = None
        new_distances = np.full(count, np.inf, dtype=np.float64)
        new_indices = np.full(count, -1, dtype=np.int64)
        for position, offset in enumerate(order.tolist()):
            if bounds[offset] >= best_distance and best_pair is not None:
                profiles_pruned += count - position
                break
            profile = distance_profile(
                values, int(offset), length, stats=stats, exclusion_radius=radius
            )
            profiles_computed += 1
            nearest = int(np.argmin(profile))
            if np.isfinite(profile[nearest]):
                new_distances[offset] = float(profile[nearest])
                new_indices[offset] = nearest
                if profile[nearest] < best_distance:
                    best_distance = float(profile[nearest])
                    best_pair = MotifPair(
                        distance=best_distance,
                        offset_a=int(offset),
                        offset_b=nearest,
                        window=length,
                    )

        motifs_by_length[length] = [best_pair] if best_pair is not None else []
        # Offsets whose profile was pruned keep a conservative estimate (their
        # bound) so the next length still has an ordering signal.
        unresolved = ~np.isfinite(new_distances)
        new_distances[unresolved] = np.maximum(bounds[unresolved], 0.0)
        previous_distances = new_distances
        previous_length = length
        stats.forget(length)

    elapsed = time.perf_counter() - started
    return RangeDiscoveryResult(
        algorithm="moen",
        motifs_by_length=motifs_by_length,
        elapsed_seconds=elapsed,
        extra={
            "profiles_computed": float(profiles_computed),
            "profiles_pruned": float(profiles_pruned),
        },
    )
