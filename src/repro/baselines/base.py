"""Shared result container for the range-discovery baselines.

Every baseline (and the benchmark harness) reports its findings in the same
shape: the top-k motif pairs of every evaluated length plus wall-clock time,
so results from VALMOD and from its competitors can be compared row by row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.core.ranking import rank_motif_pairs
from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.profile import MotifPair

__all__ = ["RangeDiscoveryResult"]


@dataclass(frozen=True)
class RangeDiscoveryResult:
    """Top-k motif pairs per length, as produced by one algorithm.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm name ("valmod", "stomp-range", "moen", ...).
    motifs_by_length:
        Mapping from subsequence length to the ordered list of motif pairs
        found at that length (best first).
    elapsed_seconds:
        Wall-clock duration of the run.
    extra:
        Algorithm-specific counters (pruning statistics, pair evaluations...).
    """

    algorithm: str
    motifs_by_length: Mapping[int, List[MotifPair]]
    elapsed_seconds: float
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def lengths(self) -> List[int]:
        """Evaluated lengths, ascending."""
        return sorted(self.motifs_by_length)

    def motifs_at(self, length: int) -> List[MotifPair]:
        """Top-k motif pairs found at one length."""
        if length not in self.motifs_by_length:
            raise InvalidParameterError(
                f"length {length} was not evaluated; available: {self.lengths}"
            )
        return list(self.motifs_by_length[length])

    def best_at(self, length: int) -> MotifPair:
        """The single best motif pair of one length."""
        motifs = self.motifs_at(length)
        if not motifs:
            raise EmptyResultError(f"no motif pair was found at length {length}")
        return motifs[0]

    def best_overall(self) -> MotifPair:
        """The best pair across all lengths, by length-normalised distance."""
        pairs = [pair for motifs in self.motifs_by_length.values() for pair in motifs]
        ranked = rank_motif_pairs(pairs, 1, distinct_events=False)
        if not ranked:
            raise EmptyResultError("the run produced no motif pair at any length")
        return ranked[0]

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "algorithm": self.algorithm,
            "elapsed_seconds": self.elapsed_seconds,
            "lengths": self.lengths,
            "motifs_by_length": {
                str(length): [pair.as_dict() for pair in pairs]
                for length, pairs in sorted(self.motifs_by_length.items())
            },
            "extra": dict(self.extra),
        }
