"""STOMP adapted to a length range.

The paper adapts the fixed-length state-of-the-art algorithms "to find all
the motifs for a given subsequence length range" by simply re-running them
for every length.  This module is that adaptation for STOMP: one full
``O(n²)`` matrix-profile computation per length, hence ``O(n²·R)`` for a
range of width ``R`` — the quadratic-in-range behaviour VALMOD avoids
(Figure 3, top).
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.baselines.base import RangeDiscoveryResult
from repro.matrix_profile.profile import MotifPair
from repro.matrix_profile.stomp import stomp
from repro.series.validation import validate_length_range, validate_series
from repro.stats.sliding import SlidingStats

__all__ = ["stomp_range"]


def stomp_range(
    series,
    min_length: int,
    max_length: int,
    *,
    top_k: int = 3,
    length_step: int = 1,
    exclusion_factor: int = 4,
) -> RangeDiscoveryResult:
    """Exact top-k motif pairs of every length, one STOMP run per length."""
    values = validate_series(series)
    min_length, max_length = validate_length_range(values.size, min_length, max_length)
    lengths = list(range(min_length, max_length + 1, length_step))
    if lengths[-1] != max_length:
        lengths.append(max_length)

    started = time.perf_counter()
    stats = SlidingStats(values)
    motifs_by_length: Dict[int, List[MotifPair]] = {}
    for length in lengths:
        profile = stomp(values, length, stats=stats)
        motifs_by_length[length] = profile.motifs(top_k)
        stats.forget(length)
    elapsed = time.perf_counter() - started
    return RangeDiscoveryResult(
        algorithm="stomp-range",
        motifs_by_length=motifs_by_length,
        elapsed_seconds=elapsed,
        extra={"lengths_evaluated": float(len(lengths))},
    )
