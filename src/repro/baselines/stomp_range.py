"""STOMP adapted to a length range.

The paper adapts the fixed-length state-of-the-art algorithms "to find all
the motifs for a given subsequence length range" by simply re-running them
for every length.  This module is that adaptation for STOMP: one full
``O(n²)`` matrix-profile computation per length, hence ``O(n²·R)`` for a
range of width ``R`` — the quadratic-in-range behaviour VALMOD avoids
(Figure 3, top).
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.baselines.base import RangeDiscoveryResult
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.profile import MotifPair
from repro.matrix_profile.stomp import stomp
from repro.series.validation import validate_length_range, validate_series
from repro.stats.sliding import SlidingStats

__all__ = ["stomp_range"]


def stomp_range(
    series,
    min_length: int,
    max_length: int,
    *,
    top_k: int = 3,
    length_step: int = 1,
    exclusion_factor: int = 4,
    engine: object | None = None,
    n_jobs: int | None = None,
    kernel: str | None = None,
    stats: SlidingStats | None = None,
) -> RangeDiscoveryResult:
    """Exact top-k motif pairs of every length, one STOMP run per length.

    ``engine`` / ``n_jobs`` dispatch the per-length profiles as one batch
    of independent jobs through :func:`repro.engine.batch.compute_profiles`
    (each length is a full, data-independent profile computation — the
    engine's ideal workload); ``engine=None`` keeps the serial loop.
    ``kernel`` selects the sweep kernel of every per-length run
    (:mod:`repro.matrix_profile.kernels`).
    """
    values = validate_series(series)
    min_length, max_length = validate_length_range(values.size, min_length, max_length)
    lengths = list(range(min_length, max_length + 1, length_step))
    if lengths[-1] != max_length:
        lengths.append(max_length)

    started = time.perf_counter()
    motifs_by_length: Dict[int, List[MotifPair]] = {}
    if engine is not None:
        from repro.engine.batch import ProfileJob, compute_profiles

        jobs = [
            ProfileJob(
                values,
                window=length,
                exclusion_radius=default_exclusion_radius(length, exclusion_factor),
                kernel=kernel,
            )
            for length in lengths
        ]
        for length, outcome in zip(
            lengths, compute_profiles(jobs, executor=engine, n_jobs=n_jobs)
        ):
            motifs_by_length[length] = outcome.unwrap().motifs(top_k)
    else:
        if stats is None:
            stats = SlidingStats(values)
        for length in lengths:
            profile = stomp(
                values,
                length,
                stats=stats,
                exclusion_radius=default_exclusion_radius(length, exclusion_factor),
                kernel=kernel,
            )
            motifs_by_length[length] = profile.motifs(top_k)
            stats.forget(length)
    elapsed = time.perf_counter() - started
    return RangeDiscoveryResult(
        algorithm="stomp-range",
        motifs_by_length=motifs_by_length,
        elapsed_seconds=elapsed,
        extra={"lengths_evaluated": float(len(lengths))},
    )
