"""QuickMotif-style fixed-length motif discovery.

QUICKMOTIF (Li et al., ICDE 2015, reference [3] of the demo paper) finds the
best motif pair of a *single* length without computing every pairwise
distance: subsequences are summarised with PAA, grouped into minimum bounding
rectangles (MBRs), and candidate MBR pairs are examined best-first, pruning
every pair whose bounding-box lower bound exceeds the best distance found so
far.

This module re-implements that scheme on top of the library's substrate:

* subsequences are z-normalised and PAA-summarised (``O(n·s)`` via sliding
  sums);
* runs of ``group_size`` consecutive subsequences form an MBR;
* MBR pairs are visited in ascending order of their box-to-box lower bound;
  within a surviving pair, exact z-normalised distances are computed for the
  cross product of their members (skipping trivial matches);
* the best-so-far distance is seeded with one exact distance profile, which
  makes the very first bound already tight enough to prune most boxes.

The PAA lower bound ``sqrt(m/s)·||paa(a) − paa(b)||₂ ≤ d(a, b)`` guarantees
exactness.  Like the original, the algorithm answers one length at a time;
:func:`quick_motif_range` re-runs it for every length of a range, which is
how the paper adapts it for the comparison of Figure 3.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List

import numpy as np

from repro.baselines.base import RangeDiscoveryResult
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.distance_profile import distance_profile
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.profile import MotifPair
from repro.series.validation import (
    validate_length_range,
    validate_series,
    validate_subsequence_length,
)
from repro.stats.sliding import SlidingStats
from repro.stats.znorm import STD_EPSILON

__all__ = ["quick_motif", "quick_motif_range"]


def _paa_of_all_subsequences(
    values: np.ndarray, window: int, segments: int, stats: SlidingStats
) -> tuple[np.ndarray, np.ndarray]:
    """PAA summary of every z-normalised subsequence.

    Returns ``(paa, widths)`` where ``paa[i, k]`` is the mean of segment ``k``
    of the z-normalised subsequence at offset ``i`` and ``widths[k]`` is the
    number of points of that segment.  The exact lower bound on the
    z-normalised Euclidean distance is then
    ``sqrt(sum_k widths[k] · (paa_a[k] − paa_b[k])²)``, which remains valid
    for unequal segment widths.
    """
    count = values.size - window + 1
    edges = np.linspace(0, window, segments + 1).round().astype(int)
    widths = np.maximum(np.diff(edges), 0).astype(np.float64)
    means, stds = stats.mean_std(window)
    csum = np.concatenate(([0.0], np.cumsum(values)))
    paa = np.empty((count, segments), dtype=np.float64)
    offsets = np.arange(count)
    for segment in range(segments):
        start, stop = edges[segment], edges[segment + 1]
        width = max(stop - start, 1)
        segment_sum = csum[offsets + stop] - csum[offsets + start]
        paa[:, segment] = segment_sum / width
    safe_stds = np.where(stds <= STD_EPSILON, 1.0, stds)
    paa = (paa - means[:, np.newaxis]) / safe_stds[:, np.newaxis]
    paa[stds <= STD_EPSILON] = 0.0
    return paa, widths


def _exact_distance(
    values: np.ndarray,
    first: int,
    second: int,
    window: int,
    means: np.ndarray,
    stds: np.ndarray,
) -> float:
    """Exact z-normalised distance between two subsequences of the series."""
    sigma_a, sigma_b = stds[first], stds[second]
    if sigma_a <= 0.0 and sigma_b <= 0.0:
        return 0.0
    if sigma_a <= 0.0 or sigma_b <= 0.0:
        return float(np.sqrt(window))
    a = values[first : first + window]
    b = values[second : second + window]
    dot = float(np.dot(a, b))
    correlation = (dot - window * means[first] * means[second]) / (
        window * sigma_a * sigma_b
    )
    correlation = min(max(correlation, -1.0), 1.0)
    return float(np.sqrt(max(2.0 * window * (1.0 - correlation), 0.0)))


def quick_motif(
    series,
    window: int,
    *,
    segments: int = 8,
    group_size: int | None = None,
    exclusion_factor: int = 4,
) -> MotifPair:
    """Best motif pair of one length via PAA/MBR best-first search.

    Parameters
    ----------
    segments:
        Number of PAA coefficients per subsequence (more segments = tighter
        bounds, higher summarisation cost).
    group_size:
        Number of consecutive subsequences per MBR; defaults to roughly
        ``sqrt(n)`` which balances the number of boxes against their size.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    if segments < 1:
        raise InvalidParameterError(f"segments must be >= 1, got {segments}")
    segments = min(segments, window)
    count = values.size - window + 1
    if group_size is None:
        group_size = max(4, int(np.sqrt(count)))
    if group_size < 1:
        raise InvalidParameterError(f"group_size must be >= 1, got {group_size}")
    radius = default_exclusion_radius(window, exclusion_factor)

    stats = SlidingStats(values)
    means, stds = stats.mean_std(window)
    paa, widths = _paa_of_all_subsequences(values, window, segments, stats)

    # Build MBRs over runs of consecutive subsequences.
    boundaries = list(range(0, count, group_size)) + [count]
    boxes = []
    for box_id in range(len(boundaries) - 1):
        start, stop = boundaries[box_id], boundaries[box_id + 1]
        block = paa[start:stop]
        boxes.append((start, stop, block.min(axis=0), block.max(axis=0)))

    # Seed the best-so-far with one exact distance profile (cheap, tightens
    # the pruning threshold immediately).
    seed_profile = distance_profile(values, 0, window, stats=stats, exclusion_radius=radius)
    seed_best = int(np.argmin(seed_profile))
    best_distance = float(seed_profile[seed_best]) if np.isfinite(seed_profile[seed_best]) else np.inf
    best_pair = (
        MotifPair(distance=best_distance, offset_a=0, offset_b=seed_best, window=window)
        if np.isfinite(best_distance)
        else None
    )

    # Order candidate box pairs by their box-to-box lower bound.
    heap: List[tuple[float, int, int]] = []
    for i, (start_i, stop_i, low_i, high_i) in enumerate(boxes):
        for j in range(i, len(boxes)):
            start_j, stop_j, low_j, high_j = boxes[j]
            if i == j:
                box_bound = 0.0
            else:
                gap = np.maximum(0.0, np.maximum(low_i - high_j, low_j - high_i))
                box_bound = float(np.sqrt(np.sum(widths * gap * gap)))
            heapq.heappush(heap, (box_bound, i, j))

    pairs_evaluated = 0
    while heap:
        box_bound, i, j = heapq.heappop(heap)
        if best_pair is not None and box_bound >= best_distance:
            break
        start_i, stop_i, _, _ = boxes[i]
        start_j, stop_j, _, _ = boxes[j]
        for a in range(start_i, stop_i):
            # PAA lower bound of a against every member of box j, vectorised.
            diffs = paa[start_j:stop_j] - paa[a]
            paa_bounds = np.sqrt(np.einsum("ij,j,ij->i", diffs, widths, diffs))
            for local, b in enumerate(range(start_j, stop_j)):
                if abs(a - b) <= radius:
                    continue
                if best_pair is not None and paa_bounds[local] >= best_distance:
                    continue
                distance = _exact_distance(values, a, b, window, means, stds)
                pairs_evaluated += 1
                if distance < best_distance:
                    best_distance = distance
                    best_pair = MotifPair(
                        distance=distance, offset_a=a, offset_b=b, window=window
                    )

    if best_pair is None:
        raise InvalidParameterError(
            "the exclusion constraints left no candidate motif pair; "
            "use a shorter window or a smaller exclusion factor"
        )
    return best_pair


def quick_motif_range(
    series,
    min_length: int,
    max_length: int,
    *,
    length_step: int = 1,
    segments: int = 8,
    group_size: int | None = None,
    exclusion_factor: int = 4,
) -> RangeDiscoveryResult:
    """Re-run :func:`quick_motif` for every length of a range (paper adaptation)."""
    values = validate_series(series)
    min_length, max_length = validate_length_range(values.size, min_length, max_length)
    lengths = list(range(min_length, max_length + 1, length_step))
    if lengths[-1] != max_length:
        lengths.append(max_length)

    started = time.perf_counter()
    motifs_by_length: Dict[int, List[MotifPair]] = {}
    for length in lengths:
        motifs_by_length[length] = [
            quick_motif(
                values,
                length,
                segments=segments,
                group_size=group_size,
                exclusion_factor=exclusion_factor,
            )
        ]
    elapsed = time.perf_counter() - started
    return RangeDiscoveryResult(
        algorithm="quickmotif-range",
        motifs_by_length=motifs_by_length,
        elapsed_seconds=elapsed,
        extra={"lengths_evaluated": float(len(lengths))},
    )
