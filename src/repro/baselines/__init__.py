"""Competitor algorithms used in the paper's experimental comparison.

The paper compares VALMOD against:

* **STOMP** (Zhu et al., ICDM 2016) — a fixed-length exact algorithm, adapted
  by re-running it for every length of the range
  (:func:`~repro.baselines.stomp_range.stomp_range`);
* **QUICKMOTIF** (Li et al., ICDE 2015) — a fixed-length bounding-based motif
  finder, likewise re-run per length
  (:func:`~repro.baselines.quick_motif.quick_motif`,
  :func:`~repro.baselines.quick_motif.quick_motif_range`);
* **MOEN** (Mueen, ICDM 2013) — an exact enumeration of the best motif of
  every length in a range (:func:`~repro.baselines.moen.moen`).

A brute-force range algorithm is included as the correctness oracle.
"""

from repro.baselines.base import RangeDiscoveryResult
from repro.baselines.brute_force_range import brute_force_range
from repro.baselines.moen import moen
from repro.baselines.quick_motif import quick_motif, quick_motif_range
from repro.baselines.stomp_range import stomp_range

__all__ = [
    "RangeDiscoveryResult",
    "brute_force_range",
    "moen",
    "quick_motif",
    "quick_motif_range",
    "stomp_range",
]
