"""Brute-force variable-length motif discovery (correctness oracle).

Computes, for every length of the range, the full matrix profile directly
from the distance definition — ``O(n²·m)`` per length.  Only usable on small
series; it exists so the test suite can verify that VALMOD and every faster
baseline return exactly the same motif distances.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.baselines.base import RangeDiscoveryResult
from repro.matrix_profile.brute_force import brute_force_matrix_profile
from repro.matrix_profile.profile import MotifPair
from repro.series.validation import validate_length_range, validate_series

__all__ = ["brute_force_range"]


def brute_force_range(
    series,
    min_length: int,
    max_length: int,
    *,
    top_k: int = 3,
    length_step: int = 1,
    exclusion_factor: int = 4,
) -> RangeDiscoveryResult:
    """Exact top-k motif pairs of every length, from the distance definition."""
    values = validate_series(series)
    min_length, max_length = validate_length_range(values.size, min_length, max_length)
    lengths = list(range(min_length, max_length + 1, length_step))
    if lengths[-1] != max_length:
        lengths.append(max_length)

    started = time.perf_counter()
    motifs_by_length: Dict[int, List[MotifPair]] = {}
    for length in lengths:
        profile = brute_force_matrix_profile(values, length)
        motifs_by_length[length] = profile.motifs(top_k)
    elapsed = time.perf_counter() - started
    return RangeDiscoveryResult(
        algorithm="brute-force-range",
        motifs_by_length=motifs_by_length,
        elapsed_seconds=elapsed,
        extra={"lengths_evaluated": float(len(lengths))},
    )
