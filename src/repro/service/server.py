"""The asyncio HTTP front-end over :class:`~repro.api.requests.AnalysisRequest`.

This is the "system that serves the envelope": a stdlib-only HTTP/1.1
server (``asyncio.start_server`` + a minimal request parser, no external
dependencies) that accepts ``AnalysisRequest`` JSON documents, routes them
through a shared :class:`~repro.api.Analysis` session per series content
digest, and returns :class:`~repro.api.requests.AnalysisResult` envelopes.

Execution model
---------------
Connection handlers never compute.  A ``POST /analyze`` body is parsed and
enqueued on a **bounded** :class:`asyncio.Queue`; a fixed pool of worker
tasks drains it in FIFO order, running each computation on a thread
executor so the event loop keeps answering health checks and new
submissions while a profile is being computed.  A full queue answers
``503`` immediately — real backpressure instead of unbounded buffering,
which is what the single-core tier-1 environment can actually exercise and
assert on (the concurrency tests check correctness and queue ordering, not
parallel speedup).

Sessions and caching
--------------------
Series are identified by content digest (:func:`repro.api.cache.series_digest`).
Each digest owns one session in a bounded LRU pool, so repeated traffic
about the same series shares validation, sliding statistics, memoized FFT
products and the session's LRU result cache; with a
:class:`~repro.api.cache.CacheConfig` ``persist_dir`` the envelopes also
spill to disk and survive the process.  Every ``/analyze`` response reports
where its result came from (``"memory"`` / ``"persistent"`` /
``"computed"``) in the ``cache`` field.

Protocol
--------
================ ======= ==================================================
``GET /health``          liveness + queue depth
``GET /capabilities``    the algorithm registry's capability table
``GET /stats``           counters, completion order, per-session cache info
``POST /analyze``        ``{"series": [...], "request": {...}}`` → envelope
================ ======= ==================================================

The ``/analyze`` response wraps the envelope:
``{"result": <AnalysisResult.as_dict()>, "cache": "...", "id": ...,
"series_digest": "..."}``.  Errors come back as JSON objects with an
``error`` field: ``400`` for malformed documents, ``422`` for requests the
library rejects, ``503`` when the queue is full.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.api.cache import CacheConfig, series_digest
from repro.api.registry import capabilities
from repro.api.requests import AnalysisRequest
from repro.api.session import Analysis, EngineConfig
from repro.exceptions import (
    InvalidParameterError,
    ReproError,
    SerializationError,
    ServiceError,
)

__all__ = ["ServiceConfig", "AnalysisService", "BackgroundService", "serve_forever"]

#: Hard body cap.  Bounds how long the event loop can stall on json.loads
#: of one submission (~64MB is a ~3.5M-point series as a JSON array) —
#: pure-CPU parsing cannot be usefully offloaded under the GIL, so the cap
#: IS the latency bound; a streaming upload is a listed ROADMAP follow-up.
_MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADER_LINE = 64 * 1024
#: Read timeouts: an idle socket may not pin a handler (or, worse, an
#: intake permit) forever — see _read_request.
_HEADER_TIMEOUT_SECONDS = 30.0
_BODY_TIMEOUT_SECONDS = 120.0
#: Completed-sequence history kept for /stats (enough for the FIFO tests
#: and operational spot checks; unbounded growth would contradict the
#: layer's whole bounded-memory story).
_COMPLETION_HISTORY = 4096


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service needs to listen and execute.

    Attributes
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (the bound port is
        readable as :attr:`AnalysisService.port` after start — the tests
        rely on this).
    workers:
        Worker tasks draining the request queue (and threads executing the
        computations).  ``1`` gives strict FIFO execution.
    backlog:
        Bound of the request queue; a submission beyond it is answered
        ``503`` instead of buffered.
    max_sessions:
        Most per-series :class:`~repro.api.Analysis` sessions kept alive
        (LRU eviction beyond it).
    cache:
        Result-cache configuration handed to every session (LRU bounds +
        optional persistent spill directory).
    engine:
        Execution configuration handed to every session.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 1
    backlog: int = 32
    max_sessions: int = 8
    cache: CacheConfig = field(default_factory=CacheConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        if int(self.workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {self.workers}")
        if int(self.backlog) < 1:
            raise InvalidParameterError(f"backlog must be >= 1, got {self.backlog}")
        if int(self.max_sessions) < 1:
            raise InvalidParameterError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )


class _SessionPool:
    """Bounded LRU pool of per-digest sessions (thread-safe).

    Each slot carries the session and a lock: worker threads serialise
    computations on the *same* series (the session object is not designed
    for concurrent mutation) while different series proceed independently.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config
        self._sessions: "OrderedDict[str, Tuple[Analysis, threading.Lock]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def get_or_create(
        self, digest: str, values: np.ndarray, name: str
    ) -> Tuple[Analysis, threading.Lock]:
        with self._lock:
            slot = self._sessions.get(digest)
            if slot is not None:
                self._sessions.move_to_end(digest)
                return slot
        # Session construction validates the series; do it outside the pool
        # lock so a malformed submission cannot stall other lookups.
        session = Analysis(
            values,
            name=name,
            engine=self._config.engine,
            cache_config=self._config.cache,
        )
        slot = (session, threading.Lock())
        with self._lock:
            raced = self._sessions.get(digest)
            if raced is not None:
                self._sessions.move_to_end(digest)
                return raced
            self._sessions[digest] = slot
            while len(self._sessions) > self._config.max_sessions:
                self._sessions.popitem(last=False)
            return slot

    def stats(self) -> List[dict]:
        with self._lock:
            slots = list(self._sessions.items())
        return [
            {
                "series_digest": digest,
                "series_name": session.name,
                "series_length": len(session),
                "cache": session.cache_info(),
            }
            for digest, (session, _) in slots
        ]


@dataclass
class _Job:
    """One queued ``/analyze`` submission."""

    sequence: int
    request_id: str
    digest: str
    values: np.ndarray
    series_name: str
    request: AnalysisRequest
    future: "asyncio.Future[dict]"


class AnalysisService:
    """The service object: start/stop lifecycle plus the request pipeline."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config or ServiceConfig()
        self._pool = _SessionPool(self._config)
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=self._config.backlog
        )
        # The queue bounds *accepted* work; this bounds the bodies being
        # buffered/parsed before acceptance, so server memory stays at
        # ~(backlog + workers + slack) x body cap even under a flood of
        # concurrent large POSTs.  Connections beyond it wait in kernel
        # socket buffers, not in Python memory.
        self._intake = asyncio.Semaphore(self._config.backlog + self._config.workers)
        self._server: asyncio.AbstractServer | None = None
        self._workers: List[asyncio.Task] = []
        self._executor = None  # created on start
        self._sequence = 0
        self._received = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        #: most recent sequence numbers in completion order — with
        #: ``workers=1`` this must equal enqueue order (the queue-ordering
        #: test asserts it); bounded so /stats stays cheap under sustained
        #: traffic.
        self._completion_order: "deque[int]" = deque(maxlen=_COMPLETION_HISTORY)

    @property
    def config(self) -> ServiceConfig:
        """The configuration the service was built with."""
        return self._config

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("the service is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and launch the worker pool."""
        if self._server is not None:
            raise ServiceError("the service is already running")
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=self._config.workers,
            thread_name_prefix="repro-service",
        )
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker_loop())
            for _ in range(self._config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )

    async def stop(self) -> None:
        """Stop listening, cancel the workers, fail queued jobs, release the
        executor.  Jobs still waiting in the queue get their futures failed
        (``503``) so their connection handlers — and clients — are released
        instead of hanging on futures nobody will ever resolve."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        while True:
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not job.future.done():
                job.future.set_exception(
                    ServiceError("the service is shutting down", status=503)
                )
            self._queue.task_done()
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Run until ``stop_event`` is set (the CLI's foreground loop)."""
        await self.start()
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------ #
    # the worker pool
    # ------------------------------------------------------------------ #
    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            try:
                payload = await loop.run_in_executor(
                    self._executor, self._execute_job, job
                )
            except ReproError as error:
                self._failed += 1
                if not job.future.done():
                    job.future.set_exception(error)
            except Exception as error:  # defensive: a worker must never die
                self._failed += 1
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError(f"internal error: {error}", status=500)
                    )
            else:
                self._completed += 1
                self._completion_order.append(job.sequence)
                if not job.future.done():
                    job.future.set_result(payload)
            finally:
                self._queue.task_done()

    def _execute_job(self, job: _Job) -> dict:
        """Runs on an executor thread: resolve the session, run, envelope."""
        session, lock = self._pool.get_or_create(
            job.digest, job.values, job.series_name
        )
        with lock:
            result, source = session.run_with_info(job.request)
        return {
            "id": job.request_id,
            "series_digest": job.digest,
            "cache": source,
            "result": result.as_dict(),
        }

    # ------------------------------------------------------------------ #
    # HTTP layer
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, target, body = await self._read_request(reader)
        except (
            ServiceError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            TimeoutError,
            ValueError,
        ):
            await self._respond(writer, 400, {"error": "malformed HTTP request"})
            return
        try:
            status, payload = await self._route(method, target, body)
        except ServiceError as error:
            status, payload = error.status or 500, {"error": str(error)}
        except (SerializationError, InvalidParameterError) as error:
            status, payload = 422, {"error": str(error)}
        except ReproError as error:
            status, payload = 422, {"error": str(error)}
        await self._respond(writer, status, payload)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        # Request line and headers are read WITHOUT an intake permit (an
        # idle socket must not starve /health or the 503 path) but under a
        # timeout, so a silent connection cannot pin this handler forever.
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=_HEADER_TIMEOUT_SECONDS
        )
        if not request_line:
            raise ServiceError("empty request", status=400)
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServiceError("malformed request line", status=400)
        method, target, _version = parts
        content_length = 0
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=_HEADER_TIMEOUT_SECONDS
            )
            if len(line) > _MAX_HEADER_LINE:
                raise ServiceError("header line too long", status=400)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length < 0 or content_length > _MAX_BODY_BYTES:
            raise ServiceError("invalid content length", status=400)
        if not content_length:
            return method.upper(), target, b""
        # Only the body buffering holds an intake permit: it is what makes
        # server memory proportional to concurrent uploads.  The permit is
        # released before the request waits for its computation, so it
        # never delays the queue-full 503 answer.
        async with self._intake:
            body = await asyncio.wait_for(
                reader.readexactly(content_length), timeout=_BODY_TIMEOUT_SECONDS
            )
        return method.upper(), target, body

    async def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            422: "Unprocessable Entity",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # client went away; nothing to clean up beyond the socket
        finally:
            # close() schedules the transport teardown; awaiting
            # wait_closed() here would race loop shutdown (handlers for
            # dying connections get cancelled mid-await and spam the loop's
            # exception handler) for no benefit.
            writer.close()

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, dict]:
        path = target.split("?", 1)[0]
        if method == "GET" and path == "/health":
            return 200, {
                "status": "ok",
                "queue_depth": self._queue.qsize(),
                "backlog": self._config.backlog,
                "workers": self._config.workers,
            }
        if method == "GET" and path == "/capabilities":
            return 200, {"algorithms": capabilities()}
        if method == "GET" and path == "/stats":
            return 200, self.stats()
        if method == "POST" and path == "/analyze":
            return await self._handle_analyze(body)
        if path in ("/health", "/capabilities", "/stats", "/analyze"):
            return 405, {"error": f"method {method} not allowed for {path}"}
        return 404, {"error": f"unknown path {path!r}"}

    async def _handle_analyze(self, body: bytes) -> Tuple[int, dict]:
        self._received += 1
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}
        if not isinstance(document, dict):
            return 400, {"error": "request body must be a JSON object"}
        raw_series = document.get("series")
        if not isinstance(raw_series, list) or not raw_series:
            return 400, {"error": "'series' must be a non-empty list of numbers"}
        try:
            values = np.asarray(raw_series, dtype=np.float64)
        except (TypeError, ValueError) as error:
            return 400, {"error": f"'series' is not numeric: {error}"}
        if values.ndim != 1:
            return 400, {"error": "'series' must be one-dimensional"}
        raw_request = document.get("request")
        if not isinstance(raw_request, dict):
            return 400, {"error": "'request' must be an AnalysisRequest object"}
        try:
            request = AnalysisRequest.from_dict(raw_request)
        except SerializationError as error:
            return 400, {"error": str(error)}

        self._sequence += 1
        job = _Job(
            sequence=self._sequence,
            request_id=str(document.get("id", self._sequence)),
            digest=series_digest(values),
            values=values,
            series_name=str(document.get("series_name", "series")),
            request=request,
            future=asyncio.get_running_loop().create_future(),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self._rejected += 1
            return 503, {
                "error": f"request queue is full ({self._config.backlog} pending)",
                "id": job.request_id,
            }
        payload = await job.future
        return 200, payload

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters, completion order and per-session cache info."""
        return {
            "received": self._received,
            "completed": self._completed,
            "failed": self._failed,
            "rejected": self._rejected,
            "queue_depth": self._queue.qsize(),
            "completion_order": list(self._completion_order),
            "sessions": self._pool.stats(),
        }


def serve_forever(config: ServiceConfig | None = None) -> None:
    """Run a service in the foreground until interrupted (the CLI path)."""

    async def _run() -> None:
        service = AnalysisService(config)
        await service.start()
        host = config.host if config else "127.0.0.1"
        print(f"repro analysis service listening on http://{host}:{service.port}")
        try:
            await asyncio.Event().wait()  # until cancelled by KeyboardInterrupt
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass


class BackgroundService:
    """A service running on its own thread/event loop (tests, benchmarks).

    Usage::

        with BackgroundService(ServiceConfig(port=0)) as service:
            client = ServiceClient(port=service.port)
            ...

    The context manager guarantees the loop is up (and the port bound) on
    entry and fully torn down on exit.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config or ServiceConfig(port=0)
        self._service: AnalysisService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None

    @property
    def service(self) -> AnalysisService:
        """The underlying service (valid while started)."""
        if self._service is None:
            raise ServiceError("the background service is not running")
        return self._service

    @property
    def port(self) -> int:
        """The bound port."""
        return self.service.port

    @property
    def host(self) -> str:
        """The bind host."""
        return self._config.host

    def __enter__(self) -> "BackgroundService":
        if self._thread is not None:
            raise ServiceError("the background service is already running")
        # Reset per-run state so one BackgroundService object can be
        # entered again after a clean exit (or a failed start).
        self._started = threading.Event()
        self._error = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("the background service did not start in time")
        if self._error is not None:
            raise ServiceError(f"the background service failed to start: {self._error}")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._service = None
        self._loop = None
        self._thread = None

    def _run(self) -> None:
        async def _main() -> None:
            self._service = AnalysisService(self._config)
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            try:
                await self._service.start()
            except BaseException as error:
                self._error = error
                self._started.set()
                return
            self._started.set()
            try:
                await self._stop.wait()
            finally:
                await self._service.stop()

        asyncio.run(_main())
