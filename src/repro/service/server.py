"""The asyncio HTTP front-end over :class:`~repro.api.requests.AnalysisRequest`.

This is the "system that serves the envelope": a stdlib-only HTTP/1.1
server (``asyncio.start_server`` + a minimal request parser, no external
dependencies) that accepts ``AnalysisRequest`` JSON documents, routes them
through a shared :class:`~repro.api.Analysis` session per series content
digest, and returns :class:`~repro.api.requests.AnalysisResult` envelopes.

Execution model
---------------
Connection handlers never compute.  A ``POST /analyze`` body is parsed and
enqueued on a **bounded** :class:`asyncio.Queue`; a fixed pool of worker
tasks drains it in FIFO order.  With the default ``worker_kind="thread"``
each computation runs on a thread executor; with ``worker_kind="process"``
the computation itself crosses into an engine
:class:`~repro.engine.executor.ParallelExecutor` process pool — the GIL
leaves the picture, so CPU-bound profile computations genuinely overlap.
Either way a full queue answers ``503`` immediately — real backpressure
instead of unbounded buffering.

The process data plane splits each job in three: the **parent** probes the
pooled session's caches (a hit never pays a process round-trip), a
**worker process** computes on a cache miss, and the parent **adopts** the
returned envelope back into the pooled session (cache tiers + motif
index), so thread and process workers observe identical cache semantics.
Workers never receive pickled value arrays when the service has a store:
the job ships a ~100-byte :class:`~repro.engine.shm.BlobHandle` and the
worker memory-maps the content-addressed blob file directly (zero-copy,
verified once per process).

Request pipelining
------------------
A kept-alive connection is served by a **reader loop + writer task** pair:
the reader keeps parsing and dispatching requests while earlier ones are
still computing, and the writer emits the responses strictly in request
order (HTTP/1.1 pipelining semantics).  A client may thus stuff several
``/analyze`` submissions down one socket and have them compute
concurrently — previously the connection was serial even though the
workers were not.  A bounded in-flight budget per connection keeps one
socket from monopolising the queue.

Sessions and caching
--------------------
Series are identified by content digest (:func:`repro.api.cache.series_digest`).
Each digest owns one session in a bounded LRU pool, so repeated traffic
about the same series shares validation, sliding statistics, memoized FFT
products and the session's LRU result cache; with a
:class:`~repro.api.cache.CacheConfig` ``persist_dir`` the envelopes also
spill to disk and survive the process.  Every ``/analyze`` response reports
where its result came from (``"memory"`` / ``"persistent"`` /
``"computed"``) in the ``cache`` field.

Series transport
----------------
Shipping the value array inside every ``/analyze`` document is the cold
path, not the protocol: a submission may carry ``"series_digest"`` instead
of ``"series"``, and the server resolves the digest against its session
pool and (when configured) its content-addressed
:class:`~repro.store.SeriesStore`.  An unresolvable digest answers ``404``
with an ``unknown_digest`` marker; :class:`~repro.service.ServiceClient`
reacts by uploading the series **once** through ``PUT /series/<digest>``
(raw little-endian float64 bytes, streamed chunk-by-chunk into the store's
verifying ingest — the series never exists server-side as one JSON array)
and retrying, so every later request for that series ships ~60 bytes of
digest instead of megabytes of values.

Protocol
--------
======================= ==================================================
``GET /health``         liveness + queue depth
``GET /capabilities``   the algorithm registry's capability table
``GET /stats``          counters, completion order, per-session cache info,
                        latency summaries
``GET /metrics``        per-kind latency histograms (queue wait / execute /
                        total, fixed log-spaced buckets)
``GET /series/<digest>``catalog metadata for one stored series (or 404)
``PUT /series/<digest>``chunked raw-float64 upload, digest-verified
``GET /query``          motif/discord catalog query (percent-encoded
                        ``kind``/``digest``/``name``/``length``/… params)
``POST /analyze``       ``{"series": [...] | "series_digest": "...",``
                        ``"request": {...}}`` → envelope
======================= ==================================================

Connections are **persistent** (HTTP/1.1 keep-alive): a client may issue
any number of requests over one socket; ``Connection: close`` (or HTTP/1.0
without ``keep-alive``) restores the old behaviour, and an idle socket is
dropped after a timeout.

The ``/analyze`` response wraps the envelope:
``{"result": <AnalysisResult.as_dict()>, "cache": "...", "id": ...,
"series_digest": "..."}``.  Errors come back as JSON objects with an
``error`` field: ``400`` for malformed documents, ``404`` for unknown
digests, ``422`` for requests the library rejects, ``503`` when the queue
is full.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple, Union
from urllib.parse import parse_qsl, unquote

import numpy as np

from repro import obs
from repro.api.cache import CacheConfig, series_digest
from repro.api.registry import capabilities
from repro.api.requests import AnalysisRequest, AnalysisResult
from repro.api.session import Analysis, EngineConfig
from repro.engine.executor import ParallelExecutor
from repro.engine.shm import BlobHandle, attach_blob
from repro.exceptions import (
    InvalidParameterError,
    ReproError,
    SerializationError,
    ServiceError,
    StoreError,
)
from repro.index import MotifIndex, QuerySpec
from repro.store import DEFAULT_STORE_MAX_BYTES, SeriesStore
from repro.store.series_store import is_series_digest

__all__ = ["ServiceConfig", "AnalysisService", "BackgroundService", "serve_forever"]

#: Hard body cap.  Bounds how long the event loop can stall on json.loads
#: of one submission (~64MB is a ~3.5M-point series as a JSON array) —
#: pure-CPU parsing cannot be usefully offloaded under the GIL, so the cap
#: IS the latency bound; a streaming upload is a listed ROADMAP follow-up.
_MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADER_LINE = 64 * 1024
#: Read timeouts: an idle socket may not pin a handler (or, worse, an
#: intake permit) forever — see _read_head.
_HEADER_TIMEOUT_SECONDS = 30.0
_BODY_TIMEOUT_SECONDS = 120.0
#: How long a kept-alive connection may sit idle between requests before
#: the server drops it (quietly — an expired idle socket is not an error).
_KEEPALIVE_IDLE_SECONDS = 75.0
#: Cap of one streamed series upload.  Far above the JSON body cap — the
#: chunked ingest never materialises the series, so the bound protects the
#: store, not the event loop.
_MAX_SERIES_BYTES = 1024 * 1024 * 1024
#: Socket read granularity of the streaming series upload.
_UPLOAD_CHUNK_BYTES = 256 * 1024
#: Completed-sequence history kept for /stats (enough for the FIFO tests
#: and operational spot checks; unbounded growth would contradict the
#: layer's whole bounded-memory story).
_COMPLETION_HISTORY = 4096
#: Most requests one connection may have in flight (parsed but not yet
#: answered).  The budget keeps a single pipelining client from buffering
#: unbounded responses or monopolising the request queue.
_MAX_PIPELINE_DEPTH = 64

#: Latency histogram bucket upper bounds: 100µs to 100s, four buckets per
#: decade.  Since PR 10 the canonical copy lives in the obs registry
#: (:data:`repro.obs.LATENCY_BUCKET_BOUNDS`); the alias keeps the service's
#: wire shape (`/metrics` ``bounds``) pinned to it by construction.
_LATENCY_BUCKET_BOUNDS = obs.LATENCY_BUCKET_BOUNDS
#: The phases each /analyze job is timed over: queue wait (enqueue to
#: dequeue), execute (dequeue to completion) and total (receipt to
#: completion — what the client experiences minus the socket).
_METRIC_PHASES = ("queue", "execute", "total")

#: How many ``/metrics`` snapshots the service retains for ``?since=``
#: windowing.  A scraper that falls more than this many scrapes behind gets
#: the full (process-lifetime) document back, flagged ``"window": "full"``.
_METRIC_SNAPSHOT_RING = 32

_SERVICE_METRICS = obs.scope("service")
_REQUESTS_RECEIVED = _SERVICE_METRICS.counter("requests_received")
_REQUESTS_COMPLETED = _SERVICE_METRICS.counter("requests_completed")
_REQUESTS_FAILED = _SERVICE_METRICS.counter("requests_failed")
_REQUESTS_REJECTED = _SERVICE_METRICS.counter("requests_rejected")
_PREWARM_GAUGE = _SERVICE_METRICS.gauge("prewarm_seconds")

#: Per-process cap of worker-side Analysis sessions (process workers).  A
#: worker serves many jobs over few distinct series; a handful of slots
#: keeps statistics/caches warm without letting worker memory track the
#: whole catalog.
_WORKER_SESSION_SLOTS = 4


class _ServiceMetrics:
    """Per-request-kind latency histograms behind ``GET /metrics``.

    Since PR 10 each ``(kind, phase)`` slot is a registry histogram named
    ``service.<kind>.<phase>`` — what used to be a private ``server.py``
    structure is just a view over :mod:`repro.obs`, so the same numbers are
    visible to ``repro metrics``, snapshot deltas and cross-process merges.
    The PR 8 wire shape (``bounds`` / ``phases`` / ``kinds``) is preserved
    verbatim; :meth:`AnalysisService._metrics_document` layers the new
    windowed registry view on top.
    """

    def __init__(self) -> None:
        # A private registry (always on) rather than the process default:
        # latency numbers are per-service-instance — two services in one
        # test process must not bleed counts into each other — and they
        # must keep recording even when ``REPRO_OBS=0`` silences the
        # hot-path instrumentation (the PR 8 behaviour).  The /metrics
        # document merges this registry's snapshot with the global one.
        self._registry = obs.MetricsRegistry(enabled=True)
        self._kinds: "Dict[str, Dict[str, obs.Histogram]]" = {}

    def observe(self, kind: str, **phases: float) -> None:
        slot = self._kinds.get(kind)
        if slot is None:
            slot = {
                phase: self._registry.histogram(f"service.{kind}.{phase}")
                for phase in _METRIC_PHASES
            }
            self._kinds[kind] = slot
        for phase, seconds in phases.items():
            slot[phase].observe(max(0.0, float(seconds)))

    def registry_snapshot(self) -> dict:
        """This service's latency histograms as a registry snapshot."""
        return self._registry.snapshot()

    def document(self) -> dict:
        """The full ``/metrics`` payload (bounds shared across histograms)."""
        return {
            "bounds": list(_LATENCY_BUCKET_BOUNDS),
            "phases": list(_METRIC_PHASES),
            "kinds": {
                kind: {phase: hist.as_dict() for phase, hist in slot.items()}
                for kind, slot in self._kinds.items()
            },
        }

    @staticmethod
    def _quantile(hist: "obs.Histogram", q: float) -> float | None:
        if not hist.count:
            return None
        value = hist.quantile(q)
        # The overflow bucket has no upper bound; report the last finite
        # bound (the pre-registry behaviour, and JSON-safe).
        if value == float("inf"):
            return hist.bounds[-1]
        return value

    def _summarise(self, hist: "obs.Histogram") -> dict:
        count = hist.count
        return {
            "count": count,
            "mean": (hist.sum / count) if count else None,
            "p50": self._quantile(hist, 0.5),
            "p95": self._quantile(hist, 0.95),
        }

    def summary(self) -> dict:
        """Compact per-kind summaries (count/mean/p50/p95) for ``/stats``."""
        return {
            kind: {phase: self._summarise(hist) for phase, hist in slot.items()}
            for kind, slot in self._kinds.items()
        }


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the service needs to listen and execute.

    Attributes
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (the bound port is
        readable as :attr:`AnalysisService.port` after start — the tests
        rely on this).
    workers:
        Worker tasks draining the request queue (and threads or processes
        executing the computations).  ``1`` gives strict FIFO execution.
    worker_kind:
        ``"thread"`` (default) runs computations on a thread executor;
        ``"process"`` routes them through an engine process pool so
        CPU-bound jobs overlap without the GIL.  An environment that cannot
        host a process pool degrades to threads (with a warning) rather
        than failing to start.
    backlog:
        Bound of the request queue; a submission beyond it is answered
        ``503`` instead of buffered.
    max_sessions:
        Most per-series :class:`~repro.api.Analysis` sessions kept alive
        (LRU eviction beyond it).
    cache:
        Result-cache configuration handed to every session (LRU bounds +
        optional persistent spill directory).
    engine:
        Execution configuration handed to every session.
    store_dir:
        Optional root of a content-addressed
        :class:`~repro.store.SeriesStore`: uploaded series persist there
        and digest-only submissions resolve through it (without a store the
        catalog is the in-memory session pool alone, so uploads survive
        only until LRU eviction).
    store_max_bytes:
        Byte cap of that store (``None`` disables the cap).
    index_dir:
        Optional directory of a :class:`~repro.index.MotifIndex` catalog:
        every computed result is indexed automatically, ``GET /query``
        answers cross-series motif/discord queries over it, and store
        evictions prune its rows.  Without it ``/query`` answers 404.
    prewarm:
        When true and the worker kind is ``"process"``, :meth:`start`
        spawns the pool and round-trips a ping through every worker before
        the socket accepts traffic, so the first request does not pay the
        multi-hundred-millisecond pool spawn.  The measured warm-up time is
        published as the ``service.prewarm_seconds`` gauge.
    """

    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 1
    worker_kind: str = "thread"
    backlog: int = 32
    max_sessions: int = 8
    cache: CacheConfig = field(default_factory=CacheConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    store_dir: object | None = None
    store_max_bytes: int | None = DEFAULT_STORE_MAX_BYTES
    index_dir: object | None = None
    prewarm: bool = False

    def __post_init__(self) -> None:
        if int(self.workers) < 1:
            raise InvalidParameterError(f"workers must be >= 1, got {self.workers}")
        if self.worker_kind not in ("thread", "process"):
            raise InvalidParameterError(
                f"worker_kind must be 'thread' or 'process', got {self.worker_kind!r}"
            )
        if int(self.backlog) < 1:
            raise InvalidParameterError(f"backlog must be >= 1, got {self.backlog}")
        if int(self.max_sessions) < 1:
            raise InvalidParameterError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )


class _SessionPool:
    """Bounded LRU pool of per-digest sessions (thread-safe).

    Each slot carries the session and a lock: worker threads serialise
    computations on the *same* series (the session object is not designed
    for concurrent mutation) while different series proceed independently.
    """

    def __init__(self, config: ServiceConfig, index=None) -> None:
        self._config = config
        self._index = index
        self._sessions: "OrderedDict[str, Tuple[Analysis, threading.Lock]]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()

    def get_or_create(
        self, digest: str, values: np.ndarray, name: str
    ) -> Tuple[Analysis, threading.Lock]:
        with self._lock:
            slot = self._sessions.get(digest)
            if slot is not None:
                self._sessions.move_to_end(digest)
                return slot
        # Session construction validates the series; do it outside the pool
        # lock so a malformed submission cannot stall other lookups.
        session = Analysis(
            values,
            name=name,
            engine=self._config.engine,
            cache_config=self._config.cache,
            index=self._index,
        )
        slot = (session, threading.Lock())
        evicted: List[Tuple[Analysis, threading.Lock]] = []
        with self._lock:
            raced = self._sessions.get(digest)
            if raced is not None:
                self._sessions.move_to_end(digest)
                return raced
            self._sessions[digest] = slot
            while len(self._sessions) > self._config.max_sessions:
                _, old_slot = self._sessions.popitem(last=False)
                evicted.append(old_slot)
        # Outside the pool lock, but under each slot's own lock: close()
        # unlinks the session's shared-memory segments, and an evicted
        # session may still be mid-computation on another worker thread —
        # unlinking under it would fail its in-flight engine run.
        for old_session, old_lock in evicted:
            with old_lock:
                old_session.close()
        return slot

    def lookup_values(self, digest: str) -> np.ndarray | None:
        """The values of a pooled session, without creating one.

        The cheap half of digest resolution: a hot series answers straight
        from the pool (promoting the session), the store is only consulted
        on a pool miss.
        """
        with self._lock:
            slot = self._sessions.get(digest)
            if slot is None:
                return None
            self._sessions.move_to_end(digest)
            return slot[0].values

    def close_all(self) -> None:
        """Close every pooled session (service shutdown): shared-memory
        segments are owned by sessions and must not outlive the service.
        Each close waits on its slot lock so a computation still draining
        is not undercut (see the eviction path)."""
        with self._lock:
            slots = list(self._sessions.values())
            self._sessions.clear()
        for session, lock in slots:
            with lock:
                session.close()

    def stats(self) -> List[dict]:
        with self._lock:
            slots = list(self._sessions.items())
        return [
            {
                "series_digest": digest,
                "series_name": session.name,
                "series_length": len(session),
                "cache": session.cache_info(),
            }
            for digest, (session, _) in slots
        ]


class _CloseAfterResponse(Exception):
    """A request error whose response must be followed by a socket close.

    Raised when the error is detected *before* the request body was
    consumed: the framing of the connection is gone (unread body bytes
    would be parsed as the next request line), so keep-alive must not
    survive the response.
    """

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(payload.get("error", "request failed"))
        self.status = status
        self.payload = payload


@dataclass
class _Job:
    """One queued ``/analyze`` submission."""

    sequence: int
    request_id: str
    digest: str
    values: np.ndarray
    series_name: str
    request: AnalysisRequest
    future: "asyncio.Future[dict]"
    #: ``time.monotonic()`` at request receipt / enqueue — the worker loop
    #: derives the queue-wait and total latencies from these.
    received_at: float = 0.0
    enqueued_at: float = 0.0
    #: ``time.time()`` at enqueue — trace spans are wall-clock based.
    enqueued_wall: float = 0.0
    #: Parsed ``X-Repro-Trace`` payload (or ``None``): the executing path
    #: adopts it so server-side spans join the client's trace tree.
    trace: object = None


@dataclass(frozen=True)
class _WorkerTask:
    """Picklable description of one computation for a process worker.

    ``series`` is a :class:`~repro.engine.shm.BlobHandle` whenever the
    parent's store has the blob (the zero-copy path) and the raw values
    array otherwise; ``request`` and ``engine`` travel as their JSON dict
    forms — the objects rebuild cheaply and the dicts pickle predictably.
    """

    digest: str
    series: object
    series_name: str
    request: dict
    engine: dict
    #: Parent obs payload (or ``None``): the worker process adopts it,
    #: records its spans/metrics locally and ships the harvest back under
    #: the ``"obs"`` key of its result document.
    trace: object = None


#: Worker-process session LRU, keyed by series digest.  Reusing a session
#: across jobs keeps its sliding statistics, memoized FFT products and
#: result cache warm — the per-process mirror of the parent's session pool.
_WORKER_SESSIONS: "OrderedDict[str, Analysis]" = OrderedDict()


def _worker_session(task: _WorkerTask) -> Analysis:
    """The per-process session for one task's series (created on miss)."""
    session = _WORKER_SESSIONS.get(task.digest)
    if session is not None:
        _WORKER_SESSIONS.move_to_end(task.digest)
        return session
    series = task.series
    if isinstance(series, BlobHandle):
        # Zero-copy attach: the blob is memory-mapped and content-verified
        # once per process (the attach cache in repro.engine.shm).
        series = attach_blob(series)
    session = Analysis(
        series,
        name=task.series_name,
        engine=EngineConfig.from_dict(task.engine),
    )
    while len(_WORKER_SESSIONS) >= _WORKER_SESSION_SLOTS:
        _, evicted = _WORKER_SESSIONS.popitem(last=False)
        evicted.close()
    _WORKER_SESSIONS[task.digest] = session
    return session


def _execute_worker_task(task: _WorkerTask) -> dict:
    """Run one task inside a worker process (top level: must be picklable).

    Returns the result envelope as a JSON-ready dict — the parent adopts it
    into its pooled session.  :class:`~repro.exceptions.ReproError` crosses
    the pool boundary as-is (the hierarchy pickles), keeping the parent's
    error mapping identical to the thread path.
    """
    if task.trace is None:
        session = _worker_session(task)
        request = AnalysisRequest.from_dict(task.request)
        result, source = session.run_with_info(request)
        return {"cache": source, "result": result.as_dict()}
    with obs.remote_task(task.trace, skip_same_process=True) as remote:
        with obs.span("service.worker", kind=task.request.get("kind")):
            session = _worker_session(task)
            request = AnalysisRequest.from_dict(task.request)
            result, source = session.run_with_info(request)
    document = {"cache": source, "result": result.as_dict()}
    blob = remote.harvest()
    if blob is not None:
        document["obs"] = blob
    return document


class AnalysisService:
    """The service object: start/stop lifecycle plus the request pipeline."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config or ServiceConfig()
        self._index = (
            None
            if self._config.index_dir is None
            else MotifIndex(self._config.index_dir)
        )
        self._pool = _SessionPool(self._config, index=self._index)
        self._store = (
            None
            if self._config.store_dir is None
            else SeriesStore(
                self._config.store_dir, max_bytes=self._config.store_max_bytes
            )
        )
        if self._store is not None and self._index is not None:
            # A series leaving the store takes its catalog rows with it.
            self._store.subscribe_removal(self._index.remove_series)
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue(
            maxsize=self._config.backlog
        )
        # The queue bounds *accepted* work; this bounds the bodies being
        # buffered/parsed before acceptance, so server memory stays at
        # ~(backlog + workers + slack) x body cap even under a flood of
        # concurrent large POSTs.  Connections beyond it wait in kernel
        # socket buffers, not in Python memory.
        self._intake = asyncio.Semaphore(self._config.backlog + self._config.workers)
        self._server: asyncio.AbstractServer | None = None
        self._workers: List[asyncio.Task] = []
        self._executor = None  # thread executor: offloads + thread workers
        self._compute: ParallelExecutor | None = None  # process workers
        #: Jobs dequeued but not yet resolved — stop() must fail these too,
        #: or their connection handlers hang on futures nobody settles.
        self._inflight: "Dict[int, _Job]" = {}
        #: Future-backed responses parsed but not yet written to their
        #: sockets.  ``stop()`` fails every unresolved job future, then
        #: waits (bounded) on this event so the 503s actually reach the
        #: clients before the caller tears the loop down.
        self._pending_futures = 0
        self._futures_flushed = asyncio.Event()
        self._futures_flushed.set()
        self._metrics = _ServiceMetrics()
        #: Retained /metrics snapshots keyed by their opaque window token —
        #: a scraper passing ``?since=<token>`` gets the delta against the
        #: snapshot that token named (the "no windowing" fix: counters no
        #: longer have to be diffed client-side against a process lifetime).
        self._metric_snapshots: "OrderedDict[str, dict]" = OrderedDict()
        self._metric_window_seq = 0
        self._zero_copy = 0
        self._sequence = 0
        self._received = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._connections = 0
        self._uploads = 0
        #: most recent sequence numbers in completion order — with
        #: ``workers=1`` this must equal enqueue order (the queue-ordering
        #: test asserts it); bounded so /stats stays cheap under sustained
        #: traffic.
        self._completion_order: "deque[int]" = deque(maxlen=_COMPLETION_HISTORY)

    @property
    def config(self) -> ServiceConfig:
        """The configuration the service was built with."""
        return self._config

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("the service is not listening")
        return int(self._server.sockets[0].getsockname()[1])

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and launch the worker pool.

        A failure after resources were acquired — typically the bind
        raising ``EADDRINUSE`` — unwinds everything already started, so a
        caught start error leaves no leaked executor threads, process pool
        or orphaned worker tasks behind (the bind-conflict regression test
        retries on a fresh port with the same service object's config).
        """
        if self._server is not None:
            raise ServiceError("the service is already running")
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=self._config.workers,
            thread_name_prefix="repro-service",
        )
        try:
            if self._config.worker_kind == "process":
                candidate = ParallelExecutor(self._config.workers)
                # uses_processes forces pool creation; an environment that
                # cannot host one already warned and degrades to threads.
                if candidate.uses_processes:
                    self._compute = candidate
            if self._config.prewarm and self._compute is not None:
                # Round-trip a ping through every pool worker before the
                # socket accepts traffic: the first request pays neither the
                # pool spawn nor the interpreter start of its worker.  Off
                # the event loop — spawning is hundreds of milliseconds.
                warmed = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._compute.prewarm
                )
                _PREWARM_GAUGE.set(float(warmed))
            self._workers = [
                asyncio.get_running_loop().create_task(self._worker_loop())
                for _ in range(self._config.workers)
            ]
            self._server = await asyncio.start_server(
                self._handle_connection, self._config.host, self._config.port
            )
        except BaseException:
            await self._unwind_start()
            raise

    async def _unwind_start(self) -> None:
        """Roll back a partially-completed :meth:`start` (no leaks)."""
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        self._shutdown_executors()

    def _shutdown_executors(self) -> None:
        """Release both executors without waiting on in-flight work."""
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None
        if self._compute is not None:
            self._compute.close(wait=False, cancel_futures=True)
            self._compute = None

    async def stop(self) -> None:
        """Stop listening, cancel the workers, fail queued **and in-flight**
        jobs, release the executors.  Every unresolved job future gets a
        ``503`` so its connection handler — and client — is released instead
        of hanging on a future nobody will ever settle (cancelling a worker
        task abandons its ``run_in_executor`` await without resolving the
        job it was driving)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for worker in self._workers:
            worker.cancel()
        for worker in self._workers:
            try:
                await worker
            except asyncio.CancelledError:
                pass
        self._workers = []
        for job in list(self._inflight.values()):
            if not job.future.done():
                job.future.set_exception(
                    ServiceError("the service is shutting down", status=503)
                )
        self._inflight.clear()
        while True:
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if not job.future.done():
                job.future.set_exception(
                    ServiceError("the service is shutting down", status=503)
                )
            self._queue.task_done()
        # The 503s above only *settled* the futures; give the connection
        # writers a bounded window to actually put them on the wire before
        # the caller tears the event loop down under them.
        try:
            await asyncio.wait_for(self._futures_flushed.wait(), timeout=5.0)
        except (asyncio.TimeoutError, TimeoutError):
            pass
        self._shutdown_executors()
        # Sessions own shared-memory segments; unlink them with the service.
        self._pool.close_all()
        if self._index is not None:
            self._index.close()

    async def serve_until(self, stop_event: asyncio.Event) -> None:
        """Run until ``stop_event`` is set (the CLI's foreground loop)."""
        await self.start()
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------ #
    # the worker pool
    # ------------------------------------------------------------------ #
    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            # Registered before any await so stop() can fail this job's
            # future if the service dies mid-computation.
            self._inflight[job.sequence] = job
            dequeued = time.monotonic()
            try:
                if self._compute is not None:
                    payload = await self._execute_job_process(job, loop)
                else:
                    payload = await loop.run_in_executor(
                        self._executor, self._execute_job, job
                    )
            except asyncio.CancelledError:
                # Only stop()/_unwind_start() cancel workers: the abandoned
                # job must still answer, or its connection (and client)
                # waits on a future nobody will ever settle.
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError("the service is shutting down", status=503)
                    )
                raise
            except ReproError as error:
                self._failed += 1
                _REQUESTS_FAILED.inc()
                if not job.future.done():
                    job.future.set_exception(error)
            except Exception as error:  # defensive: a worker must never die
                self._failed += 1
                _REQUESTS_FAILED.inc()
                if not job.future.done():
                    job.future.set_exception(
                        ServiceError(f"internal error: {error}", status=500)
                    )
            else:
                done = time.monotonic()
                self._completed += 1
                _REQUESTS_COMPLETED.inc()
                self._completion_order.append(job.sequence)
                self._metrics.observe(
                    job.request.kind,
                    queue=dequeued - job.enqueued_at,
                    execute=done - dequeued,
                    total=done - job.received_at,
                )
                if not job.future.done():
                    job.future.set_result(payload)
            finally:
                self._inflight.pop(job.sequence, None)
                self._queue.task_done()

    def _execute_job(self, job: _Job) -> dict:
        """Runs on an executor thread: resolve the session, run, envelope."""
        if job.trace is None:
            return self._execute_job_inner(job)
        # Same-process adoption: metric recordings already land in the live
        # registry, so only span events are captured and shipped back (in
        # the response envelope's "trace" key, for the client to absorb).
        with obs.remote_task(job.trace, capture_metrics=False) as remote:
            with obs.span(
                "service.request", kind=job.request.kind, worker="thread"
            ):
                self._record_queue_span(job)
                payload = self._execute_job_inner(job)
        blob = remote.harvest()
        if blob is not None and blob.get("events"):
            payload["trace"] = {"events": blob["events"]}
        return payload

    def _execute_job_inner(self, job: _Job) -> dict:
        session, lock = self._pool.get_or_create(
            job.digest, job.values, job.series_name
        )
        with lock:
            result, source = session.run_with_info(job.request)
        return {
            "id": job.request_id,
            "series_digest": job.digest,
            "cache": source,
            "result": result.as_dict(),
        }

    @staticmethod
    def _record_queue_span(job: _Job) -> None:
        """One leaf span for the time the job sat in the request queue."""
        if job.enqueued_wall:
            queued = max(0.0, time.time() - job.enqueued_wall)
            obs.record_span("service.queue", job.enqueued_wall, queued)

    # ------------------------------------------------------------------ #
    # the process data plane
    # ------------------------------------------------------------------ #
    async def _execute_job_process(self, job: _Job, loop) -> dict:
        """Adopt the client's trace context around the process data plane.

        The remote-task context lives on this coroutine (ContextVars are
        task-local, so concurrent jobs do not cross-pollinate); the worker
        process's harvested spans are absorbed into the same buffer mid
        flight, and the combined tree travels back in the response
        envelope's ``"trace"`` key.
        """
        if job.trace is None:
            return await self._process_plane(job, loop)
        with obs.remote_task(job.trace, capture_metrics=False) as remote:
            with obs.span(
                "service.request", kind=job.request.kind, worker="process"
            ):
                self._record_queue_span(job)
                payload = await self._process_plane(job, loop)
        blob = remote.harvest()
        if blob is not None and blob.get("events"):
            events = list(blob["events"])
            existing = payload.get("trace")
            if existing and existing.get("events"):
                # The serialization fallback already attached a thread-path
                # tree; keep both sides' spans.
                events.extend(existing["events"])
            payload["trace"] = {"events": events}
        return payload

    async def _process_plane(self, job: _Job, loop) -> dict:
        """Probe in the parent, compute in a worker process, adopt back.

        The cache probe and the adoption run on the thread executor (they
        take session slot locks and may touch the persistent spill); only
        the cache-missing computation crosses the process boundary.  The
        series travels as a store :class:`~repro.engine.shm.BlobHandle`
        whenever possible — the worker maps the blob file directly instead
        of unpickling an O(n) array.
        """
        cached = await loop.run_in_executor(self._executor, self._probe_job, job)
        if cached is not None:
            return cached
        try:
            request_dict = job.request.as_dict()
        except SerializationError:
            # Params that resist JSON resist pickling predictably too; the
            # thread path computes them in-process.  The trace is stripped:
            # the caller already opened the request span, and _execute_job
            # would otherwise start a second tree for the same job.
            return await loop.run_in_executor(
                self._executor, self._execute_job, replace(job, trace=None)
            )
        series_ref: object = job.values
        if self._store is not None:
            handle = await loop.run_in_executor(
                self._executor, self._store.handle, job.digest
            )
            if handle is not None:
                series_ref = handle
                self._zero_copy += 1
        engine = self._config.engine.as_dict()
        # Workers are the parallelism; a nested pool per worker would fork
        # bomb the host.  Kernel/block-size knobs still apply.
        engine["executor"] = None
        engine["n_jobs"] = None
        task = _WorkerTask(
            digest=job.digest,
            series=series_ref,
            series_name=job.series_name,
            request=request_dict,
            engine=engine,
            # Captured *here*, inside the request span when one is open, so
            # the worker's spans parent under it; also non-None whenever
            # metrics are on, which is what ships the worker-process metric
            # delta home even for untraced requests.
            trace=obs.current_payload(),
        )
        try:
            document = await loop.run_in_executor(
                self._compute, _execute_worker_task, task
            )
        except BrokenProcessPool as error:
            raise ServiceError(
                f"the worker process pool died: {error}", status=500
            ) from error
        # Spans join the open buffer (or collector), the metric delta folds
        # into the live registry.
        obs.absorb(document.pop("obs", None))
        return await loop.run_in_executor(
            self._executor, self._adopt_computed, job, document
        )

    def _probe_job(self, job: _Job) -> dict | None:
        """Executor thread: cache-only probe of the pooled parent session."""
        session, lock = self._pool.get_or_create(
            job.digest, job.values, job.series_name
        )
        with lock:
            hit = session.probe(job.request)
        if hit is None:
            return None
        result, source = hit
        return {
            "id": job.request_id,
            "series_digest": job.digest,
            "cache": source,
            "result": result.as_dict(),
        }

    def _adopt_computed(self, job: _Job, document: dict) -> dict:
        """Executor thread: fold a worker's envelope into the parent session.

        Adoption feeds the parent's cache tiers and motif index so the next
        identical request hits ``"memory"`` without a process round-trip.
        A result that will not rebuild is still answered — adoption is an
        optimisation, not a correctness gate.
        """
        payload = {
            "id": job.request_id,
            "series_digest": job.digest,
            "cache": document["cache"],
            "result": document["result"],
        }
        try:
            result = AnalysisResult.from_dict(document["result"])
        except (SerializationError, KeyError, TypeError, ValueError):
            return payload
        session, lock = self._pool.get_or_create(
            job.digest, job.values, job.series_name
        )
        with lock:
            session.adopt_result(job.request, result)
        return payload

    # ------------------------------------------------------------------ #
    # HTTP layer
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # One reader loop + one writer task serve the whole connection.
        # The reader keeps parsing and dispatching requests while earlier
        # ones are still computing — an /analyze dispatch returns the job's
        # *future*, not its payload — and the writer settles the outcomes
        # strictly in request order (HTTP/1.1 pipelining: responses must
        # match request order, frames must not interleave).  Keep-alive is
        # what lets a ServiceClient reuse one socket for its digest
        # negotiation; pipelining is what lets it overlap submissions.
        self._connections += 1
        responses: "asyncio.Queue" = asyncio.Queue()
        budget = asyncio.Semaphore(_MAX_PIPELINE_DEPTH)
        writer_task = asyncio.get_running_loop().create_task(
            self._write_responses(writer, responses, budget)
        )
        try:
            first = True
            while True:
                # The budget bounds parsed-but-unanswered requests; the
                # writer releases one permit per response written and its
                # exit floods the semaphore so a parked reader wakes up.
                await budget.acquire()
                if writer_task.done():
                    return  # the peer vanished or a response closed the link
                head = await self._read_head(reader, idle_ok=not first)
                if head is None:
                    return  # clean close or idle timeout between requests
                first = False
                method, target, content_length, keep_alive, trace_header = head
                try:
                    outcome: "Union[Tuple[int, dict], asyncio.Future]" = (
                        await self._dispatch(
                            method, target, content_length, reader, trace_header
                        )
                    )
                except (
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                    TimeoutError,
                ):
                    # The body never arrived; the stream position is gone,
                    # so answer and drop the connection.
                    responses.put_nowait(
                        ((400, {"error": "malformed HTTP request"}), False)
                    )
                    return
                except _CloseAfterResponse as error:
                    # The body was (partly) unconsumed: answer, then close
                    # before the leftover bytes masquerade as a request.
                    responses.put_nowait(((error.status, error.payload), False))
                    return
                except ServiceError as error:
                    outcome = (error.status or 500, {"error": str(error)})
                except (SerializationError, InvalidParameterError) as error:
                    outcome = (422, {"error": str(error)})
                except ReproError as error:
                    outcome = (422, {"error": str(error)})
                if isinstance(outcome, asyncio.Future):
                    self._pending_futures += 1
                    self._futures_flushed.clear()
                responses.put_nowait((outcome, keep_alive))
                if not keep_alive:
                    return
        except (
            ServiceError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            TimeoutError,
            ValueError,
        ):
            responses.put_nowait(((400, {"error": "malformed HTTP request"}), False))
        finally:
            responses.put_nowait(None)  # reader is done: drain, then stop
            try:
                await writer_task
            except BaseException:
                # The handler itself was cancelled (loop teardown): the
                # writer must not be orphaned awaiting a response future.
                writer_task.cancel()
                raise
            finally:
                # Responses the writer never reached (it died, or the
                # handler was cancelled) will never be flushed — account
                # for them so stop() is not left waiting on this socket.
                while True:
                    try:
                        entry = responses.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if entry is not None and isinstance(entry[0], asyncio.Future):
                        self._future_flushed()
                # close() schedules the transport teardown; awaiting
                # wait_closed() here would race loop shutdown (handlers for
                # dying connections get cancelled mid-await and spam the
                # loop's exception handler) for no benefit.
                writer.close()

    def _future_flushed(self) -> None:
        """One future-backed response left the building (or died trying)."""
        self._pending_futures -= 1
        if self._pending_futures <= 0:
            self._pending_futures = 0
            self._futures_flushed.set()

    async def _write_responses(
        self,
        writer: asyncio.StreamWriter,
        responses: "asyncio.Queue",
        budget: asyncio.Semaphore,
    ) -> None:
        """The per-connection writer: settle outcomes, respond in order."""
        try:
            while True:
                entry = await responses.get()
                if entry is None:
                    return
                outcome, keep_alive = entry
                try:
                    status, payload = await self._settle(outcome)
                    alive = await self._respond(writer, status, payload, keep_alive)
                finally:
                    if isinstance(outcome, asyncio.Future):
                        self._future_flushed()
                budget.release()
                if not alive:
                    return
        finally:
            # Unpark a reader blocked on the budget no matter how this task
            # ends; it observes writer_task.done() and stops.
            for _ in range(_MAX_PIPELINE_DEPTH):
                budget.release()

    async def _settle(
        self, outcome: "Union[Tuple[int, dict], asyncio.Future]"
    ) -> Tuple[int, dict]:
        """Await a pending job future into its ``(status, payload)`` pair.

        The error mapping mirrors the dispatch-time one in the reader loop
        — a job failing *after* acceptance must answer exactly like one
        failing before it.
        """
        if isinstance(outcome, tuple):
            return outcome
        try:
            payload = await outcome
        except ServiceError as error:
            return error.status or 500, {"error": str(error)}
        except (SerializationError, InvalidParameterError) as error:
            return 422, {"error": str(error)}
        except ReproError as error:
            return 422, {"error": str(error)}
        return 200, payload

    async def _dispatch(
        self,
        method: str,
        target: str,
        content_length: int,
        reader: asyncio.StreamReader,
        trace_header: str | None = None,
    ) -> "Union[Tuple[int, dict], asyncio.Future]":
        """Route one request, deciding how its body is consumed.

        Returns a ready ``(status, payload)`` pair — or, for an accepted
        ``/analyze`` submission, the job's future so the connection's
        reader can pipeline the next request while this one computes.

        ``PUT /series/<digest>`` streams the body straight into the store's
        chunked ingest (the series never exists in server memory as one
        buffer); everything else buffers the body under an intake permit as
        before.
        """
        path = target.split("?", 1)[0]
        if method == "PUT" and path.startswith("/series/"):
            return await self._handle_series_put(
                path, target, content_length, reader
            )
        body = b""
        if content_length:
            # Only the body buffering holds an intake permit: it is what
            # makes server memory proportional to concurrent uploads.  The
            # permit is released before the request waits for its
            # computation, so it never delays the queue-full 503 answer.
            async with self._intake:
                body = await asyncio.wait_for(
                    reader.readexactly(content_length),
                    timeout=_BODY_TIMEOUT_SECONDS,
                )
        return await self._route(
            method, path, body, target.partition("?")[2], trace_header
        )

    async def _read_head(
        self, reader: asyncio.StreamReader, *, idle_ok: bool
    ) -> Tuple[str, str, int, bool, "str | None"] | None:
        """Read one request line + headers.

        Returns ``(method, path_with_query, content_length, keep_alive,
        trace_header)``,
        or ``None`` for a connection that ended cleanly: EOF before the
        request line, or (between keep-alive requests, ``idle_ok``) an idle
        timeout.  Reading happens WITHOUT an intake permit (an idle socket
        must not starve /health or the 503 path) but under timeouts, so a
        silent connection cannot pin this handler forever.
        """
        timeout = _KEEPALIVE_IDLE_SECONDS if idle_ok else _HEADER_TIMEOUT_SECONDS
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=timeout)
        except (asyncio.TimeoutError, TimeoutError):
            if idle_ok:
                return None  # an expired idle connection is not an error
            raise
        if not request_line:
            if idle_ok:
                return None
            raise ServiceError("empty request", status=400)
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServiceError("malformed request line", status=400)
        method, target, version = parts
        # HTTP/1.1 defaults to persistent connections; HTTP/1.0 needs the
        # client to opt in.  A Connection: close header always wins.
        keep_alive = version.upper() == "HTTP/1.1"
        content_length = 0
        trace_header: "str | None" = None
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=_HEADER_TIMEOUT_SECONDS
            )
            if len(line) > _MAX_HEADER_LINE:
                raise ServiceError("header line too long", status=400)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(value.strip())
            elif name == obs.TRACE_HEADER.lower():
                trace_header = value.strip()
            elif name == "connection":
                token = value.strip().lower()
                if token == "close":
                    keep_alive = False
                elif token == "keep-alive":
                    keep_alive = True
        method = method.upper()
        # Route-aware body cap: a streamed series upload never buffers, so
        # it gets a far larger budget than a JSON body the loop must parse.
        # Violations are raised here — before any body byte is consumed —
        # so the outer handler answers 400 and closes the broken framing.
        cap = (
            _MAX_SERIES_BYTES
            if method == "PUT" and target.split("?", 1)[0].startswith("/series/")
            else _MAX_BODY_BYTES
        )
        if content_length < 0 or content_length > cap:
            raise ServiceError("invalid content length", status=400)
        return method, target, content_length, keep_alive, trace_header

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        keep_alive: bool,
    ) -> bool:
        """Write one response; returns whether the connection stays open."""
        reasons = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            409: "Conflict",
            422: "Unprocessable Entity",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }
        body = json.dumps(payload).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n\r\n"
        ).encode("latin-1")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            return False  # client went away; the handler closes the socket
        return keep_alive

    async def _route(
        self,
        method: str,
        path: str,
        body: bytes,
        query: str = "",
        trace_header: "str | None" = None,
    ) -> "Union[Tuple[int, dict], asyncio.Future]":
        if method == "GET" and path.startswith("/series/"):
            return self._handle_series_get(path)
        if method == "GET" and path == "/health":
            return 200, {
                "status": "ok",
                "queue_depth": self._queue.qsize(),
                "backlog": self._config.backlog,
                "workers": self._config.workers,
            }
        if method == "GET" and path == "/capabilities":
            return 200, {"algorithms": capabilities()}
        if method == "GET" and path == "/stats":
            return 200, self.stats()
        if method == "GET" and path == "/metrics":
            return 200, self._metrics_document(query)
        if method == "GET" and path == "/query":
            return await self._handle_query(query)
        if method == "POST" and path == "/analyze":
            return await self._handle_analyze(body, trace_header)
        if path in (
            "/health",
            "/capabilities",
            "/stats",
            "/metrics",
            "/analyze",
            "/query",
        ) or path.startswith("/series/"):
            return 405, {"error": f"method {method} not allowed for {path}"}
        return 404, {"error": f"unknown path {path!r}"}

    def _metrics_document(self, query: str) -> dict:
        """The ``GET /metrics`` document.

        Keeps the PR 8 latency-histogram shape (``bounds``/``phases``/
        ``kinds``) verbatim and extends it with the registry view:

        * ``families`` — every counter/gauge/histogram in the process
          registry *and* this service's latency registry, grouped by the
          name segment before the first dot;
        * ``token`` — an opaque window token naming the snapshot taken for
          this response (a bounded ring of them is retained);
        * ``window`` — ``"full"``, or ``"delta"`` when ``?since=<token>``
          matched a retained snapshot and ``families`` holds the counter/
          histogram *deltas* since it (gauges stay current-value).  An
          expired or unknown token degrades to ``"full"`` — monotonic, so
          the scraper's rate arithmetic stays safe.
        """
        params = dict(parse_qsl(query, keep_blank_values=True))
        current = obs.merge_snapshots(
            obs.snapshot(), self._metrics.registry_snapshot()
        )
        window = "full"
        view = current
        since = params.get("since")
        if since:
            earlier = self._metric_snapshots.get(since)
            if earlier is not None:
                view = obs.snapshot_delta(current, earlier)
                window = "delta"
        self._metric_window_seq += 1
        token = f"w{self._metric_window_seq}"
        self._metric_snapshots[token] = current
        while len(self._metric_snapshots) > _METRIC_SNAPSHOT_RING:
            self._metric_snapshots.popitem(last=False)
        document = self._metrics.document()
        document["at"] = current.get("at")
        document["token"] = token
        document["window"] = window
        document["families"] = obs.group_families(view)
        return document

    async def _handle_query(self, query: str) -> Tuple[int, dict]:
        """Answer one ``GET /query`` over the motif index.

        Parameters arrive percent-encoded (``parse_qsl`` decodes them, so
        URL-unsafe series names travel intact) and map one-to-one onto
        :meth:`repro.index.QuerySpec.from_params`.  The catalog read runs on
        the worker executor — SQLite under the index lock is still blocking
        work the event loop must not absorb.
        """
        if self._index is None:
            return 404, {
                "error": "no motif index is configured "
                "(start the service with --data-dir)"
            }
        params = dict(parse_qsl(query, keep_blank_values=True))
        try:
            spec = QuerySpec.from_params(params)
        except InvalidParameterError as error:
            return 400, {"error": str(error)}
        return 200, await self._offload(self._index.answer, spec)

    # ------------------------------------------------------------------ #
    # the series catalog endpoints
    # ------------------------------------------------------------------ #
    @staticmethod
    def _series_path_digest(path: str) -> str:
        digest = path[len("/series/") :]
        if not is_series_digest(digest):
            raise ServiceError(
                f"not a valid series digest: {digest!r}", status=400
            )
        return digest

    async def _offload(self, fn, *args):
        """Run blocking store/pool work on the worker executor.

        Anything that may take the store lock across real work (blob
        hashing, manifest writes) or wait on a session slot lock must not
        run on the event loop — ``/health`` and the 503 answer keep flowing
        while it executes."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def _resolve_series(self, digest: str) -> np.ndarray | None:
        """Digest → values via the session pool, then the store.

        The store half runs on the worker executor: a pool-miss ``get``
        sha1-verifies the whole blob, and that must not stall the event
        loop (``/health`` and the 503 answer keep flowing while a large
        series is being mapped and hashed)."""
        values = self._pool.lookup_values(digest)
        if values is not None:
            return values
        if self._store is not None:
            return await self._offload(self._store.get, digest)
        return None

    def _handle_series_get(self, path: str) -> Tuple[int, dict]:
        digest = self._series_path_digest(path)
        # Metadata answers come from the manifest (or the pool), not from a
        # full blob read — verification stays on the value-resolving paths.
        entry = None if self._store is None else self._store.entry(digest)
        if entry is not None:
            return 200, {**entry, "stored": True}
        values = self._pool.lookup_values(digest)
        if values is not None:
            return 200, {
                "digest": digest,
                "length": int(values.size),
                "bytes": int(values.size * 8),
                "name": "series",
                "stored": False,
            }
        return 404, {
            "error": f"unknown series digest {digest}",
            "unknown_digest": digest,
        }

    async def _handle_series_put(
        self,
        path: str,
        target: str,
        content_length: int,
        reader: asyncio.StreamReader,
    ) -> Tuple[int, dict]:
        # Validation happens before a single body byte is consumed, so the
        # error path must close the connection (unread bytes would garble
        # the next request) — hence _CloseAfterResponse, not a plain return.
        try:
            digest = self._series_path_digest(path)
        except ServiceError as error:
            raise _CloseAfterResponse(400, {"error": str(error)}) from error
        query = target.partition("?")[2]
        name = "series"
        for pair in query.split("&"):
            key, _, value = pair.partition("=")
            if key == "name" and value:
                name = unquote(value)
        if content_length <= 0 or content_length % 8:
            raise _CloseAfterResponse(
                400,
                {
                    "error": "a series upload needs a Content-Length that is "
                    "a non-empty multiple of 8 (raw float64 bytes)"
                },
            )
        if self._store is None and content_length > _MAX_BODY_BYTES:
            raise _CloseAfterResponse(
                400,
                {
                    "error": "series too large for the in-memory catalog "
                    "(the server runs without a store directory)"
                },
            )
        # The intake permit bounds concurrent uploads; the body itself is
        # consumed in chunks, so with a store the series never exists in
        # server memory at once.
        async with self._intake:
            if self._store is not None:
                ingest = self._store.begin(name=name, expected_digest=digest)
                try:
                    await self._stream_body(reader, content_length, ingest.append_bytes)
                    try:
                        # finalize() hashes nothing extra but renames and
                        # rewrites the manifest under the store lock — off
                        # the event loop with the rest of the store work.
                        await self._offload(ingest.finalize)
                    except StoreError as error:
                        # The body is fully consumed: a digest mismatch is an
                        # ordinary, keep-alive-safe 422.
                        return 422, {"error": str(error), "digest": digest}
                except OSError as error:
                    ingest.abort()
                    raise _CloseAfterResponse(
                        500, {"error": f"cannot persist the series: {error}"}
                    ) from error
                except BaseException:
                    ingest.abort()
                    raise
            else:
                chunks: List[bytes] = []
                await self._stream_body(reader, content_length, chunks.append)
                # No store: park the series in the session pool so
                # digest-only requests resolve until LRU pressure evicts it.
                # Off the event loop: the digest check hashes the series and
                # pool insertion may wait on an evicted slot's lock (a
                # session mid-computation must finish before its segments
                # are unlinked).
                error = await self._offload(
                    self._adopt_into_pool, b"".join(chunks), digest, name
                )
                if error is not None:
                    return error
        self._uploads += 1
        return 200, {
            "digest": digest,
            "length": content_length // 8,
            "stored": self._store is not None,
        }

    def _adopt_into_pool(
        self, data: bytes, digest: str, name: str
    ) -> Tuple[int, dict] | None:
        """Verify and park an uploaded series in the session pool (executor
        thread).  Returns an error response tuple, or ``None`` on success."""
        values = np.frombuffer(data, dtype="<f8")
        if series_digest(values) != digest:
            return 422, {
                "error": f"digest mismatch: the uploaded bytes do not hash to {digest}",
                "digest": digest,
            }
        self._pool.get_or_create(digest, np.array(values), name)
        return None

    async def _stream_body(
        self, reader: asyncio.StreamReader, length: int, sink
    ) -> None:
        """Feed exactly ``length`` body bytes into ``sink`` chunk by chunk."""
        remaining = int(length)
        while remaining > 0:
            chunk = await asyncio.wait_for(
                reader.read(min(_UPLOAD_CHUNK_BYTES, remaining)),
                timeout=_BODY_TIMEOUT_SECONDS,
            )
            if not chunk:
                raise asyncio.IncompleteReadError(b"", remaining)
            sink(chunk)
            remaining -= len(chunk)

    async def _handle_analyze(
        self, body: bytes, trace_header: "str | None" = None
    ) -> "Union[Tuple[int, dict], asyncio.Future]":
        received_at = time.monotonic()
        self._received += 1
        _REQUESTS_RECEIVED.inc()
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}
        if not isinstance(document, dict):
            return 400, {"error": "request body must be a JSON object"}
        raw_series = document.get("series")
        raw_digest = document.get("series_digest")
        if raw_series is not None and raw_digest is not None:
            return 400, {"error": "pass either 'series' or 'series_digest', not both"}
        if raw_digest is not None:
            # The digest-only path: the series must already be known — from
            # the session pool (a prior submission) or the store (a prior
            # PUT /series upload).  The 404 carries a marker the client's
            # negotiation keys on.
            if not isinstance(raw_digest, str):
                return 400, {"error": "'series_digest' must be a string"}
            values = await self._resolve_series(raw_digest)
            if values is None:
                return 404, {
                    "error": f"unknown series digest {raw_digest}; upload the "
                    "series once via PUT /series/<digest>",
                    "unknown_digest": raw_digest,
                }
        else:
            if not isinstance(raw_series, list) or not raw_series:
                return 400, {"error": "'series' must be a non-empty list of numbers"}
            try:
                values = np.asarray(raw_series, dtype=np.float64)
            except (TypeError, ValueError) as error:
                return 400, {"error": f"'series' is not numeric: {error}"}
            if values.ndim != 1:
                return 400, {"error": "'series' must be one-dimensional"}
        raw_request = document.get("request")
        if not isinstance(raw_request, dict):
            return 400, {"error": "'request' must be an AnalysisRequest object"}
        try:
            request = AnalysisRequest.from_dict(raw_request)
        except SerializationError as error:
            return 400, {"error": str(error)}

        series_name = document.get("series_name")
        if series_name is None and raw_digest is not None and self._store is not None:
            entry = await self._offload(self._store.entry, raw_digest)
            series_name = None if entry is None else entry["name"]
        self._sequence += 1
        job = _Job(
            sequence=self._sequence,
            request_id=str(document.get("id", self._sequence)),
            # The digest path already knows the identity; hashing megabytes
            # again would defeat the transport's whole point.
            digest=raw_digest if raw_digest is not None else series_digest(values),
            values=values,
            series_name=str(series_name if series_name is not None else "series"),
            request=request,
            future=asyncio.get_running_loop().create_future(),
            received_at=received_at,
            trace=obs.parse_trace_header(trace_header),
        )
        try:
            job.enqueued_at = time.monotonic()
            job.enqueued_wall = time.time()
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self._rejected += 1
            _REQUESTS_REJECTED.inc()
            return 503, {
                "error": f"request queue is full ({self._config.backlog} pending)",
                "id": job.request_id,
            }
        # The future, not the payload: the connection's writer awaits it in
        # response order while the reader pipelines the next request.
        return job.future

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters, completion order, per-session cache and store info."""
        return {
            "received": self._received,
            "completed": self._completed,
            "failed": self._failed,
            "rejected": self._rejected,
            "connections": self._connections,
            "uploads": self._uploads,
            "queue_depth": self._queue.qsize(),
            "worker_kind": "process" if self._compute is not None else "thread",
            "zero_copy_jobs": self._zero_copy,
            "latency": self._metrics.summary(),
            "completion_order": list(self._completion_order),
            "sessions": self._pool.stats(),
            "store": None if self._store is None else self._store.stats(),
            "index": None if self._index is None else self._index.stats(),
        }


def serve_forever(config: ServiceConfig | None = None) -> None:
    """Run a service in the foreground until interrupted (the CLI path)."""

    async def _run() -> None:
        service = AnalysisService(config)
        await service.start()
        host = config.host if config else "127.0.0.1"
        print(f"repro analysis service listening on http://{host}:{service.port}")
        try:
            await asyncio.Event().wait()  # until cancelled by KeyboardInterrupt
        finally:
            await service.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass


class BackgroundService:
    """A service running on its own thread/event loop (tests, benchmarks).

    Usage::

        with BackgroundService(ServiceConfig(port=0)) as service:
            client = ServiceClient(port=service.port)
            ...

    The context manager guarantees the loop is up (and the port bound) on
    entry and fully torn down on exit.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self._config = config or ServiceConfig(port=0)
        self._service: AnalysisService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._error: BaseException | None = None

    @property
    def service(self) -> AnalysisService:
        """The underlying service (valid while started)."""
        if self._service is None:
            raise ServiceError("the background service is not running")
        return self._service

    @property
    def port(self) -> int:
        """The bound port."""
        return self.service.port

    @property
    def host(self) -> str:
        """The bind host."""
        return self._config.host

    def __enter__(self) -> "BackgroundService":
        if self._thread is not None:
            raise ServiceError("the background service is already running")
        # Reset per-run state so one BackgroundService object can be
        # entered again after a clean exit (or a failed start).
        self._started = threading.Event()
        self._error = None
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServiceError("the background service did not start in time")
        if self._error is not None:
            raise ServiceError(f"the background service failed to start: {self._error}")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._service = None
        self._loop = None
        self._thread = None

    def _run(self) -> None:
        async def _main() -> None:
            self._service = AnalysisService(self._config)
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()
            try:
                await self._service.start()
            except BaseException as error:
                self._error = error
                self._started.set()
                return
            self._started.set()
            try:
                await self._stop.wait()
            finally:
                await self._service.stop()

        asyncio.run(_main())
