"""Blocking HTTP client for the analysis service (stdlib ``http.client``).

The counterpart of :mod:`repro.service.server`: serialises a series plus an
:class:`~repro.api.requests.AnalysisRequest` into the service's submission
document, posts it, and rebuilds the
:class:`~repro.api.requests.AnalysisResult` envelope from the response.
Deliberately synchronous — it is what the ``repro request`` CLI command,
the harness's service-backed mode and the concurrency tests (one client per
thread) need; an async client would just wrap the same two calls.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Any, Tuple

import numpy as np

from repro.api.requests import AnalysisRequest, AnalysisResult
from repro.exceptions import SerializationError, ServiceError
from repro.series.dataseries import DataSeries

__all__ = ["ServiceClient", "parse_service_url"]


def parse_service_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` (path-less) → ``(host, port)``.

    Accepts a bare ``host:port`` too; anything else —
    schemes other than http, embedded paths — raises
    :class:`~repro.exceptions.ServiceError`.
    """
    stripped = url.strip()
    if stripped.startswith("http://"):
        stripped = stripped[len("http://") :]
    elif "://" in stripped:
        raise ServiceError(f"only http:// service URLs are supported, got {url!r}")
    stripped = stripped.rstrip("/")
    if "/" in stripped:
        raise ServiceError(f"service URLs must not carry a path, got {url!r}")
    host, _, port_text = stripped.partition(":")
    if not host:
        raise ServiceError(f"service URL {url!r} has no host")
    if not port_text:
        return host, 80
    try:
        return host, int(port_text)
    except ValueError as error:
        raise ServiceError(f"service URL {url!r} has an invalid port") from error


class ServiceClient:
    """One service endpoint; each call opens a fresh connection.

    (The server answers ``Connection: close``, so a connection per request
    is the protocol, not an inefficiency worth optimising here.)
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, *, timeout: float = 60.0
    ) -> None:
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)

    @classmethod
    def from_url(cls, url: str, *, timeout: float = 60.0) -> "ServiceClient":
        """Build a client from an ``http://host:port`` URL."""
        host, port = parse_service_url(url)
        return cls(host, port, timeout=timeout)

    @property
    def base_url(self) -> str:
        """The endpoint as a URL string."""
        return f"http://{self._host}:{self._port}"

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _exchange(
        self, method: str, path: str, body: bytes | None = None
    ) -> Tuple[int, Any]:
        connection = HTTPConnection(self._host, self._port, timeout=self._timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        except (OSError, HTTPException) as error:
            raise ServiceError(
                f"cannot reach the analysis service at {self.base_url}: {error}"
            ) from error
        finally:
            connection.close()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"the service returned a non-JSON response (status {status})"
            ) from error
        return status, payload

    @staticmethod
    def _raise_for_status(status: int, payload: Any, context: str) -> None:
        if status == 200:
            return
        message = (
            payload.get("error", f"status {status}")
            if isinstance(payload, dict)
            else f"status {status}"
        )
        raise ServiceError(f"{context}: {message}", status=status)

    def _get(self, path: str) -> Any:
        status, payload = self._exchange("GET", path)
        self._raise_for_status(status, payload, f"GET {path} failed")
        return payload

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The server's liveness document (queue depth, worker count)."""
        return self._get("/health")

    def capabilities(self) -> list:
        """Capability metadata of every algorithm the server dispatches."""
        return self._get("/capabilities")["algorithms"]

    def stats(self) -> dict:
        """Server counters, completion order and per-session cache info."""
        return self._get("/stats")

    def analyze_raw(
        self,
        series,
        request: AnalysisRequest | dict,
        *,
        series_name: str | None = None,
        request_id: str | None = None,
    ) -> Tuple[int, dict]:
        """POST one submission; returns ``(status, response_document)``.

        No raising on non-200 — the backpressure test asserts on the 503
        path directly.
        """
        if isinstance(series, DataSeries):
            if series_name is None:
                series_name = series.name
            values = series.values
        else:
            values = np.asarray(series, dtype=np.float64)
        if isinstance(request, AnalysisRequest):
            request_document = request.as_dict()
        else:
            request_document = dict(request)
        document = {
            "series": values.tolist(),
            "request": request_document,
        }
        if series_name is not None:
            document["series_name"] = series_name
        if request_id is not None:
            document["id"] = request_id
        body = json.dumps(document).encode("utf-8")
        return self._exchange("POST", "/analyze", body)

    def analyze(
        self,
        series,
        request: AnalysisRequest | dict,
        *,
        series_name: str | None = None,
        request_id: str | None = None,
    ) -> Tuple[AnalysisResult, str]:
        """Submit one request; returns ``(envelope, cache_source)``.

        ``cache_source`` is the server's ``"memory"`` / ``"persistent"`` /
        ``"computed"`` marker.  Raises
        :class:`~repro.exceptions.ServiceError` (with the HTTP status) on
        any non-200 response.
        """
        status, payload = self.analyze_raw(
            series, request, series_name=series_name, request_id=request_id
        )
        self._raise_for_status(status, payload, "analysis request failed")
        try:
            result = AnalysisResult.from_dict(payload["result"])
        except (KeyError, TypeError, SerializationError) as error:
            raise ServiceError(
                f"the service returned an invalid result envelope: {error}"
            ) from error
        return result, str(payload.get("cache", "unknown"))
