"""Blocking HTTP client for the analysis service (stdlib ``http.client``).

The counterpart of :mod:`repro.service.server`: serialises an
:class:`~repro.api.requests.AnalysisRequest` into the service's submission
document, posts it, and rebuilds the
:class:`~repro.api.requests.AnalysisResult` envelope from the response.
Deliberately synchronous — it is what the ``repro request`` CLI command,
the harness's service-backed mode and the concurrency tests (one client per
thread) need; an async client would just wrap the same calls.

Two transport behaviours distinguish it from a naive poster:

* **Connection reuse** — the server answers ``Connection: keep-alive``, and
  the client keeps one socket open across calls (re-opening transparently,
  with a single retry, when the server or an idle timeout closed it).  One
  client object therefore costs one TCP handshake for a whole conversation.
* **Digest negotiation** — :meth:`analyze` never ships the value array
  inside the submission.  It sends the series *content digest*; if the
  server does not know it (``404`` + ``unknown_digest``), the client
  uploads the raw float64 bytes **once** through ``PUT /series/<digest>``
  and retries.  The second and every later request for a series — from
  this client or any other — is a few hundred bytes.  ``analyze_raw(...,
  transport="values")`` keeps the old inline-values document for callers
  that need it (e.g. servers predating the digest protocol).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Any, Tuple
from urllib.parse import quote

import numpy as np

from repro import obs
from repro.api.cache import series_digest
from repro.api.requests import AnalysisRequest, AnalysisResult
from repro.exceptions import InvalidParameterError, SerializationError, ServiceError
from repro.series.dataseries import DataSeries

__all__ = ["ServiceClient", "parse_service_url"]


def parse_service_url(url: str) -> Tuple[str, int]:
    """``http://host:port`` (path-less) → ``(host, port)``.

    Accepts a bare ``host:port`` too; anything else —
    schemes other than http, embedded paths — raises
    :class:`~repro.exceptions.ServiceError`.
    """
    stripped = url.strip()
    if stripped.startswith("http://"):
        stripped = stripped[len("http://") :]
    elif "://" in stripped:
        raise ServiceError(f"only http:// service URLs are supported, got {url!r}")
    stripped = stripped.rstrip("/")
    if "/" in stripped:
        raise ServiceError(f"service URLs must not carry a path, got {url!r}")
    host, _, port_text = stripped.partition(":")
    if not host:
        raise ServiceError(f"service URL {url!r} has no host")
    if not port_text:
        return host, 80
    try:
        return host, int(port_text)
    except ValueError as error:
        raise ServiceError(f"service URL {url!r} has an invalid port") from error


class ServiceClient:
    """One service endpoint, one reusable connection.

    Usable as a context manager (``with ServiceClient(...) as client:``);
    :meth:`close` drops the socket, and any later call transparently opens
    a new one.

    Not thread-safe: the kept-alive connection carries one in-flight
    request at a time.  Give each thread its own client (they are cheap —
    the socket opens lazily on first use).
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, *, timeout: float = 60.0
    ) -> None:
        self._host = host
        self._port = int(port)
        self._timeout = float(timeout)
        self._connection: HTTPConnection | None = None

    @classmethod
    def from_url(cls, url: str, *, timeout: float = 60.0) -> "ServiceClient":
        """Build a client from an ``http://host:port`` URL."""
        host, port = parse_service_url(url)
        return cls(host, port, timeout=timeout)

    @property
    def base_url(self) -> str:
        """The endpoint as a URL string."""
        return f"http://{self._host}:{self._port}"

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Drop the kept-alive connection (idempotent)."""
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:  # pragma: no cover - teardown is best-effort
                pass
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _exchange(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        content_type: str = "application/json",
    ) -> Tuple[int, Any]:
        """One request/response over the kept-alive connection.

        A failure on a *reused* connection (the server may have dropped it
        at the keep-alive idle timeout) is retried exactly once on a fresh
        socket; a failure on a fresh connection is the server being
        genuinely unreachable and raises.  The retry is safe for every
        endpoint this client speaks: reads are idempotent, ``/analyze`` is
        deterministic-and-cached, and ``PUT /series`` is content-addressed.
        """
        for _ in range(2):
            reused = self._connection is not None
            if self._connection is None:
                self._connection = HTTPConnection(
                    self._host, self._port, timeout=self._timeout
                )
            connection = self._connection
            try:
                headers = {"Content-Type": content_type} if body else {}
                # When a trace is being collected client-side, every request
                # carries the current trace position so server-side spans
                # (queue wait, session run, engine blocks, kernel sweeps —
                # across the server's worker processes) join this client's
                # tree.
                trace_header = obs.format_trace_header(obs.current_payload())
                if trace_header is not None:
                    headers[obs.TRACE_HEADER] = trace_header
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                status = response.status
                if response.will_close:
                    self.close()
                break
            except (OSError, HTTPException) as error:
                self.close()
                if reused:
                    continue  # stale keep-alive socket: one fresh retry
                raise ServiceError(
                    f"cannot reach the analysis service at {self.base_url}: {error}"
                ) from error
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"the service returned a non-JSON response (status {status})"
            ) from error
        return status, payload

    @staticmethod
    def _raise_for_status(status: int, payload: Any, context: str) -> None:
        if status == 200:
            return
        message = (
            payload.get("error", f"status {status}")
            if isinstance(payload, dict)
            else f"status {status}"
        )
        raise ServiceError(f"{context}: {message}", status=status)

    def _get(self, path: str) -> Any:
        status, payload = self._exchange("GET", path)
        self._raise_for_status(status, payload, f"GET {path} failed")
        return payload

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The server's liveness document (queue depth, worker count)."""
        return self._get("/health")

    def capabilities(self) -> list:
        """Capability metadata of every algorithm the server dispatches."""
        return self._get("/capabilities")["algorithms"]

    def stats(self) -> dict:
        """Server counters, completion order, per-session cache info, and
        (when a motif index is configured) the catalog's row/ingest/query
        counters under the ``"index"`` key."""
        return self._get("/stats")

    def metrics(self, *, since: str | None = None) -> dict:
        """The server's metrics document (``GET /metrics``).

        The latency-histogram half is ``{"bounds": [...], "phases": [...],
        "kinds": {kind: {phase: {"count", "sum", "counts"}}}}`` — fixed
        log-spaced buckets, so two scrapes diff (and different servers sum)
        bucket-by-bucket; :func:`repro.harness.tables.metrics_rows`
        flattens the document into harness table rows.  The registry half
        adds ``families`` (every obs counter/gauge/histogram grouped by
        layer), plus a ``token`` naming this scrape's snapshot: pass it
        back as ``since`` and the next document's ``families`` holds the
        *delta* since that scrape (``"window": "delta"``) instead of
        process-lifetime totals.
        """
        path = "/metrics" if since is None else f"/metrics?since={quote(since)}"
        return self._get(path)

    def query(self, query="") -> dict:
        """Query the server's motif/discord catalog (``GET /query``).

        ``query`` is either the CLI token string (``"kind=motif
        length=64..128 top=5"``) or a mapping of the same parameters.
        Values are percent-encoded on the wire, so URL-unsafe series names
        (spaces, slashes, unicode) travel intact.  Returns the same
        ``{"spec": ..., "count": ..., "rows": [...]}`` document ``repro
        query`` prints.  Raises :class:`~repro.exceptions.ServiceError`
        (status 404) when the server runs without an index.
        """
        from repro.index import QuerySpec

        if isinstance(query, str):
            params = QuerySpec.parse(query).as_dict()
        elif isinstance(query, QuerySpec):
            params = query.as_dict()
        else:
            params = dict(query)
        encoded = "&".join(
            f"{quote(str(key), safe='')}={quote(str(value), safe='')}"
            for key, value in params.items()
            if value is not None and value is not False
        )
        return self._get(f"/query?{encoded}" if encoded else "/query")

    def series_info(self, digest: str) -> dict | None:
        """Catalog metadata of one stored series, or ``None`` when unknown."""
        status, payload = self._exchange("GET", f"/series/{digest}")
        if status == 404:
            return None
        self._raise_for_status(status, payload, f"GET /series/{digest} failed")
        return payload

    def put_series(
        self, series, *, series_name: str | None = None, digest: str | None = None
    ) -> str:
        """Upload one series into the server's catalog; returns its digest.

        The body is the raw little-endian float64 bytes — the server streams
        them into its store's verifying chunked ingest, so the series never
        exists server-side as a JSON array.  ``digest`` may pass a
        precomputed content digest (skipping the local hash).
        """
        values, name = self._coerce_series(series, series_name)
        if digest is None:
            digest = series_digest(values)
        path = f"/series/{digest}"
        if name is not None:
            # Names come from arbitrary sources (file paths, --name flags);
            # percent-encode so a space cannot break the request line.
            path = f"{path}?name={quote(str(name), safe='')}"
        body = np.ascontiguousarray(values, dtype="<f8").tobytes()
        status, payload = self._exchange(
            "PUT", path, body, content_type="application/octet-stream"
        )
        self._raise_for_status(status, payload, "series upload failed")
        return str(payload.get("digest", digest))

    @staticmethod
    def _coerce_series(series, series_name: str | None):
        if isinstance(series, DataSeries):
            return series.values, (series.name if series_name is None else series_name)
        return np.asarray(series, dtype=np.float64), series_name

    def analyze_raw(
        self,
        series,
        request: AnalysisRequest | dict,
        *,
        series_name: str | None = None,
        request_id: str | None = None,
        transport: str = "digest",
    ) -> Tuple[int, dict]:
        """POST one submission; returns ``(status, response_document)``.

        No raising on non-200 — the backpressure test asserts on the 503
        path directly.  ``transport="digest"`` (default) negotiates the
        digest-only protocol: the submission carries ``series_digest``, and
        an ``unknown_digest`` 404 triggers one ``PUT /series`` upload plus
        one retry.  ``transport="values"`` ships the values inline like the
        pre-store protocol did.

        ``series`` may also be a **digest string** for a series the server
        already has (a prior upload, the server's store): the submission is
        digest-only, the caller never holds the values, and an unknown
        digest stays a 404 — there is nothing to upload.
        """
        if transport not in ("digest", "values"):
            raise InvalidParameterError(
                f"transport must be 'digest' or 'values', got {transport!r}"
            )
        if isinstance(series, str):
            if transport == "values":
                raise InvalidParameterError(
                    "a digest-string series cannot use transport='values' "
                    "(the client does not hold the values)"
                )
            if isinstance(request, AnalysisRequest):
                request_document = request.as_dict()
            else:
                request_document = dict(request)
            document = {"request": request_document, "series_digest": series}
            if series_name is not None:
                document["series_name"] = series_name
            if request_id is not None:
                document["id"] = request_id
            return self._post_analyze(document)
        values, name = self._coerce_series(series, series_name)
        if isinstance(request, AnalysisRequest):
            request_document = request.as_dict()
        else:
            request_document = dict(request)
        document: dict = {"request": request_document}
        if name is not None:
            document["series_name"] = name
        if request_id is not None:
            document["id"] = request_id
        if transport == "values":
            document["series"] = values.tolist()
            return self._post_analyze(document)
        digest = series_digest(values)
        document["series_digest"] = digest
        status, payload = self._post_analyze(document)
        if (
            status == 404
            and isinstance(payload, dict)
            and payload.get("unknown_digest") == digest
        ):
            # First contact for this series: upload once, retry once.  Every
            # later request (from any client) rides the digest alone.
            self.put_series(values, series_name=name, digest=digest)
            status, payload = self._post_analyze(document)
        return status, payload

    def _post_analyze(self, document: dict) -> Tuple[int, dict]:
        status, payload = self._exchange(
            "POST", "/analyze", json.dumps(document).encode("utf-8")
        )
        if isinstance(payload, dict):
            # Server-side spans ride home in the response; fold them into
            # whatever trace is being collected here.  The key is popped so
            # result parsing and cached-payload comparisons never see
            # transport metadata.
            envelope = payload.pop("trace", None)
            if isinstance(envelope, dict):
                obs.absorb_events(envelope.get("events"))
        return status, payload

    def analyze(
        self,
        series,
        request: AnalysisRequest | dict,
        *,
        series_name: str | None = None,
        request_id: str | None = None,
    ) -> Tuple[AnalysisResult, str]:
        """Submit one request; returns ``(envelope, cache_source)``.

        ``cache_source`` is the server's ``"memory"`` / ``"persistent"`` /
        ``"computed"`` marker.  Raises
        :class:`~repro.exceptions.ServiceError` (with the HTTP status) on
        any non-200 response.
        """
        kind = (
            request.kind
            if isinstance(request, AnalysisRequest)
            else dict(request).get("kind")
        )
        with obs.span("client.analyze", kind=kind):
            status, payload = self.analyze_raw(
                series, request, series_name=series_name, request_id=request_id
            )
        self._raise_for_status(status, payload, "analysis request failed")
        try:
            result = AnalysisResult.from_dict(payload["result"])
        except (KeyError, TypeError, SerializationError) as error:
            raise ServiceError(
                f"the service returned an invalid result envelope: {error}"
            ) from error
        return result, str(payload.get("cache", "unknown"))
