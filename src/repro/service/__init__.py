"""The analysis service layer: an asyncio HTTP front-end over the envelope API.

* :mod:`repro.service.server` — :class:`AnalysisService` (stdlib asyncio
  HTTP/1.1, bounded worker queue, per-digest session pool),
  :class:`ServiceConfig`, :func:`serve_forever` for the CLI and
  :class:`BackgroundService` for tests/benchmarks;
* :mod:`repro.service.client` — the blocking :class:`ServiceClient` used by
  ``repro request``, the harness's service-backed mode and the test
  substrate.
"""

from repro.service.client import ServiceClient, parse_service_url
from repro.service.server import (
    AnalysisService,
    BackgroundService,
    ServiceConfig,
    serve_forever,
)

__all__ = [
    "AnalysisService",
    "BackgroundService",
    "ServiceClient",
    "ServiceConfig",
    "parse_service_url",
    "serve_forever",
]
