"""Z-normalisation utilities.

Motif discovery compares the *shape* of subsequences, so every subsequence is
z-normalised (zero mean, unit standard deviation) before distances are taken.
Constant subsequences have no shape; the library follows the convention used
by STUMPY and the matrix-profile papers: a constant subsequence z-normalises
to the all-zero vector and its distance to another constant subsequence is 0,
while its distance to a non-constant subsequence is ``sqrt(m)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError, InvalidSeriesError

__all__ = ["znormalize", "znormalize_subsequences", "is_constant"]

#: Standard deviations below this threshold are treated as zero.
STD_EPSILON = 1e-10


def is_constant(values: np.ndarray, epsilon: float = STD_EPSILON) -> bool:
    """Return True when ``values`` has (numerically) zero standard deviation."""
    array = np.asarray(values, dtype=np.float64)
    if array.size == 0:
        raise InvalidSeriesError("cannot test an empty array for constancy")
    return bool(np.std(array) <= epsilon * max(1.0, float(np.abs(array).max())))


def znormalize(values: np.ndarray, epsilon: float = STD_EPSILON) -> np.ndarray:
    """Return the z-normalised copy of a 1-D array.

    A constant input maps to the all-zero vector instead of raising, matching
    the distance conventions described in the module docstring.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise InvalidSeriesError(f"expected a 1-D array, got shape {array.shape}")
    if array.size == 0:
        raise InvalidSeriesError("cannot z-normalise an empty array")
    if not np.all(np.isfinite(array)):
        raise InvalidSeriesError("cannot z-normalise an array with NaN or infinite values")
    mean = array.mean()
    std = array.std()
    if std <= epsilon * max(1.0, float(np.abs(array).max())):
        return np.zeros_like(array)
    return (array - mean) / std


def znormalize_subsequences(series: np.ndarray, window: int) -> np.ndarray:
    """Return a 2-D array whose row ``i`` is the z-normalised ``series[i:i+window]``.

    This materialises ``(n - window + 1) x window`` values and is intended for
    small inputs (tests, brute-force baselines, motif-set expansion), not for
    the main algorithms which work on the series in place.
    """
    array = np.asarray(series, dtype=np.float64)
    if array.ndim != 1:
        raise InvalidSeriesError(f"expected a 1-D series, got shape {array.shape}")
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if window > array.size:
        raise InvalidParameterError(
            f"window {window} exceeds series length {array.size}"
        )
    count = array.size - window + 1
    subsequences = np.lib.stride_tricks.sliding_window_view(array, window).astype(np.float64)
    means = subsequences.mean(axis=1, keepdims=True)
    stds = subsequences.std(axis=1, keepdims=True)
    normalised = np.zeros((count, window), dtype=np.float64)
    nonconstant = (stds > STD_EPSILON * np.maximum(1.0, np.abs(subsequences).max(axis=1, keepdims=True)))[:, 0]
    normalised[nonconstant] = (
        (subsequences[nonconstant] - means[nonconstant]) / stds[nonconstant]
    )
    return normalised
