"""Sliding dot products.

The MASS algorithm (Mueen's Algorithm for Similarity Search) reduces the
computation of a full distance profile to one convolution, implemented here
with real FFTs from :mod:`scipy.fft`.  A naive ``O(n·m)`` implementation is
kept both as a correctness oracle for the tests and as the faster option for
very short queries.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as _fft

from repro.exceptions import InvalidParameterError

__all__ = ["sliding_dot_product", "sliding_dot_product_naive"]

#: Below this query length the naive method tends to beat the FFT in practice.
_NAIVE_CUTOFF = 16


def _validate(query: np.ndarray, series: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    q = np.asarray(query, dtype=np.float64)
    t = np.asarray(series, dtype=np.float64)
    if q.ndim != 1 or t.ndim != 1:
        raise InvalidParameterError(
            f"query and series must be 1-D, got shapes {q.shape} and {t.shape}"
        )
    if q.size == 0 or t.size == 0:
        raise InvalidParameterError("query and series must not be empty")
    if q.size > t.size:
        raise InvalidParameterError(
            f"query (length {q.size}) is longer than the series (length {t.size})"
        )
    return q, t


def sliding_dot_product_naive(query: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Dot product of ``query`` with every window of ``series`` (direct loop).

    Returns an array of length ``len(series) - len(query) + 1`` whose entry
    ``i`` is ``query . series[i:i+m]``.
    """
    q, t = _validate(query, series)
    m = q.size
    count = t.size - m + 1
    windows = np.lib.stride_tricks.sliding_window_view(t, m)
    return windows[:count] @ q


def sliding_dot_product(
    query: np.ndarray, series: np.ndarray, *, method: str = "auto"
) -> np.ndarray:
    """Dot product of ``query`` with every window of ``series`` (FFT based).

    This is the MASS building block: ``O((n + m) log(n + m))`` regardless of
    the query length.  Falls back to the naive method for very short queries
    where the FFT overhead dominates.

    ``method`` selects the implementation: ``"auto"`` (default) uses the
    FFT above :data:`_NAIVE_CUTOFF`, ``"fft"`` forces the FFT, and
    ``"naive"`` forces the direct ``O(n·m)`` products.  The naive products
    round only within each window, so on high-variance series they are the
    more accurate of the two — the engine's re-seeding tests use the forced
    modes to measure the FFT's drift contribution in isolation.
    """
    if method not in ("auto", "fft", "naive"):
        raise InvalidParameterError(
            f"method must be 'auto', 'fft' or 'naive', got {method!r}"
        )
    q, t = _validate(query, series)
    m = q.size
    n = t.size
    if method == "naive" or (method == "auto" and m <= _NAIVE_CUTOFF):
        return sliding_dot_product_naive(q, t)
    size = _fft.next_fast_len(n + m - 1, real=True)
    reversed_query = q[::-1]
    product = _fft.irfft(_fft.rfft(t, size) * _fft.rfft(reversed_query, size), size)
    # Entry m-1+i of the full convolution equals query . series[i:i+m].
    return product[m - 1 : n]
