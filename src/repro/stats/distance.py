"""Distances between (sub)sequences.

The whole library works with the *z-normalised Euclidean distance* between
subsequences of equal length ``m``.  It is related to the Pearson correlation
``rho`` of the raw subsequences by::

    d = sqrt(2 * m * (1 - rho))

which is how matrix-profile algorithms compute it from sliding dot products.
This module provides the direct definition (used by brute-force baselines and
tests), the correlation conversions, and the *length-normalised* distance
``d_n = d / sqrt(m)`` that VALMOD uses to rank motifs of different lengths.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.stats.znorm import STD_EPSILON, znormalize

__all__ = [
    "znorm_euclidean",
    "pairwise_znorm_distance",
    "centered_dot_products",
    "compensation_needed",
    "correlation_to_distance",
    "distance_to_correlation",
    "length_normalized",
]

#: Dekker's splitting constant for float64: ``2**27 + 1``.  Multiplying by it
#: and subtracting splits a double into two non-overlapping 26-bit halves,
#: which lets a product be computed with its exact rounding error.
_SPLIT = 134217729.0


def _two_product(a, b):
    """Return ``(p, e)`` with ``p = fl(a*b)`` and ``a*b = p + e`` exactly.

    Dekker's algorithm (no FMA required): both halves of each operand are
    short enough that the partial products are exact in float64.
    """
    p = a * b
    a_big = _SPLIT * a
    a_hi = a_big - (a_big - a)
    a_lo = a - a_hi
    b_big = _SPLIT * b
    b_hi = b_big - (b_big - b)
    b_lo = b - b_hi
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def _two_sum(a, b):
    """Return ``(s, e)`` with ``s = fl(a+b)`` and ``a + b = s + e`` exactly."""
    s = a + b
    v = s - a
    e = (a - (s - v)) + (b - v)
    return s, e


#: ``|mu_q * mu_j| / (sigma_q * sigma_j)`` ratio above which the naive
#: ``QT - m mu_q mu_j`` subtraction is considered at risk of cancellation
#: (relative error ``eps * ratio``, i.e. ~2e-13 at the threshold) and the
#: compensated path is taken instead.  Below it the naive subtraction is
#: already exact to working precision and ~3x cheaper.
_COMPENSATION_RATIO = 1e3


def _abs_scale(values: np.ndarray) -> float:
    """``max(|values|)`` via min/max (no abs() temporary)."""
    if values.ndim == 0:
        return abs(float(values))
    if values.size == 0:
        return 0.0
    return max(-float(np.min(values)), float(np.max(values)), 0.0)


def compensation_needed(query_means, means, stds=None) -> bool:
    """Whether :func:`centered_dot_products` should compensate for these means.

    The cancellation's *relative* damage to the correlation is
    ``eps * |mu_q mu_j| / (sigma_q sigma_j)``, so the decision compares the
    means' magnitude against the typical (median) standard deviation when
    one is available: an ordinary random walk whose means wander to ±100
    with unit-scale sigmas stays on the cheap naive path, a series sitting
    at offset 1e3+ compensates.  Without ``stds`` the check degrades to the
    conservative absolute threshold.

    Row-loop algorithms (STOMP, SCRIMP, the engine blocks) call the
    conversion once per row against the *same* means arrays; evaluating
    this predicate once and passing ``compensated=`` explicitly keeps the
    reduction passes out of the hot loop.
    """
    query_means = np.asarray(query_means, dtype=np.float64)
    means = np.asarray(means, dtype=np.float64)
    product_scale = _abs_scale(query_means) * _abs_scale(means)
    if stds is not None:
        typical_std = float(np.median(np.asarray(stds, dtype=np.float64)))
        if typical_std > 0.0:
            return product_scale > _COMPENSATION_RATIO * typical_std * typical_std
    return product_scale > _COMPENSATION_RATIO


def centered_dot_products(
    dot_products: np.ndarray,
    window: int,
    query_mean: float | np.ndarray,
    means: np.ndarray,
    *,
    compensated: bool | None = None,
) -> np.ndarray:
    """Evaluation of ``QT - window * mu_q * mu`` (elementwise), compensated on demand.

    ``query_mean`` may be a scalar (one query against many targets — the
    distance-profile case) or an array broadcastable against ``means`` (the
    diagonal/pairwise cases of SCRIMP and the VALMOD partial-profile store).

    This is the numerator of the ``qt -> correlation`` conversion used by
    every matrix-profile algorithm.  On series with a large offset (means of
    magnitude ``1e6`` and unit variance, say) the two terms agree to many
    digits and the plain subtraction cancels catastrophically: the rounding
    error of the *product* ``window * mu_q * mu`` — invisible in the product
    itself — survives the subtraction at full size and dominates the result.

    The compensation tracks the exact rounding error of both multiplications
    (Dekker's two-product) and of the subtraction (two-sum) and adds the
    error terms back, so the result is correct to within a couple of ulps of
    the *centered* magnitude instead of the uncentered one.  ``dot_products``
    keeps whatever error it arrived with; the centred MASS path
    (:func:`repro.matrix_profile.mass.mass`) removes that error too by
    computing the dot products on a mean-shifted copy of the series.

    ``compensated=None`` (default) decides per call from the magnitude of the
    means relative to the work the caller is doing: the compensation costs
    roughly three extra vector passes, which the tight STOMP row loop should
    only pay when the series actually puts the subtraction at risk.
    """
    qt = np.asarray(dot_products, dtype=np.float64)
    means = np.asarray(means, dtype=np.float64)
    query_mean = np.asarray(query_mean, dtype=np.float64)
    if compensated is None:
        compensated = compensation_needed(query_mean, means)
    if not compensated:
        return qt - window * query_mean * means
    coeff, coeff_err = _two_product(np.float64(window), query_mean)
    product, product_err = _two_product(coeff, means)
    centered, sum_err = _two_sum(qt, -product)
    return centered + (sum_err - product_err - coeff_err * means)


def znorm_euclidean(first: np.ndarray, second: np.ndarray) -> float:
    """Z-normalised Euclidean distance between two equal-length sequences.

    Constant-sequence convention (see :mod:`repro.stats.znorm`): the distance
    between two constant sequences is ``0`` and the distance between a
    constant and a non-constant sequence is ``sqrt(m)``.
    """
    a = np.asarray(first, dtype=np.float64)
    b = np.asarray(second, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidParameterError(
            f"sequences must have the same shape, got {a.shape} and {b.shape}"
        )
    if a.ndim != 1:
        raise InvalidParameterError(f"expected 1-D sequences, got shape {a.shape}")
    length = a.size
    a_constant = a.std() <= STD_EPSILON * max(1.0, float(np.abs(a).max(initial=0.0)))
    b_constant = b.std() <= STD_EPSILON * max(1.0, float(np.abs(b).max(initial=0.0)))
    if a_constant and b_constant:
        return 0.0
    if a_constant or b_constant:
        return float(np.sqrt(length))
    return float(np.linalg.norm(znormalize(a) - znormalize(b)))


def pairwise_znorm_distance(subsequences: np.ndarray) -> np.ndarray:
    """All-pairs z-normalised Euclidean distance matrix of the given rows.

    ``subsequences`` is a 2-D array whose rows are equal-length subsequences.
    Intended for small candidate sets (motif-set expansion, tests).
    """
    matrix = np.asarray(subsequences, dtype=np.float64)
    if matrix.ndim != 2:
        raise InvalidParameterError(f"expected a 2-D array of subsequences, got {matrix.shape}")
    count = matrix.shape[0]
    distances = np.zeros((count, count), dtype=np.float64)
    for i in range(count):
        for j in range(i + 1, count):
            d = znorm_euclidean(matrix[i], matrix[j])
            distances[i, j] = d
            distances[j, i] = d
    return distances


def correlation_to_distance(correlation: np.ndarray | float, window: int) -> np.ndarray | float:
    """Convert Pearson correlation(s) to z-normalised Euclidean distance(s).

    ``d = sqrt(2 * window * (1 - rho))``, with ``rho`` clipped to ``[-1, 1]``
    to absorb floating-point overshoot.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    rho = np.clip(np.asarray(correlation, dtype=np.float64), -1.0, 1.0)
    distances = np.sqrt(2.0 * window * (1.0 - rho))
    if np.isscalar(correlation) or np.ndim(correlation) == 0:
        return float(distances)
    return distances


def distance_to_correlation(distance: np.ndarray | float, window: int) -> np.ndarray | float:
    """Inverse of :func:`correlation_to_distance`."""
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    d = np.asarray(distance, dtype=np.float64)
    rho = 1.0 - np.square(d) / (2.0 * window)
    if np.isscalar(distance) or np.ndim(distance) == 0:
        return float(rho)
    return rho


def length_normalized(distance: np.ndarray | float, window: int) -> np.ndarray | float:
    """Length-normalised distance ``d_n = d / sqrt(window)``.

    This is the quantity the VALMOD paper uses to compare motif pairs of
    different lengths (it factorises the Euclidean distance by
    ``sqrt(1/length)``).  It is bounded by ``sqrt(2)`` for z-normalised
    subsequences, regardless of their length.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    d = np.asarray(distance, dtype=np.float64)
    normalized = d / np.sqrt(window)
    if np.isscalar(distance) or np.ndim(distance) == 0:
        return float(normalized)
    return normalized
