"""Distances between (sub)sequences.

The whole library works with the *z-normalised Euclidean distance* between
subsequences of equal length ``m``.  It is related to the Pearson correlation
``rho`` of the raw subsequences by::

    d = sqrt(2 * m * (1 - rho))

which is how matrix-profile algorithms compute it from sliding dot products.
This module provides the direct definition (used by brute-force baselines and
tests), the correlation conversions, and the *length-normalised* distance
``d_n = d / sqrt(m)`` that VALMOD uses to rank motifs of different lengths.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.stats.znorm import STD_EPSILON, znormalize

__all__ = [
    "znorm_euclidean",
    "pairwise_znorm_distance",
    "correlation_to_distance",
    "distance_to_correlation",
    "length_normalized",
]


def znorm_euclidean(first: np.ndarray, second: np.ndarray) -> float:
    """Z-normalised Euclidean distance between two equal-length sequences.

    Constant-sequence convention (see :mod:`repro.stats.znorm`): the distance
    between two constant sequences is ``0`` and the distance between a
    constant and a non-constant sequence is ``sqrt(m)``.
    """
    a = np.asarray(first, dtype=np.float64)
    b = np.asarray(second, dtype=np.float64)
    if a.shape != b.shape:
        raise InvalidParameterError(
            f"sequences must have the same shape, got {a.shape} and {b.shape}"
        )
    if a.ndim != 1:
        raise InvalidParameterError(f"expected 1-D sequences, got shape {a.shape}")
    length = a.size
    a_constant = a.std() <= STD_EPSILON * max(1.0, float(np.abs(a).max(initial=0.0)))
    b_constant = b.std() <= STD_EPSILON * max(1.0, float(np.abs(b).max(initial=0.0)))
    if a_constant and b_constant:
        return 0.0
    if a_constant or b_constant:
        return float(np.sqrt(length))
    return float(np.linalg.norm(znormalize(a) - znormalize(b)))


def pairwise_znorm_distance(subsequences: np.ndarray) -> np.ndarray:
    """All-pairs z-normalised Euclidean distance matrix of the given rows.

    ``subsequences`` is a 2-D array whose rows are equal-length subsequences.
    Intended for small candidate sets (motif-set expansion, tests).
    """
    matrix = np.asarray(subsequences, dtype=np.float64)
    if matrix.ndim != 2:
        raise InvalidParameterError(f"expected a 2-D array of subsequences, got {matrix.shape}")
    count = matrix.shape[0]
    distances = np.zeros((count, count), dtype=np.float64)
    for i in range(count):
        for j in range(i + 1, count):
            d = znorm_euclidean(matrix[i], matrix[j])
            distances[i, j] = d
            distances[j, i] = d
    return distances


def correlation_to_distance(correlation: np.ndarray | float, window: int) -> np.ndarray | float:
    """Convert Pearson correlation(s) to z-normalised Euclidean distance(s).

    ``d = sqrt(2 * window * (1 - rho))``, with ``rho`` clipped to ``[-1, 1]``
    to absorb floating-point overshoot.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    rho = np.clip(np.asarray(correlation, dtype=np.float64), -1.0, 1.0)
    distances = np.sqrt(2.0 * window * (1.0 - rho))
    if np.isscalar(correlation) or np.ndim(correlation) == 0:
        return float(distances)
    return distances


def distance_to_correlation(distance: np.ndarray | float, window: int) -> np.ndarray | float:
    """Inverse of :func:`correlation_to_distance`."""
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    d = np.asarray(distance, dtype=np.float64)
    rho = 1.0 - np.square(d) / (2.0 * window)
    if np.isscalar(distance) or np.ndim(distance) == 0:
        return float(rho)
    return rho


def length_normalized(distance: np.ndarray | float, window: int) -> np.ndarray | float:
    """Length-normalised distance ``d_n = d / sqrt(window)``.

    This is the quantity the VALMOD paper uses to compare motif pairs of
    different lengths (it factorises the Euclidean distance by
    ``sqrt(1/length)``).  It is bounded by ``sqrt(2)`` for z-normalised
    subsequences, regardless of their length.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    d = np.asarray(distance, dtype=np.float64)
    normalized = d / np.sqrt(window)
    if np.isscalar(distance) or np.ndim(distance) == 0:
        return float(normalized)
    return normalized
