"""Numerically stable sliding-window statistics.

Matrix-profile style algorithms need, for every subsequence ``T[i:i+m]`` of a
series ``T``, its mean and standard deviation.  Computing them naively is
``O(n·m)``; computing them from cumulative sums is ``O(n)`` but loses
precision on long series.  The routines here use cumulative sums in
``float64`` (with a compensated fallback) and clamp tiny negative variances
to zero, which is the standard practice in matrix-profile implementations.

The :class:`SlidingStats` class precomputes the cumulative sums once and then
serves means / standard deviations / sums of squares for *any* window length
in ``O(1)`` per window, which is exactly what VALMOD needs when it grows the
subsequence length from ``l_min`` to ``l_max``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import InvalidParameterError, InvalidSeriesError

__all__ = [
    "prefix_sums",
    "moving_mean",
    "moving_std",
    "moving_mean_std",
    "SlidingStats",
]

#: Variances smaller than this fraction of the prefix-sum magnitude they were
#: derived from are treated as zero (the subsequence is considered constant):
#: below that level the value is dominated by float64 cancellation error.
_EPS_VARIANCE = 1e-15


def _as_float_array(values: np.ndarray | list | tuple, name: str = "series") -> np.ndarray:
    """Return ``values`` as a contiguous 1-D float64 array, validating it."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise InvalidSeriesError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise InvalidSeriesError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise InvalidSeriesError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(array)


def prefix_sums(series: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(cumsum, cumsum_sq)`` with a leading zero element.

    ``cumsum[j] - cumsum[i]`` is the sum of ``series[i:j]``; likewise for the
    squared values.  Both arrays have length ``len(series) + 1`` so that any
    window sum is a single subtraction.
    """
    array = _as_float_array(series)
    csum = np.empty(array.size + 1, dtype=np.float64)
    csum_sq = np.empty(array.size + 1, dtype=np.float64)
    csum[0] = 0.0
    csum_sq[0] = 0.0
    np.cumsum(array, out=csum[1:])
    np.cumsum(np.square(array), out=csum_sq[1:])
    return csum, csum_sq


def _validate_window(series_length: int, window: int) -> None:
    if window < 1:
        raise InvalidParameterError(f"window length must be >= 1, got {window}")
    if window > series_length:
        raise InvalidParameterError(
            f"window length {window} exceeds series length {series_length}"
        )


def moving_mean(series: np.ndarray, window: int) -> np.ndarray:
    """Mean of every length-``window`` subsequence of ``series``."""
    array = _as_float_array(series)
    _validate_window(array.size, window)
    csum, _ = prefix_sums(array)
    return (csum[window:] - csum[:-window]) / window


def moving_std(series: np.ndarray, window: int) -> np.ndarray:
    """Population standard deviation of every length-``window`` subsequence."""
    _, std = moving_mean_std(series, window)
    return std


def moving_mean_std(series: np.ndarray, window: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(means, stds)`` of every length-``window`` subsequence.

    Standard deviations are *population* standard deviations (``ddof=0``),
    the convention used by the matrix-profile literature.  Values that are
    numerically indistinguishable from zero are clamped to exactly ``0.0`` so
    callers can detect constant subsequences with ``std == 0``.
    """
    array = _as_float_array(series)
    _validate_window(array.size, window)
    csum, csum_sq = prefix_sums(array)
    window_sum = csum[window:] - csum[:-window]
    window_sum_sq = csum_sq[window:] - csum_sq[:-window]
    means = window_sum / window
    variances = window_sum_sq / window - np.square(means)
    # Guard against catastrophic cancellation: the error of the subtraction is
    # proportional to the magnitude of the *prefix* sums being subtracted (not
    # of the local window), so the "numerically constant" threshold scales
    # with that magnitude.
    scale = np.maximum((csum_sq[window:] + csum_sq[:-window]) / window, 1.0)
    variances[variances < _EPS_VARIANCE * scale] = 0.0
    np.maximum(variances, 0.0, out=variances)
    return means, np.sqrt(variances)


class SlidingStats:
    """Per-window statistics of a series for *any* window length in O(1).

    Parameters
    ----------
    series:
        One-dimensional, finite, non-empty array of values.

    Notes
    -----
    The object stores the two prefix-sum arrays (``O(n)`` memory) and derives
    the statistics of any window on demand.  VALMOD queries it once per
    subsequence length between ``l_min`` and ``l_max``; results for a given
    length are cached because the main loop asks for the same length many
    times (once per distance profile).
    """

    def __init__(self, series: np.ndarray) -> None:
        self._values = _as_float_array(series)
        self._csum, self._csum_sq = prefix_sums(self._values)
        self._cache: dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The underlying series (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return int(self._values.size)

    def subsequence_count(self, window: int) -> int:
        """Number of subsequences of length ``window``: ``n - window + 1``."""
        _validate_window(self._values.size, window)
        return self._values.size - window + 1

    # ------------------------------------------------------------------ #
    # window statistics
    # ------------------------------------------------------------------ #
    def mean_std(self, window: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(means, stds)`` for every subsequence of length ``window``."""
        _validate_window(self._values.size, window)
        cached = self._cache.get(window)
        if cached is not None:
            return cached
        window_sum = self._csum[window:] - self._csum[:-window]
        window_sum_sq = self._csum_sq[window:] - self._csum_sq[:-window]
        means = window_sum / window
        variances = window_sum_sq / window - np.square(means)
        # Same cancellation guard as moving_mean_std: the threshold scales
        # with the magnitude of the prefix sums being subtracted.
        scale = np.maximum((self._csum_sq[window:] + self._csum_sq[:-window]) / window, 1.0)
        variances[variances < _EPS_VARIANCE * scale] = 0.0
        np.maximum(variances, 0.0, out=variances)
        stats = (means, np.sqrt(variances))
        self._cache[window] = stats
        return stats

    def forget(self, window: int) -> None:
        """Drop the cached statistics of one window length.

        VALMOD sweeps hundreds of consecutive lengths; forgetting each length
        after its iteration keeps the cache memory bounded.
        """
        self._cache.pop(window, None)

    def means(self, window: int) -> np.ndarray:
        """Means of every subsequence of length ``window``."""
        return self.mean_std(window)[0]

    def stds(self, window: int) -> np.ndarray:
        """Standard deviations of every subsequence of length ``window``."""
        return self.mean_std(window)[1]

    def window_sum(self, start: int, length: int) -> float:
        """Sum of ``series[start:start+length]``."""
        self._validate_slice(start, length)
        return float(self._csum[start + length] - self._csum[start])

    def window_sum_sq(self, start: int, length: int) -> float:
        """Sum of squares of ``series[start:start+length]``."""
        self._validate_slice(start, length)
        return float(self._csum_sq[start + length] - self._csum_sq[start])

    def window_mean(self, start: int, length: int) -> float:
        """Mean of ``series[start:start+length]``."""
        return self.window_sum(start, length) / length

    def window_std(self, start: int, length: int) -> float:
        """Population standard deviation of ``series[start:start+length]``."""
        mean = self.window_mean(start, length)
        variance = self.window_sum_sq(start, length) / length - mean * mean
        scale = max(
            (self._csum_sq[start + length] + self._csum_sq[start]) / length, 1.0
        )
        if variance < _EPS_VARIANCE * scale:
            return 0.0
        return float(np.sqrt(max(variance, 0.0)))

    def _validate_slice(self, start: int, length: int) -> None:
        if length < 1:
            raise InvalidParameterError(f"window length must be >= 1, got {length}")
        if start < 0 or start + length > self._values.size:
            raise InvalidParameterError(
                f"window [{start}, {start + length}) is out of bounds for a series "
                f"of length {self._values.size}"
            )
