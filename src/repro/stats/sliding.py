"""Numerically stable sliding-window statistics.

Matrix-profile style algorithms need, for every subsequence ``T[i:i+m]`` of a
series ``T``, its mean and standard deviation.  Computing them naively is
``O(n·m)``; computing them from cumulative sums is ``O(n)`` but loses
precision on long series.  The routines here use cumulative sums in
``float64`` (with a compensated fallback) and clamp tiny negative variances
to zero, which is the standard practice in matrix-profile implementations.

The :class:`SlidingStats` class precomputes the cumulative sums once and then
serves means / standard deviations / sums of squares for *any* window length
in ``O(1)`` per window, which is exactly what VALMOD needs when it grows the
subsequence length from ``l_min`` to ``l_max``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.stats.distance import compensation_needed

__all__ = [
    "prefix_sums",
    "moving_mean",
    "moving_std",
    "moving_mean_std",
    "SlidingStats",
]

#: Variances smaller than this fraction of the prefix-sum magnitude they were
#: derived from are treated as zero (the subsequence is considered constant):
#: below that level the value is dominated by float64 cancellation error.
_EPS_VARIANCE = 1e-15


def _as_float_array(values: np.ndarray | list | tuple, name: str = "series") -> np.ndarray:
    """Return ``values`` as a contiguous 1-D float64 array, validating it."""
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise InvalidSeriesError(f"{name} must be one-dimensional, got shape {array.shape}")
    if array.size == 0:
        raise InvalidSeriesError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise InvalidSeriesError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(array)


def prefix_sums(series: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(cumsum, cumsum_sq)`` with a leading zero element.

    ``cumsum[j] - cumsum[i]`` is the sum of ``series[i:j]``; likewise for the
    squared values.  Both arrays have length ``len(series) + 1`` so that any
    window sum is a single subtraction.
    """
    array = _as_float_array(series)
    csum = np.empty(array.size + 1, dtype=np.float64)
    csum_sq = np.empty(array.size + 1, dtype=np.float64)
    csum[0] = 0.0
    csum_sq[0] = 0.0
    np.cumsum(array, out=csum[1:])
    np.cumsum(np.square(array), out=csum_sq[1:])
    return csum, csum_sq


def _validate_window(series_length: int, window: int) -> None:
    if window < 1:
        raise InvalidParameterError(f"window length must be >= 1, got {window}")
    if window > series_length:
        raise InvalidParameterError(
            f"window length {window} exceeds series length {series_length}"
        )


def moving_mean(series: np.ndarray, window: int) -> np.ndarray:
    """Mean of every length-``window`` subsequence of ``series``."""
    array = _as_float_array(series)
    _validate_window(array.size, window)
    csum, _ = prefix_sums(array)
    return (csum[window:] - csum[:-window]) / window


def moving_std(series: np.ndarray, window: int) -> np.ndarray:
    """Population standard deviation of every length-``window`` subsequence."""
    _, std = moving_mean_std(series, window)
    return std


def moving_mean_std(series: np.ndarray, window: int) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(means, stds)`` of every length-``window`` subsequence.

    Standard deviations are *population* standard deviations (``ddof=0``),
    the convention used by the matrix-profile literature.  Values that are
    numerically indistinguishable from zero are clamped to exactly ``0.0`` so
    callers can detect constant subsequences with ``std == 0``.

    The variance is computed from prefix sums of the *mean-shifted* series:
    the standard deviation is invariant under a global shift, but the raw
    sums of squares are not — on a series sitting at offset ``1e6`` they
    reach ``1e15`` and their float64 rounding error wipes out any variance
    below ``1e-3``.  Centering first makes the error scale with the series
    *spread* instead of its absolute offset.
    """
    array = _as_float_array(series)
    _validate_window(array.size, window)
    csum, _ = prefix_sums(array)
    center = csum[-1] / array.size
    centered = array - center
    ccsum_sq = np.empty(array.size + 1, dtype=np.float64)
    ccsum_sq[0] = 0.0
    np.cumsum(np.square(centered), out=ccsum_sq[1:])
    window_sum = csum[window:] - csum[:-window]
    means = window_sum / window
    variances, stds = _variances_from_centered(ccsum_sq, means - center, window)
    return means, stds


def _variances_from_centered(
    ccsum_sq: np.ndarray, centered_means: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(variances, stds)`` from centered sum-of-squares prefix sums.

    ``var = sum((x - c)^2) / w - (mu - c)^2`` for any constant ``c``; the
    caller passes ``c`` = the global series mean so both terms stay small.
    The cancellation guard scales with the magnitude of the prefix sums
    being subtracted, which after centering is the honest noise floor.
    """
    window_sum_sq = ccsum_sq[window:] - ccsum_sq[:-window]
    variances = window_sum_sq / window - np.square(centered_means)
    scale = np.maximum((ccsum_sq[window:] + ccsum_sq[:-window]) / window, 1.0)
    variances[variances < _EPS_VARIANCE * scale] = 0.0
    np.maximum(variances, 0.0, out=variances)
    return variances, np.sqrt(variances)


class SlidingStats:
    """Per-window statistics of a series for *any* window length in O(1).

    Parameters
    ----------
    series:
        One-dimensional, finite, non-empty array of values.

    Notes
    -----
    The object stores the two prefix-sum arrays (``O(n)`` memory) and derives
    the statistics of any window on demand.  VALMOD queries it once per
    subsequence length between ``l_min`` and ``l_max``; results for a given
    length are cached because the main loop asks for the same length many
    times (once per distance profile).
    """

    def __init__(self, series: np.ndarray) -> None:
        self._values = _as_float_array(series)
        self._csum, self._csum_sq = prefix_sums(self._values)
        self._cache: dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._centered: np.ndarray | None = None
        self._ccsum_sq: np.ndarray | None = None
        self._centered_cache: dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._compensation: dict[int, bool] = {}

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The underlying series (read-only view)."""
        view = self._values.view()
        view.flags.writeable = False
        return view

    @property
    def center(self) -> float:
        """The global mean of the series (the shift removed by ``centered_values``)."""
        return float(self._csum[-1] / self._values.size)

    @property
    def centered_values(self) -> np.ndarray:
        """The series minus its global mean, cached (read-only view).

        Z-normalised distances are invariant under a global shift of the
        series, but the sliding dot products used to compute them are not:
        on a series sitting at a large offset the products are huge and their
        rounding error survives the ``qt -> correlation`` cancellation at
        full size.  Computing the dot products on the centered copy (and
        shifting the window means by the same constant) removes that error
        at the source; the MASS / distance-profile paths do exactly this.
        """
        if self._centered is None:
            centered = self._values - self.center
            centered.flags.writeable = False
            self._centered = centered
        view = self._centered.view()
        view.flags.writeable = False
        return view

    def _centered_csum_sq(self) -> np.ndarray:
        """Prefix sums of squares of the centered series (lazy, cached)."""
        if self._ccsum_sq is None:
            ccsum_sq = np.empty(self._values.size + 1, dtype=np.float64)
            ccsum_sq[0] = 0.0
            np.cumsum(np.square(self.centered_values), out=ccsum_sq[1:])
            self._ccsum_sq = ccsum_sq
        return self._ccsum_sq

    def __len__(self) -> int:
        return int(self._values.size)

    def subsequence_count(self, window: int) -> int:
        """Number of subsequences of length ``window``: ``n - window + 1``."""
        _validate_window(self._values.size, window)
        return self._values.size - window + 1

    # ------------------------------------------------------------------ #
    # window statistics
    # ------------------------------------------------------------------ #
    def mean_std(self, window: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(means, stds)`` for every subsequence of length ``window``."""
        _validate_window(self._values.size, window)
        cached = self._cache.get(window)
        if cached is not None:
            return cached
        window_sum = self._csum[window:] - self._csum[:-window]
        means = window_sum / window
        # Variances from the *centered* sums of squares (see moving_mean_std):
        # invariant in exact arithmetic, dramatically more accurate when the
        # series sits at a large offset.
        _, stds = _variances_from_centered(
            self._centered_csum_sq(), means - self.center, window
        )
        stats = (means, stds)
        self._cache[window] = stats
        return stats

    def centered_mean_std(self, window: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(means - center, stds)`` for every subsequence, cached per window.

        These are the statistics of :attr:`centered_values` — exactly what
        the centred MASS / distance-profile / AB-join paths feed into the
        ``qt -> correlation`` conversion.  Cached separately so per-query
        loops (STAMP, PreSCRIMP, VALMOD's recomputations) do not re-subtract
        the center on every call.
        """
        cached = self._centered_cache.get(window)
        if cached is None:
            means, stds = self.mean_std(window)
            cached = (means - self.center, stds)
            self._centered_cache[window] = cached
        return cached

    def conversion_compensated(self, window: int) -> bool:
        """Whether the centred conversion should still Dekker-compensate.

        Decided once per window from the centred means and typical std (see
        :func:`repro.stats.distance.compensation_needed`); ``False`` for
        well-scaled series, ``True`` when even the centred means are large
        against the sigmas (e.g. strong drift spanning decades).
        """
        flag = self._compensation.get(window)
        if flag is None:
            centered_means, stds = self.centered_mean_std(window)
            flag = compensation_needed(centered_means, centered_means, stds)
            self._compensation[window] = flag
        return flag

    def forget(self, window: int) -> None:
        """Drop the cached statistics of one window length.

        VALMOD sweeps hundreds of consecutive lengths; forgetting each length
        after its iteration keeps the cache memory bounded.
        """
        self._cache.pop(window, None)
        self._centered_cache.pop(window, None)
        self._compensation.pop(window, None)

    def means(self, window: int) -> np.ndarray:
        """Means of every subsequence of length ``window``."""
        return self.mean_std(window)[0]

    def stds(self, window: int) -> np.ndarray:
        """Standard deviations of every subsequence of length ``window``."""
        return self.mean_std(window)[1]

    def window_sum(self, start: int, length: int) -> float:
        """Sum of ``series[start:start+length]``."""
        self._validate_slice(start, length)
        return float(self._csum[start + length] - self._csum[start])

    def window_sum_sq(self, start: int, length: int) -> float:
        """Sum of squares of ``series[start:start+length]``."""
        self._validate_slice(start, length)
        return float(self._csum_sq[start + length] - self._csum_sq[start])

    def window_mean(self, start: int, length: int) -> float:
        """Mean of ``series[start:start+length]``."""
        return self.window_sum(start, length) / length

    def window_std(self, start: int, length: int) -> float:
        """Population standard deviation of ``series[start:start+length]``."""
        centered_mean = self.window_mean(start, length) - self.center
        ccsum_sq = self._centered_csum_sq()
        variance = (
            ccsum_sq[start + length] - ccsum_sq[start]
        ) / length - centered_mean * centered_mean
        scale = max((ccsum_sq[start + length] + ccsum_sq[start]) / length, 1.0)
        if variance < _EPS_VARIANCE * scale:
            return 0.0
        return float(np.sqrt(max(variance, 0.0)))

    def _validate_slice(self, start: int, length: int) -> None:
        if length < 1:
            raise InvalidParameterError(f"window length must be >= 1, got {length}")
        if start < 0 or start + length > self._values.size:
            raise InvalidParameterError(
                f"window [{start}, {start + length}) is out of bounds for a series "
                f"of length {self._values.size}"
            )
