"""Numeric substrate: sliding statistics, z-normalisation and distances.

This package contains the low-level numerical routines every motif-discovery
algorithm in the library is built on:

* :mod:`repro.stats.sliding` — numerically stable sliding-window means,
  standard deviations and sums of squares;
* :mod:`repro.stats.znorm` — z-normalisation of (sub)sequences;
* :mod:`repro.stats.distance` — z-normalised Euclidean distance, Pearson
  correlation and the conversions between the two;
* :mod:`repro.stats.fft` — FFT-based sliding dot products (the core of MASS).
"""

from repro.stats.distance import (
    correlation_to_distance,
    distance_to_correlation,
    length_normalized,
    pairwise_znorm_distance,
    znorm_euclidean,
)
from repro.stats.fft import sliding_dot_product, sliding_dot_product_naive
from repro.stats.sliding import (
    SlidingStats,
    moving_mean,
    moving_mean_std,
    moving_std,
    prefix_sums,
)
from repro.stats.znorm import is_constant, znormalize, znormalize_subsequences

__all__ = [
    "SlidingStats",
    "correlation_to_distance",
    "distance_to_correlation",
    "is_constant",
    "length_normalized",
    "moving_mean",
    "moving_mean_std",
    "moving_std",
    "pairwise_znorm_distance",
    "prefix_sums",
    "sliding_dot_product",
    "sliding_dot_product_naive",
    "znorm_euclidean",
    "znormalize",
    "znormalize_subsequences",
]
