"""Persistence of analysis artefacts (profiles, joins, pan profiles, VALMAP, results)."""

from repro.io.serialization import (
    load_analysis_request,
    load_analysis_result,
    load_cache_entry,
    load_join_profile,
    load_matrix_profile,
    load_pan_profile,
    load_result,
    load_valmap,
    save_analysis_request,
    save_analysis_result,
    save_cache_entry,
    save_join_profile,
    save_matrix_profile,
    save_pan_profile,
    save_result,
    save_valmap,
)

__all__ = [
    "load_analysis_request",
    "load_analysis_result",
    "load_cache_entry",
    "load_join_profile",
    "load_matrix_profile",
    "load_pan_profile",
    "load_result",
    "load_valmap",
    "save_analysis_request",
    "save_analysis_result",
    "save_cache_entry",
    "save_join_profile",
    "save_matrix_profile",
    "save_pan_profile",
    "save_result",
    "save_valmap",
]
