"""Saving and loading analysis artefacts as JSON.

The demo system hands the VALMAP produced by the C back-end to the Python
front-end as a file; this module plays that role for the library.  JSON was
chosen over pickle because the artefacts are small (a few arrays and motif
lists), human-inspectable, and safe to load.

Matrix profiles and VALMAP round-trip losslessly.  :func:`save_result` stores
the full :class:`~repro.core.results.ValmodResult` dictionary; loading it back
returns that dictionary (not a reconstructed object), which is what the
benchmark harness and the reports need.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.results import ValmodResult
from repro.core.skimp import PanMatrixProfile
from repro.core.valmap import Valmap
from repro.exceptions import SerializationError
from repro.matrix_profile.ab_join import JoinProfile
from repro.matrix_profile.profile import MatrixProfile

__all__ = [
    "save_matrix_profile",
    "load_matrix_profile",
    "save_valmap",
    "load_valmap",
    "save_result",
    "load_result",
    "save_join_profile",
    "load_join_profile",
    "save_pan_profile",
    "load_pan_profile",
    "save_analysis_request",
    "load_analysis_request",
    "save_analysis_result",
    "load_analysis_result",
    "save_cache_entry",
    "load_cache_entry",
]

PathLike = Union[str, Path]


def _write_json(payload: dict, path: PathLike) -> Path:
    # Atomic write: dump to a unique sibling temp file, then rename over the
    # target.  Concurrent readers (the persistent result cache is shared
    # between processes by design) only ever see complete files, and two
    # concurrent writers cannot interleave into garbage — the last rename
    # wins wholesale.
    path = Path(path)
    temp_name = None
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{path.name}.",
            suffix=".tmp",
            delete=False,
        ) as handle:
            temp_name = handle.name
            json.dump(payload, handle, indent=2)
        os.replace(temp_name, path)
        temp_name = None
    except (OSError, TypeError, ValueError) as error:
        raise SerializationError(f"cannot write {path}: {error}") from error
    finally:
        if temp_name is not None:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
    return path


def _read_json(path: PathLike) -> dict:
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise SerializationError(f"cannot read {path}: {error}") from error
    if not isinstance(payload, dict):
        raise SerializationError(f"{path} does not contain a JSON object")
    return payload


def save_matrix_profile(profile: MatrixProfile, path: PathLike) -> Path:
    """Write a matrix profile to a JSON file."""
    payload = {"kind": "matrix_profile", **profile.as_dict()}
    return _write_json(payload, path)


def load_matrix_profile(path: PathLike) -> MatrixProfile:
    """Read a matrix profile written by :func:`save_matrix_profile`."""
    payload = _read_json(path)
    if payload.get("kind") != "matrix_profile":
        raise SerializationError(f"{path} does not contain a matrix profile")
    try:
        return MatrixProfile(
            distances=np.asarray(payload["distances"], dtype=np.float64),
            indices=np.asarray(payload["indices"], dtype=np.int64),
            window=int(payload["window"]),
            exclusion_radius=int(payload["exclusion_radius"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path} is not a valid matrix profile file: {error}") from error


def save_valmap(valmap: Valmap, path: PathLike) -> Path:
    """Write a VALMAP (including its checkpoints) to a JSON file."""
    payload = {"kind": "valmap", **valmap.as_dict()}
    return _write_json(payload, path)


def load_valmap(path: PathLike) -> Valmap:
    """Read a VALMAP written by :func:`save_valmap`."""
    payload = _read_json(path)
    if payload.get("kind") != "valmap":
        raise SerializationError(f"{path} does not contain a VALMAP")
    try:
        return Valmap.from_dict(payload)
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path} is not a valid VALMAP file: {error}") from error


def save_result(result: ValmodResult, path: PathLike) -> Path:
    """Write the full result of a VALMOD run to a JSON file."""
    payload = {"kind": "valmod_result", **result.as_dict()}
    return _write_json(payload, path)


def load_result(path: PathLike) -> dict:
    """Read a result file written by :func:`save_result` (returns a dictionary)."""
    payload = _read_json(path)
    if payload.get("kind") != "valmod_result":
        raise SerializationError(f"{path} does not contain a VALMOD result")
    return payload


def save_analysis_request(request, path: PathLike) -> Path:
    """Write an :class:`~repro.api.requests.AnalysisRequest` to a JSON file.

    This is the service-style submission format: a request document saved
    here can be loaded on another machine and replayed through
    :meth:`repro.api.Analysis.run`.
    """
    payload = {"kind": "analysis_request", "request": request.as_dict()}
    return _write_json(payload, path)


def load_analysis_request(path: PathLike):
    """Read a request written by :func:`save_analysis_request`."""
    from repro.api.requests import AnalysisRequest

    payload = _read_json(path)
    if payload.get("kind") != "analysis_request":
        raise SerializationError(f"{path} does not contain an analysis request")
    return AnalysisRequest.from_dict(payload.get("request", {}))


def save_analysis_result(result, path: PathLike) -> Path:
    """Write an :class:`~repro.api.requests.AnalysisResult` envelope to JSON."""
    payload = {"kind": "analysis_result", "result": result.as_dict()}
    return _write_json(payload, path)


def load_analysis_result(path: PathLike):
    """Read a result envelope written by :func:`save_analysis_result`."""
    from repro.api.requests import AnalysisResult

    payload = _read_json(path)
    if payload.get("kind") != "analysis_result":
        raise SerializationError(f"{path} does not contain an analysis result")
    return AnalysisResult.from_dict(payload.get("result", {}))


def save_cache_entry(
    result, key: str, path: PathLike, *, result_dict: dict | None = None
) -> Path:
    """Write one persistent-cache slot: an envelope plus its canonical key.

    The key travels inside the file so :func:`load_cache_entry` can verify
    the slot really answers the request being asked (filename hashes alone
    cannot), which is what lets
    :class:`repro.api.cache.PersistentResultCache` treat any mismatch as a
    miss instead of returning a wrong result.  ``result_dict`` optionally
    reuses an already-computed ``result.as_dict()``.
    """
    payload = {
        "kind": "analysis_cache_entry",
        "cache_key": str(key),
        "result": result.as_dict() if result_dict is None else result_dict,
    }
    return _write_json(payload, path)


def load_cache_entry(path: PathLike):
    """Read a slot written by :func:`save_cache_entry`.

    Returns ``(cache_key, AnalysisResult)``; raises
    :class:`~repro.exceptions.SerializationError` on any malformed content
    (the persistent cache converts that into a miss).
    """
    from repro.api.requests import AnalysisResult

    payload = _read_json(path)
    if payload.get("kind") != "analysis_cache_entry":
        raise SerializationError(f"{path} does not contain an analysis cache entry")
    key = payload.get("cache_key")
    if not isinstance(key, str):
        raise SerializationError(f"{path} has no cache key")
    return key, AnalysisResult.from_dict(payload.get("result", {}))


def save_join_profile(profile: JoinProfile, path: PathLike) -> Path:
    """Write an AB-join profile to a JSON file."""
    payload = {"kind": "join_profile", **profile.as_dict()}
    return _write_json(payload, path)


def load_join_profile(path: PathLike) -> JoinProfile:
    """Read an AB-join profile written by :func:`save_join_profile`."""
    payload = _read_json(path)
    if payload.get("kind") != "join_profile":
        raise SerializationError(f"{path} does not contain an AB-join profile")
    try:
        return JoinProfile(
            distances=np.asarray(payload["distances"], dtype=np.float64),
            indices=np.asarray(payload["indices"], dtype=np.int64),
            window=int(payload["window"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path} is not a valid join-profile file: {error}") from error


def save_pan_profile(pan: PanMatrixProfile, path: PathLike) -> Path:
    """Write a SKIMP pan matrix profile to a JSON file.

    ``NaN`` padding (positions a length cannot reach) is stored as ``null``
    so the file stays valid JSON.
    """
    payload = pan.as_dict()
    payload["normalized_profiles"] = [
        [None if value != value else value for value in row]
        for row in payload["normalized_profiles"]
    ]
    return _write_json({"kind": "pan_profile", **payload}, path)


def load_pan_profile(path: PathLike) -> PanMatrixProfile:
    """Read a pan matrix profile written by :func:`save_pan_profile`."""
    payload = _read_json(path)
    if payload.get("kind") != "pan_profile":
        raise SerializationError(f"{path} does not contain a pan matrix profile")
    try:
        normalized = np.asarray(
            [
                [np.nan if value is None else float(value) for value in row]
                for row in payload["normalized_profiles"]
            ],
            dtype=np.float64,
        )
        return PanMatrixProfile(
            lengths=np.asarray(payload["lengths"], dtype=np.int64),
            normalized_profiles=normalized,
            index_profiles=np.asarray(payload["index_profiles"], dtype=np.int64),
            min_length=int(payload["min_length"]),
            max_length=int(payload["max_length"]),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"{path} is not a valid pan-profile file: {error}") from error
