"""Streaming motif / discord monitoring on top of the incremental profile.

The monitor answers the operational question behind the paper's application
domains ("is the pattern we care about happening again, and did anything
anomalous just happen?") while the recording is still being acquired:

* every appended point updates one or more
  :class:`~repro.streaming.stampi.StreamingMatrixProfile` instances (one per
  monitored subsequence length);
* whenever the best motif pair improves by more than a configurable margin,
  or a new discord exceeds the previous record, a :class:`MotifEvent` is
  emitted;
* on demand (or every ``valmap_refresh`` points) the monitor runs VALMOD on
  the recent history to refresh a variable-length VALMAP snapshot, so the
  full expressiveness of the paper's meta-data remains available on streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.core.valmod import valmod
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.profile import MotifPair
from repro.series.validation import validate_series
from repro.streaming.stampi import StreamingMatrixProfile

__all__ = ["MotifEvent", "StreamingMotifMonitor"]


@dataclass(frozen=True)
class MotifEvent:
    """One noteworthy change observed while ingesting the stream.

    Attributes
    ----------
    kind:
        ``"motif"`` when the best motif pair of a monitored length improved,
        ``"discord"`` when a new strongest discord appeared.
    position:
        Stream length (number of points seen) when the event fired.
    window:
        The monitored subsequence length the event refers to.
    distance:
        The new best motif distance, or the new discord's nearest-neighbour
        distance.
    offsets:
        The motif pair offsets, or a one-element tuple with the discord offset.
    """

    kind: str
    position: int
    window: int
    distance: float
    offsets: tuple[int, ...]

    def as_dict(self) -> dict:
        """Plain-dict form for logs and reports."""
        return {
            "kind": self.kind,
            "position": self.position,
            "window": self.window,
            "distance": self.distance,
            "offsets": list(self.offsets),
        }


class StreamingMotifMonitor:
    """Track motifs and discords of one or more lengths over a growing stream.

    Parameters
    ----------
    initial_values:
        The points observed before monitoring starts (must cover at least the
        largest monitored window).
    windows:
        The subsequence lengths to monitor (each gets its own incremental
        profile).
    improvement_margin:
        Relative improvement of the best motif distance required to emit a new
        ``"motif"`` event (guards against a flood of events caused by
        infinitesimal improvements).
    discord_margin:
        Relative increase of the largest nearest-neighbour distance required
        to emit a ``"discord"`` event.
    valmap_refresh:
        When positive, a VALMOD run over the most recent ``history`` points is
        triggered every ``valmap_refresh`` appended points, refreshing
        :attr:`last_valmap_result`.
    history:
        Length of the suffix used for the periodic VALMOD refresh (defaults to
        the full stream).
    """

    def __init__(
        self,
        initial_values,
        windows: Sequence[int] | int,
        *,
        improvement_margin: float = 0.01,
        discord_margin: float = 0.05,
        valmap_refresh: int = 0,
        history: int | None = None,
    ) -> None:
        values = validate_series(initial_values)
        if isinstance(windows, (int, np.integer)):
            windows = [int(windows)]
        window_list = sorted({int(window) for window in windows})
        if not window_list:
            raise InvalidParameterError("at least one window length must be monitored")
        if improvement_margin < 0 or discord_margin < 0:
            raise InvalidParameterError("event margins must be >= 0")
        if valmap_refresh < 0:
            raise InvalidParameterError(
                f"valmap_refresh must be >= 0, got {valmap_refresh}"
            )
        self._improvement_margin = float(improvement_margin)
        self._discord_margin = float(discord_margin)
        self._valmap_refresh = int(valmap_refresh)
        self._history = None if history is None else int(history)
        if self._history is not None and self._history < max(window_list) * 2:
            raise InvalidParameterError(
                "history must cover at least twice the largest monitored window"
            )

        self._profiles = {
            window: StreamingMatrixProfile(values, window) for window in window_list
        }
        self._best_distance = {}
        self._worst_discord = {}
        for window, profile in self._profiles.items():
            snapshot = profile.profile()
            finite = snapshot.distances[np.isfinite(snapshot.distances)]
            self._best_distance[window] = float(finite.min()) if finite.size else np.inf
            self._worst_discord[window] = float(finite.max()) if finite.size else 0.0
        self._events: List[MotifEvent] = []
        self._since_refresh = 0
        self.last_valmap_result = None

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def append(self, value: float) -> List[MotifEvent]:
        """Ingest one point and return the events it triggered (possibly none)."""
        fired: List[MotifEvent] = []
        for window, profile in self._profiles.items():
            created = profile.append(value)
            if created < 0:
                continue
            fired.extend(self._check_window(window, profile))
        self._since_refresh += 1
        if self._valmap_refresh and self._since_refresh >= self._valmap_refresh:
            self.refresh_valmap()
            self._since_refresh = 0
        self._events.extend(fired)
        return fired

    def extend(self, values: Iterable[float]) -> List[MotifEvent]:
        """Ingest a batch of points and return every event they triggered."""
        fired: List[MotifEvent] = []
        for value in values:
            fired.extend(self.append(float(value)))
        return fired

    def _check_window(
        self, window: int, profile: StreamingMatrixProfile
    ) -> List[MotifEvent]:
        fired: List[MotifEvent] = []
        snapshot = profile.profile()
        finite = np.isfinite(snapshot.distances)
        if not finite.any():
            return fired
        best_offset = int(np.argmin(np.where(finite, snapshot.distances, np.inf)))
        best_distance = float(snapshot.distances[best_offset])
        previous_best = self._best_distance[window]
        if best_distance < previous_best * (1.0 - self._improvement_margin) or (
            not np.isfinite(previous_best) and np.isfinite(best_distance)
        ):
            match = int(snapshot.indices[best_offset])
            fired.append(
                MotifEvent(
                    kind="motif",
                    position=len(profile),
                    window=window,
                    distance=best_distance,
                    offsets=(best_offset, match),
                )
            )
            self._best_distance[window] = best_distance
        worst = float(snapshot.distances[finite].max())
        previous_worst = self._worst_discord[window]
        if worst > previous_worst * (1.0 + self._discord_margin):
            discord_offset = int(
                np.argmax(np.where(finite, snapshot.distances, -np.inf))
            )
            fired.append(
                MotifEvent(
                    kind="discord",
                    position=len(profile),
                    window=window,
                    distance=worst,
                    offsets=(discord_offset,),
                )
            )
            self._worst_discord[window] = worst
        return fired

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def windows(self) -> List[int]:
        """The monitored subsequence lengths, ascending."""
        return sorted(self._profiles)

    @property
    def events(self) -> List[MotifEvent]:
        """Every event emitted since construction, in arrival order."""
        return list(self._events)

    def stream_length(self) -> int:
        """Number of points observed so far."""
        return len(next(iter(self._profiles.values())))

    def best_motif(self, window: int | None = None) -> MotifPair:
        """Current best motif pair of one monitored length (or the smallest one)."""
        profile = self._profile_for(window)
        return profile.best_motif()

    def top_discords(self, k: int = 1, window: int | None = None) -> List[int]:
        """Current top-``k`` discord offsets of one monitored length."""
        return self._profile_for(window).top_discords(k)

    def profile(self, window: int | None = None):
        """Snapshot of the incremental matrix profile of one monitored length."""
        return self._profile_for(window).profile()

    def _profile_for(self, window: int | None) -> StreamingMatrixProfile:
        if window is None:
            window = self.windows[0]
        if window not in self._profiles:
            raise InvalidParameterError(
                f"window {window} is not monitored; available: {self.windows}"
            )
        return self._profiles[window]

    # ------------------------------------------------------------------ #
    # variable-length snapshot
    # ------------------------------------------------------------------ #
    def refresh_valmap(self, *, top_k: int = 3):
        """Run VALMOD over the recent history and cache the result.

        The length range spans the monitored windows (``[min(windows),
        max(windows)]``); when a single window is monitored the refresh
        degenerates to a fixed-length matrix profile, mirroring the paper's
        observation that VALMAP with a single length coincides with the
        length-normalised matrix profile.
        """
        reference = next(iter(self._profiles.values()))
        values = np.array(reference.values)
        if self._history is not None and values.size > self._history:
            values = values[-self._history :]
        min_length = self.windows[0]
        max_length = max(self.windows[-1], min_length + 1)
        result = valmod(values, min_length, max_length, top_k=top_k)
        self.last_valmap_result = result
        return result
