"""STAMPI — incremental maintenance of the matrix profile under appends.

STAMPI (the incremental variant introduced with STAMP in Matrix Profile I)
keeps the self-join matrix profile of a growing series exact after every
appended point.  When a point arrives, exactly one new subsequence appears at
the tail of the series; its distance profile against all existing
subsequences is computed in ``O(n)`` with the incremental dot-product
recurrence, and is used twice:

* its minimum (outside the exclusion zone) becomes the new profile entry;
* every existing entry is lowered where the new subsequence is a closer
  neighbour than the previously recorded one.

Both updates preserve exactness, so after any number of appends the object
holds exactly what a batch STOMP run over the current values would produce
(the tests assert this point by point).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.distance_profile import distances_from_dot_products
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.matrix_profile.profile import MatrixProfile, MotifPair
from repro.matrix_profile.stomp import stomp
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.fft import sliding_dot_product

__all__ = ["StreamingMatrixProfile"]

#: The values buffer grows geometrically; this is its initial headroom.
_INITIAL_CAPACITY = 256


class StreamingMatrixProfile:
    """Exact matrix profile of a growing series, maintained under appends.

    Parameters
    ----------
    initial_values:
        The series observed so far (at least ``window + exclusion radius``
        points are needed before any motif pair can exist; fewer points are
        accepted, the profile simply stays empty until the series is long
        enough).
    window:
        Subsequence length ``m`` of the maintained profile.
    exclusion_radius:
        Trivial-match radius; defaults to ``ceil(m / 4)``.

    Notes
    -----
    Appending one point costs ``O(n)`` time (one dot-product recurrence pass
    plus two vectorised minimum updates), so ingesting ``k`` points into a
    series of final length ``n`` costs ``O(n·k)`` — the same asymptotic cost
    as one batch STOMP run restricted to the new rows, without ever touching
    the rows that did not change.
    """

    def __init__(
        self,
        initial_values,
        window: int,
        *,
        exclusion_radius: int | None = None,
    ) -> None:
        values = validate_series(initial_values, min_length=2)
        self._window = validate_subsequence_length(values.size, window)
        self._radius = (
            default_exclusion_radius(self._window)
            if exclusion_radius is None
            else int(exclusion_radius)
        )
        if self._radius < 0:
            raise InvalidParameterError(
                f"exclusion radius must be >= 0, got {self._radius}"
            )

        # Growable buffer holding the stream seen so far.
        self._capacity = max(_INITIAL_CAPACITY, 2 * values.size)
        self._values = np.empty(self._capacity, dtype=np.float64)
        self._values[: values.size] = values
        self._length = int(values.size)

        # Seed the profile with a batch STOMP run over the initial values.
        base = stomp(values, self._window, exclusion_radius=self._radius)
        count = len(base)
        self._profile_capacity = max(_INITIAL_CAPACITY, 2 * count)
        self._distances = np.full(self._profile_capacity, np.inf, dtype=np.float64)
        self._indices = np.full(self._profile_capacity, -1, dtype=np.int64)
        self._distances[:count] = base.distances
        self._indices[:count] = base.indices
        self._count = count

        # Dot products of the *last* subsequence against every other one,
        # kept so the next append can apply the O(1)-per-entry recurrence.
        last = values[values.size - self._window :]
        self._last_dot_products = sliding_dot_product(last, values)
        self._appended = 0

    # ------------------------------------------------------------------ #
    # read-only views
    # ------------------------------------------------------------------ #
    @property
    def window(self) -> int:
        """The maintained subsequence length."""
        return self._window

    @property
    def exclusion_radius(self) -> int:
        """The trivial-match radius used by the profile."""
        return self._radius

    @property
    def values(self) -> np.ndarray:
        """The stream observed so far (read-only view)."""
        view = self._values[: self._length].view()
        view.flags.writeable = False
        return view

    @property
    def appended_points(self) -> int:
        """Number of points appended after construction."""
        return self._appended

    def __len__(self) -> int:
        """Number of points observed so far."""
        return self._length

    @property
    def subsequence_count(self) -> int:
        """Number of subsequences (profile entries) currently maintained."""
        return self._count

    def profile(self) -> MatrixProfile:
        """Snapshot of the current exact matrix profile."""
        return MatrixProfile(
            distances=np.array(self._distances[: self._count]),
            indices=np.array(self._indices[: self._count]),
            window=self._window,
            exclusion_radius=self._radius,
        )

    def best_motif(self) -> MotifPair:
        """The current best motif pair (smallest profile entry)."""
        return self.profile().best()

    def top_discords(self, k: int = 1) -> list[int]:
        """Offsets of the current top-``k`` discords."""
        return self.profile().discords(k)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def append(self, value: float) -> int:
        """Ingest one point; returns the offset of the newly created subsequence.

        Returns ``-1`` while the stream is still shorter than one window (no
        new subsequence is created yet).
        """
        number = float(value)
        if not np.isfinite(number):
            raise InvalidParameterError(f"appended values must be finite, got {value!r}")
        self._ensure_value_capacity(self._length + 1)
        self._values[self._length] = number
        self._length += 1
        self._appended += 1
        if self._length < self._window:
            return -1
        return self._add_subsequence()

    def extend(self, values) -> int:
        """Ingest a batch of points; returns the number of new subsequences."""
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1:
            raise InvalidParameterError(
                f"extend expects a 1-D batch of values, got shape {array.shape}"
            )
        created = 0
        for value in array.tolist():
            if self.append(value) >= 0:
                created += 1
        return created

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_value_capacity(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        self._capacity = max(needed, 2 * self._capacity)
        grown = np.empty(self._capacity, dtype=np.float64)
        grown[: self._length] = self._values[: self._length]
        self._values = grown

    def _ensure_profile_capacity(self, needed: int) -> None:
        if needed <= self._profile_capacity:
            return
        self._profile_capacity = max(needed, 2 * self._profile_capacity)
        distances = np.full(self._profile_capacity, np.inf, dtype=np.float64)
        indices = np.full(self._profile_capacity, -1, dtype=np.int64)
        distances[: self._count] = self._distances[: self._count]
        indices[: self._count] = self._indices[: self._count]
        self._distances = distances
        self._indices = indices

    def _add_subsequence(self) -> int:
        """Create the profile entry for the newest subsequence and refresh the rest."""
        window = self._window
        length = self._length
        values = self._values[:length]
        offset = length - window  # offset of the new (last) subsequence
        count = offset + 1

        # Dot products of the new last subsequence against every subsequence.
        if count == 1:
            dot_products = np.array(
                [float(np.dot(values[offset:], values[offset:]))], dtype=np.float64
            )
        elif self._last_dot_products.size == count - 1:
            previous = self._last_dot_products
            dot_products = np.empty(count, dtype=np.float64)
            # Recurrence over the query: QT_new[j] pairs the new tail query
            # with subsequence j; it extends QT_old[j-1] (previous tail query
            # against subsequence j-1) by one trailing product and drops one
            # leading product.
            dot_products[1:] = (
                previous
                - values[offset - 1] * values[: count - 1]
                + values[length - 1] * values[window : window + count - 1]
            )
            dot_products[0] = float(np.dot(values[offset : offset + window], values[:window]))
        else:
            # Fallback (first append after construction on a very short seed).
            dot_products = sliding_dot_product(values[offset:], values)
        self._last_dot_products = dot_products

        means, stds = self._window_stats(values, window)
        query_mean = float(means[offset])
        query_std = float(stds[offset])
        profile = distances_from_dot_products(
            dot_products, window, query_mean, query_std, means, stds
        )
        masked = np.array(profile)
        apply_exclusion_zone(masked, offset, self._radius)

        self._ensure_profile_capacity(count)
        # 1. entry of the new subsequence: its nearest neighbour so far.
        best = int(np.argmin(masked)) if masked.size else -1
        if best >= 0 and np.isfinite(masked[best]):
            self._distances[offset] = float(masked[best])
            self._indices[offset] = best
        else:
            self._distances[offset] = np.inf
            self._indices[offset] = -1
        # 2. existing entries: adopt the new subsequence where it is closer.
        if count > 1:
            existing = masked[: count - 1]
            better = existing < self._distances[: count - 1]
            if np.any(better):
                self._distances[: count - 1][better] = existing[better]
                self._indices[: count - 1][better] = offset
        self._count = count
        return offset

    def _window_stats(self, values: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
        """Means and standard deviations of every subsequence of the current buffer.

        Variances come from prefix sums of the *mean-shifted* buffer, the
        same centering discipline as :func:`repro.stats.sliding.moving_mean_std`:
        on a buffer sitting at a large offset the raw sums of squares lose
        any variance below ``eps * offset^2`` to cancellation.
        """
        csum = np.concatenate(([0.0], np.cumsum(values)))
        center = csum[-1] / values.size
        centered = values - center
        ccsum_sq = np.concatenate(([0.0], np.cumsum(np.square(centered))))
        window_sum = csum[window:] - csum[:-window]
        window_sum_sq = ccsum_sq[window:] - ccsum_sq[:-window]
        means = window_sum / window
        variances = window_sum_sq / window - np.square(means - center)
        scale = np.maximum((ccsum_sq[window:] + ccsum_sq[:-window]) / window, 1.0)
        variances[variances < 1e-15 * scale] = 0.0
        np.maximum(variances, 0.0, out=variances)
        return means, np.sqrt(variances)
