"""Streaming / incremental matrix-profile maintenance.

The VALMOD paper analyses static recordings, but the domains it motivates
(medicine, seismology, entomology) produce *streams*: new points keep
arriving and the analyst wants the motif structure to stay current without
recomputing everything.  This package provides the incremental substrate:

* :class:`~repro.streaming.stampi.StreamingMatrixProfile` — STAMPI-style
  maintenance of the fixed-length matrix profile under appends (exactly the
  batch profile after every append, at ``O(n)`` per new point);
* :class:`~repro.streaming.monitor.StreamingMotifMonitor` — a higher-level
  monitor that tracks the best motif pair and the top discord as the stream
  grows, and can periodically refresh a variable-length VALMAP snapshot.
"""

from repro.streaming.monitor import MotifEvent, StreamingMotifMonitor
from repro.streaming.stampi import StreamingMatrixProfile

__all__ = ["MotifEvent", "StreamingMatrixProfile", "StreamingMotifMonitor"]
