"""Extraction layer of the motif/discord index.

Every analysis payload the session can produce — a fixed-length
:class:`~repro.matrix_profile.profile.MatrixProfile`, a VALMOD
:class:`~repro.core.results.ValmodResult`, the cross-algorithm
:class:`~repro.baselines.base.RangeDiscoveryResult` view, a discord list, a
SKIMP :class:`~repro.core.skimp.PanMatrixProfile` — carries motifs and/or
discords in its own native shape.  This module flattens them all into one
row type, :class:`IndexRecord`, which is what
:class:`~repro.index.catalog.MotifIndex` persists and queries.

Two invariants matter more than the per-payload details:

* **Determinism** — a record is a pure function of the payload.  Since the
  result envelopes round-trip through JSON losslessly (Python ``repr``
  floats), extracting from a live in-process result and extracting from the
  same result re-read off disk produce byte-identical rows; this is what
  makes :meth:`~repro.index.catalog.MotifIndex.backfill` populate exactly
  the rows live ingest would have.
* **Comparability** — every row's ``score`` is the length-normalised
  distance ``d / sqrt(length)`` (the paper's cross-length quantity): lower
  is a tighter motif, higher is a stronger discord, and rows of different
  lengths and different algorithms rank on one axis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, List, Mapping

import numpy as np

from repro.baselines.base import RangeDiscoveryResult
from repro.core.discords import VariableLengthDiscord
from repro.core.motif_sets import MotifSet
from repro.core.results import ValmodResult
from repro.core.skimp import PanMatrixProfile
from repro.exceptions import EmptyResultError, InvalidParameterError, SerializationError
from repro.matrix_profile.profile import MatrixProfile, MotifPair

__all__ = [
    "IndexRecord",
    "extract_records",
    "records_from_motif_set",
    "load_sidecar_view",
    "PROFILE_TOP_K",
]

#: How many motif pairs / discords a fixed-length matrix profile contributes
#: to the index.  Matches the default ``k`` of ``MatrixProfile.motifs`` /
#: ``.discords`` — the index catalogs what a caller of those accessors would
#: have seen.
PROFILE_TOP_K = 3

#: The row kinds the index knows about.
RECORD_KINDS = ("motif", "discord", "motif_set")


@dataclass(frozen=True)
class IndexRecord:
    """One catalog row: a motif pair, a discord, or a motif-set occurrence.

    Attributes
    ----------
    series_digest, series_name:
        Identity of the series the event was found in.
    kind:
        ``"motif"``, ``"discord"`` or ``"motif_set"``.
    length:
        Subsequence length of the event.
    score:
        Length-normalised distance ``d / sqrt(length)`` — comparable across
        lengths and algorithms (motifs: lower is better; discords: higher is
        more anomalous).
    start, end:
        The event's span, ``end = start + length`` (for a motif pair this is
        the span of the *first* member; the second lives at ``partner``).
    partner:
        The companion offset — a motif pair's other member, a discord's
        nearest neighbour, a motif-set occurrence's pair anchor.  ``None``
        when the payload carries no companion.
    distance:
        The raw (un-normalised) z-normalised Euclidean distance.
    algorithm:
        Canonical registry key of the algorithm that produced the result.
    result_key:
        Canonical cache key of the producing request — the same identity the
        session cache, the persistent spill and the service share, so live
        ingest and backfill dedupe against each other.
    """

    series_digest: str
    series_name: str
    kind: str
    length: int
    score: float
    start: int
    end: int
    partner: int | None
    distance: float
    algorithm: str
    result_key: str

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise InvalidParameterError(
                f"unknown index record kind {self.kind!r}; expected one of "
                f"{list(RECORD_KINDS)}"
            )
        if int(self.length) < 1:
            raise InvalidParameterError(f"length must be >= 1, got {self.length}")
        if int(self.end) != int(self.start) + int(self.length):
            raise InvalidParameterError(
                f"end must equal start + length ({self.start} + {self.length}), "
                f"got {self.end}"
            )

    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) form — the row shape queries return."""
        return {
            "series_digest": self.series_digest,
            "series_name": self.series_name,
            "kind": self.kind,
            "length": int(self.length),
            "score": float(self.score),
            "start": int(self.start),
            "end": int(self.end),
            "partner": None if self.partner is None else int(self.partner),
            "distance": float(self.distance),
            "algorithm": self.algorithm,
            "result_key": self.result_key,
        }


def _motif_record(
    pair: MotifPair,
    *,
    series_digest: str,
    series_name: str,
    algorithm: str,
    result_key: str,
) -> IndexRecord:
    return IndexRecord(
        series_digest=series_digest,
        series_name=series_name,
        kind="motif",
        length=int(pair.window),
        score=float(pair.normalized_distance),
        start=int(pair.offset_a),
        end=int(pair.offset_a) + int(pair.window),
        partner=int(pair.offset_b),
        distance=float(pair.distance),
        algorithm=algorithm,
        result_key=result_key,
    )


def _records_from_profile(
    profile: MatrixProfile, **identity: Any
) -> List[IndexRecord]:
    """Motif pairs and discords of one fixed-length matrix profile."""
    records: List[IndexRecord] = []
    try:
        pairs = profile.motifs(PROFILE_TOP_K)
    except (EmptyResultError, InvalidParameterError):
        pairs = []
    records.extend(_motif_record(pair, **identity) for pair in pairs)
    window = int(profile.window)
    try:
        offsets = profile.discords(PROFILE_TOP_K)
    except (EmptyResultError, InvalidParameterError):
        offsets = []
    for offset in offsets:
        distance = float(profile.distances[offset])
        if not math.isfinite(distance):
            continue
        partner = int(profile.indices[offset])
        records.append(
            IndexRecord(
                series_digest=identity["series_digest"],
                series_name=identity["series_name"],
                kind="discord",
                length=window,
                score=distance / math.sqrt(window),
                start=int(offset),
                end=int(offset) + window,
                partner=partner if partner >= 0 else None,
                distance=distance,
                algorithm=identity["algorithm"],
                result_key=identity["result_key"],
            )
        )
    return records


def _records_from_range_result(
    view: RangeDiscoveryResult, **identity: Any
) -> List[IndexRecord]:
    """Per-length motif pairs of a range-discovery result (any algorithm)."""
    records: List[IndexRecord] = []
    for length in view.lengths:
        records.extend(
            _motif_record(pair, **identity) for pair in view.motifs_at(length)
        )
    return records


def _records_from_discords(
    discords: List[VariableLengthDiscord], **identity: Any
) -> List[IndexRecord]:
    return [
        IndexRecord(
            series_digest=identity["series_digest"],
            series_name=identity["series_name"],
            kind="discord",
            length=int(discord.window),
            score=float(discord.normalized_distance),
            start=int(discord.offset),
            end=int(discord.offset) + int(discord.window),
            partner=int(discord.nearest_neighbor),
            distance=float(discord.distance),
            algorithm=identity["algorithm"],
            result_key=identity["result_key"],
        )
        for discord in discords
    ]


def _records_from_pan_profile(
    pan: PanMatrixProfile, **identity: Any
) -> List[IndexRecord]:
    """The best motif of every evaluated pan-profile length.

    The pan rows are already length-normalised, so the row minimum *is* the
    score; the raw distance is recovered by undoing the normalisation.
    """
    records: List[IndexRecord] = []
    for row, length in enumerate(pan.lengths.tolist()):
        normalized = pan.normalized_profiles[row]
        finite = np.isfinite(normalized)
        if not finite.any():
            continue
        start = int(np.argmin(np.where(finite, normalized, np.inf)))
        partner = int(pan.index_profiles[row][start])
        if partner < 0:
            continue
        score = float(normalized[start])
        records.append(
            IndexRecord(
                series_digest=identity["series_digest"],
                series_name=identity["series_name"],
                kind="motif",
                length=int(length),
                score=score,
                start=start,
                end=start + int(length),
                partner=partner,
                distance=score * math.sqrt(int(length)),
                algorithm=identity["algorithm"],
                result_key=identity["result_key"],
            )
        )
    return records


def extract_records(result, *, series_digest: str, result_key: str) -> List[IndexRecord]:
    """Flatten one :class:`~repro.api.requests.AnalysisResult` into rows.

    Dispatches on the payload's native type; payloads that carry no
    catalogable events (AB-join profiles, MPdist scalars) yield an empty
    list — indexing them is a no-op, not an error.
    """
    identity = {
        "series_digest": series_digest,
        "series_name": str(getattr(result, "series_name", "series")),
        "algorithm": str(getattr(result, "algo", "unknown")),
        "result_key": result_key,
    }
    payload = getattr(result, "payload", result)
    if isinstance(payload, ValmodResult):
        return _records_from_range_result(_valmod_view(payload), **identity)
    if isinstance(payload, RangeDiscoveryResult):
        return _records_from_range_result(payload, **identity)
    if isinstance(payload, MatrixProfile):
        return _records_from_profile(payload, **identity)
    if isinstance(payload, PanMatrixProfile):
        return _records_from_pan_profile(payload, **identity)
    if isinstance(payload, list) and payload and all(
        isinstance(item, VariableLengthDiscord) for item in payload
    ):
        return _records_from_discords(payload, **identity)
    return []


def _valmod_view(result: ValmodResult) -> RangeDiscoveryResult:
    """The per-length motif view of a full VALMOD result.

    Built directly from ``length_results`` (the same ``MotifPair`` lists
    ``_range_result_from_valmod`` reuses), so indexing the in-process result
    and indexing its serialised envelope produce identical rows.
    """
    return RangeDiscoveryResult(
        algorithm="valmod",
        motifs_by_length={
            length: list(result.length_results[length].motifs)
            for length in result.lengths
        },
        elapsed_seconds=result.elapsed_seconds,
    )


def records_from_motif_set(
    motif_set: MotifSet,
    *,
    series_digest: str,
    series_name: str = "series",
    algorithm: str = "motif_set",
    result_key: str,
) -> List[IndexRecord]:
    """One ``motif_set`` row per occurrence of a motif set.

    Motif sets are discovered through the flat
    :mod:`repro.core.motif_sets` helpers rather than the session dispatch,
    so callers index them explicitly; each occurrence's score is its
    length-normalised distance to the nearest pair member and the partner is
    the set's anchor (the pair's first offset).
    """
    window = int(motif_set.window)
    anchor = int(motif_set.pair.offset_a)
    records: List[IndexRecord] = []
    for occurrence, distance in zip(motif_set.occurrences, motif_set.distances):
        records.append(
            IndexRecord(
                series_digest=series_digest,
                series_name=series_name,
                kind="motif_set",
                length=window,
                score=float(distance) / math.sqrt(window),
                start=int(occurrence),
                end=int(occurrence) + window,
                partner=anchor,
                distance=float(distance),
                algorithm=algorithm,
                result_key=result_key,
            )
        )
    return records


def load_sidecar_view(payload: Mapping):
    """Rebuild a motifs view from a ``.valmod.json`` sidecar document.

    Tries the lossless :meth:`~repro.core.results.ValmodResult.from_dict`
    first; an older sidecar missing optional fields (``base_profile``,
    ``valmap``, ``config`` — anything beyond the per-length motif lists)
    degrades to the tagged envelope view
    (:class:`~repro.api.requests.EnvelopeRangeResult`) instead of raising,
    so :meth:`~repro.index.catalog.MotifIndex.backfill` can walk historical
    corpora.  Only a document without even ``length_results`` raises
    :class:`~repro.exceptions.SerializationError`.
    """
    try:
        return ValmodResult.from_dict(payload)
    except (KeyError, TypeError, ValueError):
        pass
    from repro.api.requests import EnvelopeRangeResult

    try:
        motifs_by_length = {
            int(length): [
                MotifPair(
                    distance=float(pair["distance"]),
                    offset_a=int(pair["offset_a"]),
                    offset_b=int(pair["offset_b"]),
                    window=int(pair["window"]),
                )
                for pair in entry["motifs"]
            ]
            for length, entry in payload["length_results"].items()
        }
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise SerializationError(
            f"not a usable valmod sidecar: {error}"
        ) from error
    return EnvelopeRangeResult(
        algorithm="valmod",
        motifs_by_length=motifs_by_length,
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0) or 0.0),
    )
