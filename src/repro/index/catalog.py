"""The SQLite-backed motif/discord catalog (:class:`MotifIndex`).

Every answered analysis request used to be a one-shot JSON envelope: the
persistent result cache can only be hit by exact request key, so the corpus
of discovered motifs and discords was write-only.  The catalog turns it into
a queryable product surface — one SQLite database under the shared
``--data-dir`` namespace (``<root>/index/catalog.db``, WAL mode,
schema-versioned) holding one row per motif pair / discord / motif-set
occurrence, keyed by

    ``(series_digest, kind, length, score, start, end, algorithm,
    result_key)``

so inserting the same event twice — live ingest then :meth:`backfill`, or a
re-run backfill — is an ``INSERT OR IGNORE`` no-op and the catalog stays
duplicate-free by construction.

Degradation contract
--------------------
The index mirrors the store's corrupted-blob → miss + heal behaviour: it is
an *accelerator over data that exists elsewhere* (the result corpus), so it
must never take a request down.

* a **corrupt** database file is deleted and recreated empty (one tagged
  ``[repro.index]`` warning; :meth:`backfill` rebuilds the contents);
* a **locked / unwritable** database degrades the single affected call —
  queries answer empty, ingests skip — without touching the file;
* :meth:`ingest_result` never raises, whatever the payload.

Concurrency: one :class:`MotifIndex` object is thread-safe (a single lock
serialises its one connection — the service ingests from worker threads
while ``GET /query`` reads).  Across processes, WAL mode gives concurrent
readers a consistent snapshot while one writer appends.
"""

from __future__ import annotations

import sqlite3
import threading
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, List, Mapping

from repro import obs
from repro.exceptions import InvalidParameterError, SerializationError
from repro.index.extract import (
    RECORD_KINDS,
    IndexRecord,
    extract_records,
    load_sidecar_view,
)
from repro.store.series_store import RESULTS_SUBDIR, is_series_digest

__all__ = [
    "MotifIndex",
    "QuerySpec",
    "open_motif_index",
    "INDEX_SUBDIR",
    "SCHEMA_VERSION",
]

#: Sub-directory of a shared data root the catalog lives in (next to the
#: store's ``series`` and the result cache's ``results``).
INDEX_SUBDIR = "index"

#: Database file name inside :data:`INDEX_SUBDIR`.
_CATALOG_NAME = "catalog.db"

#: Bumped on any incompatible schema change; a database carrying a different
#: version is rebuilt empty (the corpus re-enters via ``backfill``) — except
#: v1, which migrates in place (v2 only added the ``ingested_at`` column).
SCHEMA_VERSION = 2

_INDEX_METRICS = obs.scope("index")
_INGESTED_RESULTS = _INDEX_METRICS.counter("ingested_results")
_ROWS_ADDED = _INDEX_METRICS.counter("rows_added")
_QUERIES = _INDEX_METRICS.counter("queries")
_PRUNED_ROWS = _INDEX_METRICS.counter("pruned_rows")
_HEALS = _INDEX_METRICS.counter("heals")
_MIGRATIONS = _INDEX_METRICS.counter("migrations")

_ORDERINGS = {
    "score": "score ASC",
    "-score": "score DESC",
    "length": "length ASC",
    "-length": "length DESC",
}

#: Deterministic tie-break appended to every ordering, so equal-score rows
#: come back in one stable order whatever insertion order produced them.
_TIE_BREAK = "series_digest ASC, length ASC, start ASC, algorithm ASC, result_key ASC"

_ROW_COLUMNS = (
    "series_digest",
    "series_name",
    "kind",
    "length",
    "score",
    "start",
    "end",
    "partner",
    "distance",
    "algorithm",
    "result_key",
    "ingested_at",
)

#: ``end`` is a reserved SQLite word; every statement quotes the columns.
_QUOTED_COLUMNS = ", ".join(f'"{column}"' for column in _ROW_COLUMNS)


def _parse_timestamp(value, label: str) -> float:
    """``since=`` / ``until=`` value → epoch seconds.

    Accepts a number (epoch seconds) or an ISO-8601 date / datetime
    (``2026-08-07``, ``2026-08-07T12:30:00``; naive values are local time,
    matching the ``ingested_at`` stamps written by :func:`repro.obs.now`).
    """
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        pass
    from datetime import datetime

    try:
        return datetime.fromisoformat(text).timestamp()
    except ValueError as error:
        raise InvalidParameterError(
            f"cannot parse {label} timestamp {value!r}: expected epoch "
            f"seconds or an ISO date/datetime ({error})"
        ) from error


def _parse_range(value: str, caster, label: str):
    """``"a..b"`` / ``"a.."`` / ``"..b"`` / ``"a"`` → ``(lo, hi)``."""
    text = str(value).strip()
    try:
        if ".." in text:
            low_text, _, high_text = text.partition("..")
            low = caster(low_text) if low_text.strip() else None
            high = caster(high_text) if high_text.strip() else None
        else:
            low = high = caster(text)
    except (TypeError, ValueError) as error:
        raise InvalidParameterError(
            f"cannot parse {label} range {value!r}: {error}"
        ) from error
    return low, high


@dataclass(frozen=True)
class QuerySpec:
    """One catalog query: filters, ordering, and an optional top-k.

    Build one directly, from the CLI's token grammar (:meth:`parse` —
    whitespace-separated ``key=value`` tokens, e.g.
    ``"kind=motif length=64..128 top=5"``) or from HTTP query parameters
    (:meth:`from_params`).  All three construction paths share the same
    validation, so the CLI and the service answer identical queries with
    identical documents.
    """

    kind: str | None = None
    digest: str | None = None
    name: str | None = None
    algorithm: str | None = None
    min_length: int | None = None
    max_length: int | None = None
    min_score: float | None = None
    max_score: float | None = None
    since: float | None = None
    until: float | None = None
    top: int | None = None
    order: str | None = None
    trim_overlaps: bool = False

    def __post_init__(self) -> None:
        if self.kind is not None and self.kind not in RECORD_KINDS:
            raise InvalidParameterError(
                f"unknown record kind {self.kind!r}; expected one of "
                f"{list(RECORD_KINDS)}"
            )
        if self.order is not None and self.order not in _ORDERINGS:
            raise InvalidParameterError(
                f"unknown ordering {self.order!r}; expected one of "
                f"{sorted(_ORDERINGS)}"
            )
        if self.top is not None and int(self.top) < 1:
            raise InvalidParameterError(f"top must be >= 1, got {self.top}")
        for label in ("min_length", "max_length"):
            value = getattr(self, label)
            if value is not None and int(value) < 1:
                raise InvalidParameterError(f"{label} must be >= 1, got {value}")
        for low, high, what in (
            (self.min_length, self.max_length, "length"),
            (self.min_score, self.max_score, "score"),
        ):
            if low is not None and high is not None and low > high:
                raise InvalidParameterError(
                    f"empty {what} range: {low}..{high} has its bounds reversed"
                )
        if (
            self.since is not None
            and self.until is not None
            and self.since > self.until
        ):
            raise InvalidParameterError(
                f"empty time window: since={self.since} is after until={self.until}"
            )

    # The CLI token grammar and the HTTP parameter names are one vocabulary.
    _KEYS = (
        "kind",
        "digest",
        "name",
        "algorithm",
        "algo",
        "length",
        "min_length",
        "max_length",
        "score",
        "min_score",
        "max_score",
        "since",
        "until",
        "top",
        "k",
        "order",
        "trim",
    )

    @classmethod
    def parse(cls, text: str) -> "QuerySpec":
        """Parse the CLI grammar: whitespace-separated ``key=value`` tokens.

        An empty string is the match-everything query.  Values containing
        spaces (series names) can be passed via :meth:`from_params` or the
        ``name=`` HTTP parameter instead — the token grammar is for the
        common filters.
        """
        params: dict = {}
        for token in str(text).split():
            key, sep, value = token.partition("=")
            if not sep or not key:
                raise InvalidParameterError(
                    f"cannot parse query token {token!r}; expected key=value "
                    f"with key one of {list(cls._KEYS)}"
                )
            params[key] = value
        return cls.from_params(params)

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "QuerySpec":
        """Build a spec from a string-valued mapping (HTTP query params)."""
        unknown = sorted(set(params) - set(cls._KEYS))
        if unknown:
            raise InvalidParameterError(
                f"unknown query parameter(s) {unknown}; expected a subset of "
                f"{list(cls._KEYS)}"
            )
        fields: dict = {}

        def _set(label: str, value) -> None:
            if label in fields and fields[label] != value:
                raise InvalidParameterError(
                    f"conflicting values for {label}: {fields[label]!r} vs {value!r}"
                )
            fields[label] = value

        for key, raw in params.items():
            if raw is None:
                continue
            if key in ("kind", "digest", "name", "order"):
                _set(key, str(raw))
            elif key in ("algorithm", "algo"):
                _set("algorithm", str(raw))
            elif key == "length":
                low, high = _parse_range(raw, int, "length")
                if low is not None:
                    _set("min_length", low)
                if high is not None:
                    _set("max_length", high)
            elif key in ("min_length", "max_length"):
                _set(key, int(raw))
            elif key == "score":
                low, high = _parse_range(raw, float, "score")
                if low is not None:
                    _set("min_score", low)
                if high is not None:
                    _set("max_score", high)
            elif key in ("min_score", "max_score"):
                _set(key, float(raw))
            elif key in ("since", "until"):
                _set(key, _parse_timestamp(raw, key))
            elif key in ("top", "k"):
                _set("top", int(raw))
            elif key == "trim":
                _set(
                    "trim_overlaps",
                    str(raw).strip().lower() in ("1", "true", "yes", "on"),
                )
        try:
            return cls(**fields)
        except (TypeError, ValueError) as error:
            raise InvalidParameterError(f"invalid query: {error}") from error

    @property
    def effective_order(self) -> str:
        """The ordering actually applied: explicit ``order=``, else best
        first — ascending score for motifs, descending for discords."""
        if self.order is not None:
            return self.order
        return "-score" if self.kind == "discord" else "score"

    def as_dict(self) -> dict:
        """JSON-ready form (echoed in every query answer)."""
        return {
            "kind": self.kind,
            "digest": self.digest,
            "name": self.name,
            "algorithm": self.algorithm,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "min_score": self.min_score,
            "max_score": self.max_score,
            "since": self.since,
            "until": self.until,
            "top": self.top,
            "order": self.effective_order,
            "trim": self.trim_overlaps,
        }


def _spans_conflict(kept: dict, row: dict) -> bool:
    """Whether two rows describe (mostly) the same stretch of one series."""
    if kept["series_digest"] != row["series_digest"] or kept["kind"] != row["kind"]:
        return False
    overlap = min(kept["end"], row["end"]) - max(kept["start"], row["start"])
    shorter = min(kept["end"] - kept["start"], row["end"] - row["start"])
    return overlap * 2 > shorter


def _trim_overlapping(rows: List[dict]) -> List[dict]:
    """Greedy overlap trim: walk the rows best-first, keep a row only when
    its span does not cover more than half of an already-kept row's span on
    the same series (the ranking module's distinct-events idea, applied to
    catalog rows)."""
    kept: List[dict] = []
    for row in rows:
        if any(_spans_conflict(existing, row) for existing in kept):
            continue
        kept.append(row)
    return kept


class MotifIndex:
    """The queryable catalog over everything the corpus has discovered.

    Parameters
    ----------
    path:
        The database file, or a directory (the conventional
        ``<data-dir>/index``) in which ``catalog.db`` is created.
    timeout:
        Seconds a write waits on another process's lock before degrading.
    """

    def __init__(self, path, *, timeout: float = 5.0) -> None:
        path = Path(path)
        if path.suffix != ".db":
            path = path / _CATALOG_NAME
        self._path = path
        self._timeout = float(timeout)
        self._lock = threading.RLock()
        self._conn: sqlite3.Connection | None = None
        self._disabled = False
        self._counters = {
            "ingested_results": 0,
            "rows_added": 0,
            "queries": 0,
            "pruned_rows": 0,
            "heals": 0,
            "skipped_payloads": 0,
        }

    @property
    def path(self) -> Path:
        """The database file."""
        return self._path

    # ------------------------------------------------------------------ #
    # connection / degradation machinery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _warn(message: str) -> None:
        warnings.warn(f"[repro.index] {message}", RuntimeWarning, stacklevel=3)

    def _connect(self) -> sqlite3.Connection:
        """Open (or return) the one connection; creates schema on demand."""
        if self._conn is None:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self._path),
                timeout=self._timeout,
                check_same_thread=False,
            )
            try:
                conn.execute("PRAGMA journal_mode=WAL")
                self._ensure_schema(conn)
            except sqlite3.Error:
                conn.close()
                raise
            self._conn = conn
        return self._conn

    def _ensure_schema(self, conn: sqlite3.Connection) -> None:
        row = conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='meta'"
        ).fetchone()
        if row is not None:
            stored = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if stored is not None and str(stored[0]) == str(SCHEMA_VERSION):
                return
            if stored is not None and str(stored[0]) == "1":
                # v1 → v2 only added the ingested_at column: migrate in
                # place instead of discarding the corpus.  Existing rows
                # keep NULL (unknown ingest time); time-window queries
                # exclude them by SQL comparison semantics.
                conn.execute("ALTER TABLE records ADD COLUMN ingested_at REAL")
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) "
                    "VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
                conn.commit()
                _MIGRATIONS.inc()
                self._warn(
                    f"catalog at {self._path} migrated from schema version 1 "
                    f"to {SCHEMA_VERSION} (added ingested_at; pre-existing "
                    "rows have no ingest timestamp)"
                )
                return
            # A different (older or newer) schema: rebuild empty rather than
            # guess at a migration — the corpus re-enters via backfill().
            self._warn(
                f"catalog at {self._path} has schema version "
                f"{None if stored is None else stored[0]!r}, expected "
                f"{SCHEMA_VERSION}; rebuilding empty (run backfill to repopulate)"
            )
            conn.executescript("DROP TABLE IF EXISTS records; DROP TABLE IF EXISTS meta;")
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS meta (
                key TEXT PRIMARY KEY,
                value TEXT NOT NULL
            );
            CREATE TABLE IF NOT EXISTS records (
                id INTEGER PRIMARY KEY,
                series_digest TEXT NOT NULL,
                series_name TEXT NOT NULL,
                kind TEXT NOT NULL,
                length INTEGER NOT NULL,
                score REAL NOT NULL,
                start INTEGER NOT NULL,
                "end" INTEGER NOT NULL,
                partner INTEGER,
                distance REAL NOT NULL,
                algorithm TEXT NOT NULL,
                result_key TEXT NOT NULL,
                ingested_at REAL
            );
            CREATE UNIQUE INDEX IF NOT EXISTS records_identity ON records (
                series_digest, kind, length, score, start, "end", algorithm,
                result_key
            );
            CREATE INDEX IF NOT EXISTS records_by_filter
                ON records (kind, length, score);
            CREATE INDEX IF NOT EXISTS records_by_series
                ON records (series_digest);
            """
        )
        conn.execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        conn.commit()

    def _heal(self, error: Exception) -> None:
        """Corrupt database: drop the file and start empty (lock held)."""
        self._warn(
            f"catalog at {self._path} is unreadable ({error}); rebuilding an "
            "empty catalog (run backfill to repopulate)"
        )
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:  # pragma: no cover - teardown best-effort
                pass
            self._conn = None
        for suffix in ("", "-wal", "-shm"):
            try:
                Path(f"{self._path}{suffix}").unlink()
            except OSError:
                pass
        self._counters["heals"] += 1
        _HEALS.inc()

    def _run(self, operation: str, fallback, fn):
        """Execute one catalog operation under the degradation contract.

        ``fn(conn)`` runs under the lock.  A locked or unwritable database
        degrades this call to ``fallback`` (warning, file untouched); a
        corrupt database is healed to empty once and the operation retried
        against the fresh catalog; a second failure disables the index for
        the process (every later call short-circuits to its fallback).
        """
        with self._lock:
            if self._disabled:
                return fallback
            for attempt in (0, 1):
                try:
                    return fn(self._connect())
                except sqlite3.OperationalError as error:
                    # "database is locked" / unwritable directory: the data
                    # is (presumably) fine — degrade this call only.
                    if self._conn is None:
                        # Could not even open/create the file: repeated
                        # attempts would warn forever; disable instead.
                        self._disabled = True
                    self._warn(
                        f"{operation} degraded ({error}); the catalog was left "
                        "untouched"
                    )
                    return fallback
                except sqlite3.DatabaseError as error:
                    if attempt:
                        self._disabled = True
                        self._warn(
                            f"{operation} failed twice ({error}); disabling the "
                            "index for this process"
                        )
                        return fallback
                    self._heal(error)
            return fallback  # pragma: no cover - loop always returns

    def close(self) -> None:
        """Close the connection (idempotent; the index reopens on use)."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:  # pragma: no cover
                    pass
                self._conn = None

    def __enter__(self) -> "MotifIndex":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #
    def add(self, records: Iterable[IndexRecord]) -> int:
        """Insert records; returns how many were new (duplicates ignored).

        Each new row is stamped with the current :func:`repro.obs.now`
        wall clock (freezable in tests) as its ``ingested_at``; the stamp
        is not part of the row identity, so re-ingesting a known row stays
        an ``INSERT OR IGNORE`` no-op and keeps its original timestamp.
        """
        ingested_at = obs.now()
        rows = [
            (
                record.series_digest,
                record.series_name,
                record.kind,
                int(record.length),
                float(record.score),
                int(record.start),
                int(record.end),
                None if record.partner is None else int(record.partner),
                float(record.distance),
                record.algorithm,
                record.result_key,
                ingested_at,
            )
            for record in records
        ]
        if not rows:
            return 0

        def _insert(conn: sqlite3.Connection) -> int:
            before = conn.total_changes
            conn.executemany(
                f"INSERT OR IGNORE INTO records ({_QUOTED_COLUMNS}) "
                "VALUES (?,?,?,?,?,?,?,?,?,?,?,?)",
                rows,
            )
            conn.commit()
            return conn.total_changes - before

        added = int(self._run("add", 0, _insert))
        self._counters["rows_added"] += added
        _ROWS_ADDED.inc(added)
        return added

    def ingest_result(self, result, *, series_digest: str, result_key: str) -> int:
        """Extract and insert one analysis result's rows.  **Never raises**:
        the index is an accelerator, and indexing failures must not take the
        producing request down — they warn and count instead."""
        try:
            records = extract_records(
                result, series_digest=series_digest, result_key=result_key
            )
        except Exception as error:  # defensive: any payload, never a crash
            self._counters["skipped_payloads"] += 1
            self._warn(f"cannot index a {type(result).__name__}: {error}")
            return 0
        if not records:
            return 0
        self._counters["ingested_results"] += 1
        _INGESTED_RESULTS.inc()
        return self.add(records)

    def remove_series(self, digest: str) -> int:
        """Drop every row of one series (store eviction/removal hook);
        returns how many rows were pruned."""

        def _delete(conn: sqlite3.Connection) -> int:
            cursor = conn.execute(
                "DELETE FROM records WHERE series_digest = ?", (str(digest),)
            )
            conn.commit()
            return cursor.rowcount if cursor.rowcount > 0 else 0

        pruned = int(self._run("remove_series", 0, _delete))
        self._counters["pruned_rows"] += pruned
        _PRUNED_ROWS.inc(pruned)
        return pruned

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, spec: "QuerySpec | str") -> List[dict]:
        """The catalog rows matching ``spec``, best first (see
        :attr:`QuerySpec.effective_order`), as JSON-ready dicts."""
        if isinstance(spec, str):
            spec = QuerySpec.parse(spec)
        clauses: List[str] = []
        params: List[Any] = []
        if spec.kind is not None:
            clauses.append("kind = ?")
            params.append(spec.kind)
        if spec.digest is not None:
            clauses.append("series_digest = ?")
            params.append(spec.digest)
        if spec.name is not None:
            escaped = (
                spec.name.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")
            )
            clauses.append("series_name LIKE ? ESCAPE '\\'")
            params.append(f"%{escaped}%")
        if spec.algorithm is not None:
            clauses.append("algorithm = ?")
            params.append(spec.algorithm)
        if spec.min_length is not None:
            clauses.append("length >= ?")
            params.append(int(spec.min_length))
        if spec.max_length is not None:
            clauses.append("length <= ?")
            params.append(int(spec.max_length))
        if spec.min_score is not None:
            clauses.append("score >= ?")
            params.append(float(spec.min_score))
        if spec.max_score is not None:
            clauses.append("score <= ?")
            params.append(float(spec.max_score))
        if spec.since is not None:
            # NULL ingested_at (rows migrated from v1) never satisfies a
            # comparison, so time-window queries exclude undated rows.
            clauses.append("ingested_at >= ?")
            params.append(float(spec.since))
        if spec.until is not None:
            clauses.append("ingested_at <= ?")
            params.append(float(spec.until))
        sql = f"SELECT {_QUOTED_COLUMNS} FROM records"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += f" ORDER BY {_ORDERINGS[spec.effective_order]}, {_TIE_BREAK}"
        if spec.top is not None and not spec.trim_overlaps:
            # With overlap trimming the cut happens after the trim, so the
            # LIMIT can only be pushed into SQL on the untrimmed path.
            sql += f" LIMIT {int(spec.top)}"

        def _select(conn: sqlite3.Connection) -> List[dict]:
            return [
                dict(zip(_ROW_COLUMNS, row)) for row in conn.execute(sql, params)
            ]

        rows = self._run("query", [], _select)
        self._counters["queries"] += 1
        _QUERIES.inc()
        if spec.trim_overlaps:
            rows = _trim_overlapping(rows)
            if spec.top is not None:
                rows = rows[: int(spec.top)]
        return rows

    def answer(self, spec: "QuerySpec | str") -> dict:
        """The full query answer document — one shape shared verbatim by the
        ``repro query`` CLI and the service's ``GET /query``, so the two
        surfaces return identical JSON by construction."""
        if isinstance(spec, str):
            spec = QuerySpec.parse(spec)
        rows = self.query(spec)
        return {"spec": spec.as_dict(), "count": len(rows), "rows": rows}

    def count(self) -> int:
        """Total rows in the catalog."""
        return int(
            self._run(
                "count",
                0,
                lambda conn: conn.execute("SELECT COUNT(*) FROM records").fetchone()[0],
            )
        )

    def __len__(self) -> int:
        return self.count()

    def series_count(self) -> int:
        """How many distinct series have catalog rows."""
        return int(
            self._run(
                "series_count",
                0,
                lambda conn: conn.execute(
                    "SELECT COUNT(DISTINCT series_digest) FROM records"
                ).fetchone()[0],
            )
        )

    def stats(self) -> dict:
        """Occupancy and lifetime counters (service ``/stats``, CLI)."""
        return {
            "path": str(self._path),
            "schema_version": SCHEMA_VERSION,
            "rows": self.count(),
            "series": self.series_count(),
            **dict(self._counters),
        }

    # ------------------------------------------------------------------ #
    # backfill
    # ------------------------------------------------------------------ #
    def backfill(self, data_root) -> dict:
        """Walk an existing result corpus into the catalog.

        ``data_root`` is a shared data directory (the ``--data-dir`` root —
        its ``results/`` subtree is used when present, otherwise the path is
        taken to be the results tree itself).  Two sources feed the catalog:

        * **cache envelopes** (``<d2>/<digest>/<keyhash>.json``) — loaded
          through the same serialisation layer the persistent cache uses,
          and indexed under their stored canonical key, so backfilled rows
          are bit-identical to (and dedupe against) live-ingested ones;
        * **orphan sidecars** (``.valmod.json`` files whose envelope is
          missing or unreadable) — loaded tolerantly (older sidecars missing
          optional fields degrade to the envelope view) and indexed under a
          synthetic ``sidecar:<stem>`` key.

        Unreadable files are skipped and counted, never raised.  Re-running
        is idempotent: every row rides the catalog's unique identity.
        """
        from repro.api.requests import AnalysisResult
        from repro.io.serialization import load_cache_entry, load_result

        root = Path(data_root)
        results_root = root / RESULTS_SUBDIR if (root / RESULTS_SUBDIR).is_dir() else root
        summary = {
            "envelopes": 0,
            "sidecars": 0,
            "rows_added": 0,
            "skipped": 0,
        }
        if not results_root.is_dir():
            return summary
        for series_dir in sorted(results_root.glob("??/*")):
            digest = series_dir.name
            if not series_dir.is_dir() or not is_series_digest(digest):
                continue
            for path in sorted(series_dir.glob("*.json")):
                if path.name.endswith(".valmod.json"):
                    continue
                try:
                    key, result = load_cache_entry(path)
                except SerializationError:
                    summary["skipped"] += 1
                    continue
                if not isinstance(result, AnalysisResult):
                    summary["skipped"] += 1
                    continue
                summary["envelopes"] += 1
                summary["rows_added"] += self.ingest_result(
                    result, series_digest=digest, result_key=key
                )
            for path in sorted(series_dir.glob("*.valmod.json")):
                stem = path.name[: -len(".valmod.json")]
                if (series_dir / f"{stem}.json").is_file():
                    # The envelope above already contributed these motifs
                    # (same pairs, canonical key); indexing the sidecar too
                    # would re-add them under a second key.
                    continue
                try:
                    payload = load_result(path)
                    view = load_sidecar_view(payload)
                except SerializationError:
                    summary["skipped"] += 1
                    continue
                summary["sidecars"] += 1
                sidecar_result = _SidecarResult(
                    payload=view,
                    series_name=str(payload.get("series_name", "series")),
                )
                summary["rows_added"] += self.ingest_result(
                    sidecar_result,
                    series_digest=digest,
                    result_key=f"sidecar:{stem}",
                )
        return summary


@dataclass(frozen=True)
class _SidecarResult:
    """Minimal envelope stand-in for indexing an orphan sidecar."""

    payload: Any
    series_name: str
    algo: str = "valmod"
    kind: str = "motifs"


def catalog_path(data_root) -> Path:
    """The canonical catalog location under one shared data root."""
    return Path(data_root) / INDEX_SUBDIR / _CATALOG_NAME


def open_motif_index(data_root, **kwargs) -> MotifIndex:
    """The catalog of one shared data root (``<root>/index/catalog.db``)."""
    return MotifIndex(catalog_path(data_root), **kwargs)
