"""Queryable motif/discord index over the result corpus.

The subsystem has two halves:

* :mod:`repro.index.extract` — flattens analysis payloads (matrix profiles,
  VALMOD results, discord lists, pan profiles, motif sets) into uniform
  :class:`IndexRecord` rows scored by length-normalised distance;
* :mod:`repro.index.catalog` — the SQLite-backed :class:`MotifIndex`
  (``<data-dir>/index/catalog.db``, WAL mode, schema-versioned) with
  duplicate-free ingest, :class:`QuerySpec` queries, store-eviction pruning
  and a :meth:`MotifIndex.backfill` that walks pre-existing cache envelopes
  and ``.valmod.json`` sidecars.

Entry points: ``repro query`` / ``repro index`` on the CLI, ``GET /query``
on the service, or programmatically::

    from repro.index import open_motif_index, QuerySpec

    index = open_motif_index(data_dir)
    answer = index.answer(QuerySpec.parse("kind=motif length=64..128 top=5"))
"""

from repro.index.catalog import (
    INDEX_SUBDIR,
    SCHEMA_VERSION,
    MotifIndex,
    QuerySpec,
    catalog_path,
    open_motif_index,
)
from repro.index.extract import (
    PROFILE_TOP_K,
    IndexRecord,
    extract_records,
    records_from_motif_set,
)

__all__ = [
    "MotifIndex",
    "QuerySpec",
    "IndexRecord",
    "open_motif_index",
    "catalog_path",
    "extract_records",
    "records_from_motif_set",
    "INDEX_SUBDIR",
    "SCHEMA_VERSION",
    "PROFILE_TOP_K",
]
