"""Matrix-profile substrate.

The matrix profile of a series ``T`` for a subsequence length ``m`` is the
vector whose entry ``i`` holds the z-normalised Euclidean distance between
``T[i:i+m]`` and its best non-trivial match elsewhere in ``T``; the index
profile holds the offset of that match.  VALMOD builds on top of this
primitive: it computes the matrix profile at the smallest length of the range
and then prunes the work for every other length.

The package provides three exact algorithms with identical outputs and
different costs:

* :func:`brute_force_matrix_profile` — ``O(n² · m)``; correctness oracle;
* :func:`stamp` — ``O(n² log n)`` using one MASS call per subsequence;
* :func:`stomp` — ``O(n²)`` using the dot-product recurrence (default).
"""

from repro.matrix_profile.ab_join import JoinProfile, ab_join, ab_join_both
from repro.matrix_profile.brute_force import brute_force_distance_profile, brute_force_matrix_profile
from repro.matrix_profile.distance_profile import (
    distance_profile,
    distances_from_dot_products,
)
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.matrix_profile.mass import mass
from repro.matrix_profile.mpdist import mpdist, mpdist_profile
from repro.matrix_profile.profile import MatrixProfile, MotifPair
from repro.matrix_profile.scrimp import (
    ScrimpState,
    convergence_curve,
    pre_scrimp,
    profile_error,
    scrimp,
    scrimp_pp,
)
from repro.matrix_profile.stamp import stamp
from repro.matrix_profile.stomp import stomp

__all__ = [
    "JoinProfile",
    "MatrixProfile",
    "MotifPair",
    "ScrimpState",
    "ab_join",
    "ab_join_both",
    "apply_exclusion_zone",
    "brute_force_distance_profile",
    "brute_force_matrix_profile",
    "convergence_curve",
    "default_exclusion_radius",
    "distance_profile",
    "distances_from_dot_products",
    "mass",
    "mpdist",
    "mpdist_profile",
    "pre_scrimp",
    "profile_error",
    "scrimp",
    "scrimp_pp",
    "stamp",
    "stomp",
]
