"""Build and load the optional compiled STOMP kernel.

The container images this library targets do not ship numba or Cython,
but they do ship a C toolchain — so the "compiled backend" is a single C
file (``_stomp_kernel.c``) compiled on first use with the system compiler
and loaded through :mod:`ctypes`.  Everything is best-effort: any failure
(no compiler, read-only install, bad cc) marks the backend unavailable
with a recorded reason, and :mod:`repro.matrix_profile.kernels` falls
back to the numpy row-block kernel.

Environment knobs
-----------------
``REPRO_NO_NATIVE=1``
    Never build or load the compiled kernel (forces the fallback path —
    this is what the CI fallback leg sets).
``REPRO_NATIVE_CACHE=<dir>``
    Where the compiled shared object is cached.  Defaults to
    ``_native_cache/`` next to this module (git-ignored); the cache file
    is keyed by a hash of the source and flags, so editing the C source
    or flags rebuilds instead of loading a stale object.

Compiler flags
--------------
``-ffp-contract=off`` is load-bearing, not an optimisation preference:
the kernel is pinned bit-for-bit against the numpy kernel, and both FMA
contraction of the recurrence and (worse) of Dekker's ``two_product``
would silently change results.  No ``-ffast-math`` for the same reason.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess

import numpy as np
from numpy.ctypeslib import ndpointer

__all__ = ["load", "available", "unavailable_reason", "reset"]

DISABLE_ENV = "REPRO_NO_NATIVE"
CACHE_ENV = "REPRO_NATIVE_CACHE"

_SOURCE = os.path.join(os.path.dirname(__file__), "_stomp_kernel.c")
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-math-errno")

_lib = None
_attempted = False
_reason: "str | None" = None


def _find_compiler() -> "str | None":
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate:
            path = shutil.which(candidate)
            if path:
                return path
    return None


def _cache_dir() -> str:
    return os.environ.get(CACHE_ENV) or os.path.join(
        os.path.dirname(__file__), "_native_cache"
    )


def _declare(lib: ctypes.CDLL) -> ctypes.CDLL:
    c_double_arr = ndpointer(np.float64, flags="C_CONTIGUOUS")
    c_index_arr = ndpointer(np.int64, flags="C_CONTIGUOUS")
    i64 = ctypes.c_longlong
    lib.repro_stomp_segment.restype = None
    lib.repro_stomp_segment.argtypes = [
        c_double_arr,  # values
        i64,  # window
        i64,  # count
        c_double_arr,  # means
        c_double_arr,  # stds
        c_double_arr,  # inv_stds
        c_double_arr,  # coef
        c_double_arr,  # first_col
        c_double_arr,  # qt
        i64,  # start
        i64,  # stop
        i64,  # radius
        ctypes.c_int,  # compensated
        ctypes.c_int,  # has_const
        c_double_arr,  # profile
        c_index_arr,  # indices
    ]
    lib.repro_ab_join_segment.restype = None
    lib.repro_ab_join_segment.argtypes = [
        c_double_arr,  # values_a
        c_double_arr,  # values_b
        i64,  # window
        i64,  # count_b
        c_double_arr,  # means_a
        c_double_arr,  # stds_a
        c_double_arr,  # means_b
        c_double_arr,  # stds_b
        c_double_arr,  # inv_stds_b
        c_double_arr,  # coef_a
        c_double_arr,  # first_col
        c_double_arr,  # qt
        i64,  # start
        i64,  # stop
        ctypes.c_int,  # compensated
        ctypes.c_int,  # has_const
        c_double_arr,  # profile
        c_index_arr,  # indices
    ]
    lib.repro_scrimp_block.restype = None
    lib.repro_scrimp_block.argtypes = [
        c_double_arr,  # values
        i64,  # n
        i64,  # window
        i64,  # count
        c_double_arr,  # means
        c_double_arr,  # stds
        c_index_arr,  # diagonals
        i64,  # num_diagonals
        ctypes.c_int,  # compensated
        c_double_arr,  # csum scratch (n + 1)
        c_double_arr,  # dist scratch (count)
        c_double_arr,  # distances (in/out)
        c_index_arr,  # indices (in/out)
    ]
    return lib


def _build_and_load():
    if os.environ.get(DISABLE_ENV, "") not in ("", "0"):
        raise RuntimeError(f"disabled via {DISABLE_ENV}")
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
    with open(_SOURCE, "rb") as handle:
        source = handle.read()
    digest = hashlib.sha256(source + "\0".join(_CFLAGS).encode()).hexdigest()[:16]
    cache = _cache_dir()
    target = os.path.join(cache, f"stomp_kernel_{digest}.so")
    if not os.path.exists(target):
        os.makedirs(cache, exist_ok=True)
        scratch = f"{target}.{os.getpid()}.tmp"
        command = [compiler, *_CFLAGS, "-o", scratch, _SOURCE, "-lm"]
        result = subprocess.run(
            command, capture_output=True, text=True, timeout=120, check=False
        )
        if result.returncode != 0:
            raise RuntimeError(
                f"compile failed ({' '.join(command)}): {result.stderr.strip()[:500]}"
            )
        os.replace(scratch, target)  # atomic: concurrent builders race benignly
    return _declare(ctypes.CDLL(target))


def load():
    """The loaded kernel library, or ``None`` (reason via :func:`unavailable_reason`).

    The first call pays the (cached) compile; subsequent calls are a
    module-global read.  Failures are remembered — one attempt per
    process, never an exception to the caller.
    """
    global _lib, _attempted, _reason
    if not _attempted:
        _attempted = True
        try:
            _lib = _build_and_load()
        except Exception as error:  # noqa: BLE001 - availability probe
            _lib = None
            _reason = str(error)
    return _lib


def available() -> bool:
    return load() is not None


def unavailable_reason() -> "str | None":
    load()
    return _reason


def reset() -> None:
    """Forget the cached load attempt (tests flip the env knobs)."""
    global _lib, _attempted, _reason
    _lib = None
    _attempted = False
    _reason = None
