"""MASS — Mueen's Algorithm for Similarity Search.

Given a query ``Q`` (of length ``m``) and a series ``T`` (of length ``n``),
MASS returns the z-normalised Euclidean distance between ``Q`` and every
subsequence of ``T`` in ``O(n log n)`` time, by computing all sliding dot
products with a single FFT convolution and converting them to distances with
precomputed sliding statistics.

This is the building block of STAMP and of the QuickMotif-style baseline; it
also supports *ad-hoc* queries that are not part of the series (join mode).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.distance_profile import distances_from_dot_products
from repro.series.validation import validate_series
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats
from repro.stats.znorm import STD_EPSILON

__all__ = ["mass"]


def mass(query, series, *, stats: SlidingStats | None = None) -> np.ndarray:
    """Distance profile of an arbitrary query against every window of ``series``.

    Unlike :func:`repro.matrix_profile.distance_profile`, the query does not
    need to come from ``series`` and no exclusion zone is applied.
    """
    query_values = np.asarray(query, dtype=np.float64)
    if query_values.ndim != 1 or query_values.size < 2:
        raise InvalidParameterError(
            f"query must be a 1-D sequence of at least 2 points, got shape {query_values.shape}"
        )
    series_values = validate_series(series)
    window = query_values.size
    if window > series_values.size:
        raise InvalidParameterError(
            f"query length {window} exceeds series length {series_values.size}"
        )
    if not np.all(np.isfinite(query_values)):
        raise InvalidParameterError("query contains NaN or infinite values")
    if stats is None:
        stats = SlidingStats(series_values)
    query_mean = float(query_values.mean())
    query_std = float(query_values.std())
    if query_std <= STD_EPSILON * max(1.0, float(np.abs(query_values).max())):
        query_std = 0.0
    # Shift the query and the series by the same constant before taking the
    # dot products: the z-normalised distances are unchanged, but the
    # products lose the large common offset whose rounding error would
    # otherwise survive the qt -> correlation cancellation (see
    # repro.stats.sliding.SlidingStats.centered_values).
    center = stats.center
    centered_means, stds = stats.centered_mean_std(window)
    dot_products = sliding_dot_product(query_values - center, stats.centered_values)
    return distances_from_dot_products(
        dot_products,
        window,
        query_mean - center,
        query_std,
        centered_means,
        stds,
        compensated=stats.conversion_compensated(window),
    )
