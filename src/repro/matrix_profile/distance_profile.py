"""Distance profiles.

The *distance profile* of the query subsequence ``T[q:q+m]`` is the vector of
z-normalised Euclidean distances between the query and every subsequence of
``T`` of the same length.  Its minimum (outside the trivial-match exclusion
zone) is the matrix-profile entry of offset ``q``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.distance import centered_dot_products, compensation_needed
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats

__all__ = ["distances_from_dot_products", "distance_profile"]


def distances_from_dot_products(
    dot_products: np.ndarray,
    window: int,
    query_mean: float,
    query_std: float,
    means: np.ndarray,
    stds: np.ndarray,
    *,
    compensated: bool | None = None,
) -> np.ndarray:
    """Convert sliding dot products into z-normalised Euclidean distances.

    Implements the standard identity
    ``d_{q,j}² = 2 m (1 - (QT_j - m·μ_q·μ_j) / (m·σ_q·σ_j))`` together with
    the constant-subsequence convention: distance ``0`` between two constant
    subsequences and ``sqrt(m)`` between a constant and a non-constant one.
    The numerator is evaluated with the compensated subtraction of
    :func:`repro.stats.distance.centered_dot_products`, so the conversion
    stays accurate on high-variance / large-offset series where the naive
    ``QT - m·μ_q·μ_j`` cancels catastrophically.  ``compensated`` overrides
    the per-call risk heuristic; row-loop callers hoist the decision with
    :func:`repro.stats.distance.compensation_needed`.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    qt = np.asarray(dot_products, dtype=np.float64)
    means = np.asarray(means, dtype=np.float64)
    stds = np.asarray(stds, dtype=np.float64)
    if qt.shape != means.shape or qt.shape != stds.shape:
        raise InvalidParameterError(
            "dot_products, means and stds must have identical shapes; got "
            f"{qt.shape}, {means.shape}, {stds.shape}"
        )
    query_constant = query_std == 0.0
    target_constant = stds == 0.0
    if compensated is None:
        compensated = compensation_needed(query_mean, means, stds)
    centered = centered_dot_products(
        qt, window, query_mean, means, compensated=compensated
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        correlation = centered / (window * query_std * stds)
    np.clip(correlation, -1.0, 1.0, out=correlation)
    squared = 2.0 * window * (1.0 - correlation)
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared)
    if query_constant:
        distances = np.where(target_constant, 0.0, np.sqrt(window))
    else:
        distances[target_constant] = np.sqrt(window)
    return distances


def distance_profile(
    series,
    query_offset: int,
    window: int,
    *,
    stats: SlidingStats | None = None,
    exclusion_radius: int | None = None,
    apply_exclusion: bool = True,
) -> np.ndarray:
    """Distance profile of the subsequence starting at ``query_offset``.

    Parameters
    ----------
    series:
        The data series (array-like or :class:`~repro.series.DataSeries`).
    query_offset:
        Offset of the query subsequence within ``series`` (self-join).
    window:
        Subsequence length.
    stats:
        Optional precomputed :class:`~repro.stats.SlidingStats` for ``series``
        (avoids recomputing cumulative sums in tight loops).
    exclusion_radius:
        Radius of the trivial-match zone around ``query_offset``; defaults to
        ``ceil(window / 4)``.
    apply_exclusion:
        When False, the raw profile is returned (used by motif-set expansion,
        which wants the trivial matches too).
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    count = values.size - window + 1
    if query_offset < 0 or query_offset >= count:
        raise InvalidParameterError(
            f"query offset {query_offset} out of range [0, {count})"
        )
    if stats is None:
        stats = SlidingStats(values)
    # Compute the dot products on the mean-shifted series: z-normalised
    # distances are shift-invariant, and the centered products are small
    # enough that their rounding error no longer dominates the conversion
    # on series sitting at a large offset.
    centered = stats.centered_values
    centered_means, stds = stats.centered_mean_std(window)
    query = centered[query_offset : query_offset + window]
    qt = sliding_dot_product(query, centered)
    profile = distances_from_dot_products(
        qt,
        window,
        float(centered_means[query_offset]),
        float(stds[query_offset]),
        centered_means,
        stds,
        compensated=stats.conversion_compensated(window),
    )
    if apply_exclusion:
        radius = (
            default_exclusion_radius(window) if exclusion_radius is None else exclusion_radius
        )
        apply_exclusion_zone(profile, query_offset, radius)
    return profile
