"""STOMP — Scalable Time series Ordered-search Matrix Profile.

STOMP (Zhu et al., ICDM 2016 — reference [1]/[2] of the demo paper) computes
the full self-join matrix profile in ``O(n²)`` time by observing that the
sliding dot products of consecutive query subsequences obey the recurrence::

    QT[i, j] = QT[i-1, j-1] - T[i-1]·T[j-1] + T[i+m-1]·T[j+m-1]

so only the first distance profile needs an FFT.  This implementation is the
fixed-length work-horse of the library: VALMOD uses it for the base length
``l_min`` and the ``STOMP-range`` baseline re-runs it for every length in the
range.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.kernels import run_sweep
from repro.matrix_profile.profile import MatrixProfile
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats

__all__ = ["stomp"]


def stomp(
    series,
    window: int,
    *,
    exclusion_radius: int | None = None,
    stats: SlidingStats | None = None,
    profile_callback: Callable[[int, np.ndarray, np.ndarray], None] | None = None,
    ingest_store=None,
    engine: object | None = None,
    n_jobs: int | None = None,
    block_size: int | None = None,
    kernel: str | None = None,
    centered_first_row_qt: np.ndarray | None = None,
    segment_pool=None,
    segment_key: str | None = None,
) -> MatrixProfile:
    """Exact matrix profile of ``series`` at subsequence length ``window``.

    Parameters
    ----------
    series:
        The data series (array-like or :class:`~repro.series.DataSeries`).
    window:
        Subsequence length ``m``.
    exclusion_radius:
        Trivial-match radius; defaults to ``ceil(m / 4)``.
    stats:
        Optional precomputed sliding statistics of ``series``.
    profile_callback:
        Optional hook invoked as ``callback(offset, dot_products, distances)``
        for every query offset, with no exclusion zone applied to either
        array.  ``dot_products`` is a **read-only copy** of the row's
        products on the **mean-centered** series (the space the sweep runs
        in — see the Notes) and ``distances`` is a fresh array the callback
        owns outright; both are safe to keep across rows (the sweep never
        touches them again).  VALMOD's partial-profile store ingests the
        centered form directly via ``ingest_store``, which is the preferred
        hook because it does not force the engine serial.
    ingest_store:
        An empty :class:`~repro.core.partial_profile.PartialProfileStore`
        whose ``base_length`` equals ``window``: every row's centered dot
        products are ingested while the profile is computed (VALMOD's base
        pass).  With ``engine=`` the ingest happens block-locally inside the
        engine and the per-block fragments are merged — the base pass
        parallelises like any other profile computation.
    engine:
        ``None`` (default) runs this module's serial single-sweep loop —
        the correctness oracle.  ``"serial"``, ``"parallel"``, ``"auto"``
        or an :class:`~repro.engine.executor.Executor` instance route the
        computation through the block-partitioned engine
        (:func:`repro.engine.partition.partitioned_stomp`).
    n_jobs, block_size:
        Engine tuning knobs, ignored when ``engine`` is ``None``.
    kernel:
        Which sweep kernel advances the recurrence — ``"auto"`` (default;
        honours ``REPRO_KERNEL``), ``"oracle"``, ``"numpy"`` or
        ``"native"``; see :mod:`repro.matrix_profile.kernels`.  All
        kernels produce identical profiles and indices; a
        ``profile_callback`` (which needs full distance rows) always runs
        on the oracle kernel.
    segment_pool, segment_key:
        Shared-memory segment reuse across engine calls (see
        :func:`repro.engine.partition.partitioned_stomp`); ignored when
        ``engine`` is ``None``.  The :class:`repro.api.Analysis` session
        passes its digest-keyed pool here so repeated engine-backed runs
        on the same series pack (and per-worker copy) the series once.
    centered_first_row_qt:
        Optional precomputed sliding dot products of the first query
        (``QT[0, j]`` for every ``j``) — the one FFT product STOMP needs —
        taken on the **mean-centered** series (``values - values.mean()``),
        which is the space the recurrence runs in (see below).  The
        parameter was named ``first_row_qt`` (and carried *raw* products)
        before the sweep was centered; the rename makes stale raw-product
        callers fail loudly instead of silently mis-seeding the recurrence.
        The :class:`repro.api.Analysis` session memoizes it per window
        length so repeated calls on the same series skip the FFT.  Ignored
        when ``engine`` routes the computation (the engine re-seeds blocks
        itself).

    Returns
    -------
    MatrixProfile
        Distances and best-match indices for every subsequence.

    Notes
    -----
    Z-normalised distances are invariant under a global shift of the series,
    but the dot products the recurrence carries are not: on a series sitting
    at a large offset each recurrence step adds rounding error of magnitude
    ``~eps·|T|²_max`` that survives the ``qt -> correlation`` cancellation at
    full size.  The sweep therefore shifts the values **once** (reusing
    :attr:`~repro.stats.sliding.SlidingStats.centered_values`) and runs the
    recurrence mean-centered, cutting the drift at the source — the same
    treatment the MASS / distance-profile paths received earlier.  Since the
    partial-profile store went mean-centered too, the sweep is centered
    unconditionally: the old raw-value callback contract (and the ~1e-3
    VALMOD distance error it carried at large offsets) is gone.
    """
    if profile_callback is not None and ingest_store is not None:
        raise InvalidParameterError(
            "pass either profile_callback or ingest_store, not both"
        )
    if engine is not None:
        from repro.engine.partition import partitioned_stomp

        return partitioned_stomp(
            series,
            window,
            executor=engine,
            n_jobs=n_jobs,
            block_size=block_size,
            kernel=kernel,
            exclusion_radius=exclusion_radius,
            stats=stats,
            profile_callback=profile_callback,
            ingest_store=ingest_store,
            segment_pool=segment_pool,
            segment_key=segment_key,
        )
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    radius = default_exclusion_radius(window) if exclusion_radius is None else int(exclusion_radius)
    if stats is None:
        stats = SlidingStats(values)
    count = values.size - window + 1

    sweep_values = stats.centered_values
    means, stds = stats.centered_mean_std(window)

    if ingest_store is not None:
        ingest_store.require_ready_for_ingest(window)

    if centered_first_row_qt is not None:
        first_row_dots = np.asarray(centered_first_row_qt, dtype=np.float64)
        if first_row_dots.shape != (count,):
            raise InvalidParameterError(
                "centered_first_row_qt must have "
                f"{count} entries, got shape {first_row_dots.shape}"
            )
    else:
        first_query = sweep_values[:window]
        first_row_dots = sliding_dot_product(first_query, sweep_values)

    # The whole sweep — recurrence, row reductions, hook dispatch — lives
    # in the kernel layer; the serial contract is one unbroken recurrence
    # chain (reseed_interval=None).
    profile, indices = run_sweep(
        sweep_values,
        window,
        radius,
        means,
        stds,
        first_row_dots,
        0,
        count,
        kernel=kernel,
        profile_callback=profile_callback,
        ingest=ingest_store,
    )

    return MatrixProfile(
        distances=profile, indices=indices, window=window, exclusion_radius=radius
    )
