"""SCRIMP and PreSCRIMP — anytime computation of the matrix profile.

STOMP computes the matrix profile row by row, so interrupting it half-way
leaves the second half of the profile empty.  SCRIMP (Zhu et al., ICDM 2018)
computes the *same* exact profile diagonal by diagonal: each diagonal updates
entries spread over the whole profile, so an interrupted run is a uniformly
converging approximation of the final answer.  PreSCRIMP is the companion
preprocessing pass that seeds the profile with the distance profiles of a
sample of subsequences (one every ``step`` offsets), which already places
most motif pairs within a small factor of their true distance.

These algorithms are not part of the VALMOD paper itself, but they are the
natural "anytime" companions of the fixed-length substrate the paper builds
on, and the library uses them in two places:

* the anytime ablation benchmark, which measures how quickly a partial
  SCRIMP run approaches the exact profile (and therefore the exact motifs);
* the streaming package, which uses the same diagonal update internally.

Run to completion (``fraction=1.0``) SCRIMP is exact and its output is
bit-for-bit comparable with :func:`repro.matrix_profile.stomp.stomp` (the
tests assert this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.matrix_profile.kernels import run_diagonal_sweep, validate_kernel
from repro.matrix_profile.mass import mass
from repro.matrix_profile.profile import MatrixProfile
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.distance import compensation_needed
from repro.stats.sliding import SlidingStats

__all__ = [
    "ScrimpState",
    "convergence_curve",
    "pre_scrimp",
    "profile_error",
    "scrimp",
    "scrimp_pp",
]


@dataclass
class ScrimpState:
    """Mutable state of an interruptible SCRIMP computation.

    Attributes
    ----------
    distances, indices:
        The current (possibly partial) matrix profile and index profile.
    window:
        Subsequence length.
    exclusion_radius:
        Trivial-match radius used by the run.
    diagonals_done:
        Number of diagonals already processed (out of ``diagonals_total``).
    diagonals_total:
        Number of informative diagonals (those outside the exclusion zone).
    """

    distances: np.ndarray
    indices: np.ndarray
    window: int
    exclusion_radius: int
    diagonals_done: int
    diagonals_total: int

    @property
    def completion(self) -> float:
        """Fraction of the informative diagonals processed so far."""
        if self.diagonals_total == 0:
            return 1.0
        return self.diagonals_done / self.diagonals_total

    def as_profile(self) -> MatrixProfile:
        """Snapshot of the current state as a :class:`MatrixProfile`."""
        return MatrixProfile(
            distances=np.array(self.distances),
            indices=np.array(self.indices),
            window=self.window,
            exclusion_radius=self.exclusion_radius,
        )


def scrimp(
    series,
    window: int,
    *,
    fraction: float = 1.0,
    exclusion_radius: int | None = None,
    stats: SlidingStats | None = None,
    random_state: np.random.Generator | int | None = None,
    state: ScrimpState | None = None,
    kernel: str | None = None,
    diag_block_size: int | None = None,
) -> MatrixProfile:
    """Anytime exact matrix profile via random diagonal traversal.

    Parameters
    ----------
    series:
        The data series (array-like or :class:`~repro.series.DataSeries`).
    window:
        Subsequence length ``m``.
    fraction:
        Fraction of the informative diagonals to process, in ``(0, 1]``.
        ``1.0`` yields the exact matrix profile; smaller values return an
        anytime approximation whose error shrinks as the fraction grows.
    exclusion_radius:
        Trivial-match radius; defaults to ``ceil(m / 4)``.
    stats:
        Optional precomputed sliding statistics of ``series``.
    random_state:
        Seed or generator controlling the diagonal visiting order.
    state:
        Optional :class:`ScrimpState` from a previous partial run to resume
        (e.g. the output of :func:`pre_scrimp`); diagonals already counted in
        it are assumed *not* to have been processed (PreSCRIMP seeds values,
        not diagonals), so resuming simply continues improving the snapshot.
    kernel:
        Diagonal-sweep kernel (see
        :func:`~repro.matrix_profile.kernels.run_diagonal_sweep`):
        ``"oracle"`` processes one diagonal at a time, ``"numpy"`` batches
        blocks of diagonals, ``"native"`` runs the compiled loop.  All
        kernels produce bit-identical profiles for every ``fraction`` and
        resume point — batching respects the randomized visiting order at
        block granularity and the merge rule is order-exact — so the
        anytime contract is unchanged.
    diag_block_size:
        Batch width of the ``"numpy"`` kernel (ignored by the others).

    Returns
    -------
    MatrixProfile
        Exact when ``fraction == 1.0``, an upper-bounding approximation
        otherwise (every reported distance is a true pair distance, so it can
        only over-estimate the nearest-neighbour distance).
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    validate_kernel(kernel)
    if not 0.0 < fraction <= 1.0:
        raise InvalidParameterError(f"fraction must be in (0, 1], got {fraction}")
    radius = default_exclusion_radius(window) if exclusion_radius is None else int(exclusion_radius)
    if radius < 0:
        raise InvalidParameterError(f"exclusion radius must be >= 0, got {radius}")
    if stats is None:
        stats = SlidingStats(values)
    means, stds = stats.mean_std(window)
    count = values.size - window + 1

    diagonals = np.arange(radius + 1, count, dtype=np.int64)
    if state is None:
        state = ScrimpState(
            distances=np.full(count, np.inf, dtype=np.float64),
            indices=np.full(count, -1, dtype=np.int64),
            window=window,
            exclusion_radius=radius,
            diagonals_done=0,
            diagonals_total=int(diagonals.size),
        )
    elif state.window != window or state.distances.size != count:
        raise InvalidParameterError(
            "the provided ScrimpState does not match this series/window combination"
        )

    rng = np.random.default_rng(random_state)
    order = rng.permutation(diagonals)
    if fraction >= 1.0:
        to_process = order
    else:
        limit = max(1, int(round(fraction * order.size))) if order.size else 0
        to_process = order[:limit]

    # One cancellation-risk decision for the whole sweep (every diagonal
    # shares the same means array).
    compensated = compensation_needed(means, means, stds)
    run_diagonal_sweep(
        values,
        window,
        means,
        stds,
        to_process,
        state.distances,
        state.indices,
        kernel=kernel,
        compensated=compensated,
        block_size=diag_block_size,
    )
    state.diagonals_done += int(to_process.size)

    return state.as_profile()


def pre_scrimp(
    series,
    window: int,
    *,
    step: int | None = None,
    exclusion_radius: int | None = None,
    stats: SlidingStats | None = None,
    random_state: np.random.Generator | int | None = None,
) -> MatrixProfile:
    """PreSCRIMP — sampled-distance-profile approximation of the matrix profile.

    One exact distance profile (a MASS call) is computed for every ``step``-th
    subsequence, visiting the sampled offsets in random order; each profile
    updates both the sampled offset's entry and the entries of every other
    offset it reaches.  With the recommended ``step = ceil(m / 4)`` the result
    is typically within a few percent of the exact profile at a fraction of
    the cost, which is why SCRIMP++ runs it before the diagonal sweep.

    The returned profile is an *upper bound* of the exact one: every reported
    distance is a genuine pair distance.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    radius = default_exclusion_radius(window) if exclusion_radius is None else int(exclusion_radius)
    if stats is None:
        stats = SlidingStats(values)
    if step is None:
        step = max(1, int(np.ceil(window / 4)))
    if step < 1:
        raise InvalidParameterError(f"step must be >= 1, got {step}")
    count = values.size - window + 1

    distances = np.full(count, np.inf, dtype=np.float64)
    indices = np.full(count, -1, dtype=np.int64)

    rng = np.random.default_rng(random_state)
    sampled = np.arange(0, count, step, dtype=np.int64)
    for offset in rng.permutation(sampled).tolist():
        profile = mass(values[offset : offset + window], values, stats=stats)
        apply_exclusion_zone(profile, offset, radius)
        best = int(np.argmin(profile))
        if np.isfinite(profile[best]) and profile[best] < distances[offset]:
            distances[offset] = float(profile[best])
            indices[offset] = best
        # Every other offset also learns about its distance to `offset`.
        better = profile < distances
        distances[better] = profile[better]
        indices[better] = offset

    return MatrixProfile(
        distances=distances, indices=indices, window=window, exclusion_radius=radius
    )


def scrimp_pp(
    series,
    window: int,
    *,
    fraction: float = 1.0,
    step: int | None = None,
    exclusion_radius: int | None = None,
    stats: SlidingStats | None = None,
    random_state: np.random.Generator | int | None = None,
    kernel: str | None = None,
    diag_block_size: int | None = None,
) -> MatrixProfile:
    """SCRIMP++ — PreSCRIMP seeding followed by a (possibly partial) SCRIMP sweep.

    With ``fraction=1.0`` the result is exact; with a smaller fraction the
    PreSCRIMP seed guarantees the approximation is already close while the
    diagonal sweep keeps tightening it.  ``kernel``/``diag_block_size``
    select the diagonal-sweep kernel exactly as in :func:`scrimp`.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    radius = default_exclusion_radius(window) if exclusion_radius is None else int(exclusion_radius)
    if stats is None:
        stats = SlidingStats(values)
    seeded = pre_scrimp(
        values,
        window,
        step=step,
        exclusion_radius=radius,
        stats=stats,
        random_state=random_state,
    )
    count = values.size - window + 1
    state = ScrimpState(
        distances=np.array(seeded.distances),
        indices=np.array(seeded.indices),
        window=window,
        exclusion_radius=radius,
        diagonals_done=0,
        diagonals_total=max(count - radius - 1, 0),
    )
    return scrimp(
        values,
        window,
        fraction=fraction,
        exclusion_radius=radius,
        stats=stats,
        random_state=random_state,
        state=state,
        kernel=kernel,
        diag_block_size=diag_block_size,
    )


def profile_error(approximate: MatrixProfile, exact: MatrixProfile) -> float:
    """Mean absolute error between an anytime profile and the exact one.

    Entries that are still ``inf`` in the approximation contribute the largest
    possible error for their position (``sqrt(2 m)``), so the measure is
    defined from the very first diagonal onwards.
    """
    if approximate.window != exact.window or len(approximate) != len(exact):
        raise InvalidParameterError(
            "profiles must share the same window and length to be compared"
        )
    cap = np.sqrt(2.0 * exact.window)
    approx = np.where(np.isfinite(approximate.distances), approximate.distances, cap)
    reference = np.where(np.isfinite(exact.distances), exact.distances, cap)
    return float(np.mean(np.abs(approx - reference)))


def convergence_curve(
    series,
    window: int,
    fractions: Iterable[float],
    *,
    random_state: np.random.Generator | int | None = 0,
    exact: MatrixProfile | None = None,
) -> List[dict]:
    """Anytime convergence curve: profile error after each fraction of SCRIMP work.

    Used by the anytime ablation benchmark; returns one row per fraction with
    the mean absolute profile error and the relative error of the motif-pair
    distance.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    stats = SlidingStats(values)
    if exact is None:
        exact = scrimp(values, window, fraction=1.0, stats=stats, random_state=random_state)
    exact_best = exact.best().distance
    rows: List[dict] = []
    for fraction in fractions:
        approximate = scrimp(
            values, window, fraction=float(fraction), stats=stats, random_state=random_state
        )
        try:
            approx_best = approximate.best().distance
            motif_error = abs(approx_best - exact_best) / max(exact_best, 1e-12)
        except Exception:  # noqa: BLE001 - no finite entry yet at tiny fractions
            motif_error = float("inf")
        rows.append(
            {
                "fraction": float(fraction),
                "profile_mae": profile_error(approximate, exact),
                "motif_distance_relative_error": motif_error,
            }
        )
    return rows
