/* Compiled STOMP sweep kernel.
 *
 * One reseed segment of the self-join sweep: rows [start, stop) of the
 * dot-product recurrence
 *
 *     QT[i, j] = QT[i-1, j-1] - T[i-1]*T[j-1] + T[i+m-1]*T[j+m-1]
 *
 * advanced in place, each row reduced to its best match.  This is a line
 * by line transcription of the numpy row-block kernel in kernels.py; the
 * two must stay bit-for-bit identical, which constrains the code more
 * than it first appears:
 *
 *  - every floating-point expression keeps the numpy operation order
 *    (the recurrence is (qt - a*u) + b*v, parenthesised);
 *  - the build MUST use -ffp-contract=off: a fused multiply-add in the
 *    recurrence or in the Dekker two_product below would change roundings
 *    (two_product is *wrong* under contraction, not just different);
 *  - the argmax scans ascending with a strict '>' so ties resolve to the
 *    first maximum, matching np.argmax;
 *  - selection scores of constant columns/rows are injected exactly like
 *    the numpy kernel does (0.5*m*sigma_i, 1.0/0.5), never computed.
 *
 * The entry point is loaded via ctypes (see _native.py); it holds no
 * state and releases the GIL for the whole segment by construction.
 */

#include <math.h>

typedef long long i64;

/* Dekker's two_product / two_sum, matching repro.stats.distance exactly. */
static void two_product(double a, double b, double *p, double *e) {
    const double SPLIT = 134217729.0; /* 2**27 + 1 */
    double prod = a * b;
    double a_big = SPLIT * a;
    double a_hi = a_big - (a_big - a);
    double a_lo = a - a_hi;
    double b_big = SPLIT * b;
    double b_hi = b_big - (b_big - b);
    double b_lo = b - b_hi;
    *p = prod;
    *e = ((a_hi * b_hi - prod) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo;
}

static void two_sum(double a, double b, double *s, double *e) {
    double sum = a + b;
    double v = sum - a;
    *s = sum;
    *e = (a - (sum - v)) + (b - v);
}

/* Scalar transcription of distances_from_dot_products at one element. */
static double winner_distance(double qt_best, double window, double query_mean,
                              double target_mean, double query_std,
                              double target_std, int compensated,
                              double sqrt_window) {
    double centered, correlation, squared;
    if (query_std == 0.0)
        return (target_std == 0.0) ? 0.0 : sqrt_window;
    if (target_std == 0.0)
        return sqrt_window;
    if (compensated) {
        double coeff, coeff_err, product, product_err, base, sum_err;
        two_product(window, query_mean, &coeff, &coeff_err);
        two_product(coeff, target_mean, &product, &product_err);
        two_sum(qt_best, -product, &base, &sum_err);
        centered = base + (sum_err - product_err - coeff_err * target_mean);
    } else {
        centered = qt_best - (window * query_mean) * target_mean;
    }
    correlation = centered / ((window * query_std) * target_std);
    if (correlation < -1.0)
        correlation = -1.0;
    else if (correlation > 1.0)
        correlation = 1.0;
    squared = (2.0 * window) * (1.0 - correlation);
    if (squared < 0.0)
        squared = 0.0;
    return sqrt(squared);
}

void repro_stomp_segment(const double *values, i64 window, i64 count,
                         const double *means, const double *stds,
                         const double *inv_stds, const double *coef,
                         const double *first_col, double *qt, i64 start,
                         i64 stop, i64 radius, int compensated, int has_const,
                         double *profile, i64 *indices) {
    double window_d = (double)window;
    double sqrt_window = sqrt(window_d);
    i64 off;
    for (off = start; off < stop; off++) {
        i64 j, lo, hi, best = -1;
        double best_sel = -INFINITY;
        double query_std = stds[off];
        lo = off - radius;
        if (lo < 0)
            lo = 0;
        hi = off + radius + 1;
        if (hi > count)
            hi = count;
        if (off > start && query_std != 0.0 && !has_const) {
            /* Common case: fuse the advance with the selection scan so the
             * row is reduced while each element is still in a register.
             * The scan runs descending, so ties resolve with '>=' to keep
             * the *smallest* winning index — the same first-occurrence
             * rule as np.argmax and the ascending '>' scan below. */
            double a = values[off - 1];
            double b = values[off + window - 1];
            double row_coef = coef[off];
            for (j = count - 1; j >= 1; j--) {
                double q = (qt[j - 1] - a * values[j - 1]) + b * values[j + window - 1];
                qt[j] = q;
                if (j < lo || j >= hi) {
                    double sel = (q - row_coef * means[j]) * inv_stds[j];
                    if (sel >= best_sel) {
                        best_sel = sel;
                        best = j;
                    }
                }
            }
            qt[0] = first_col[off];
            if (0 < lo || 0 >= hi) {
                double sel = (qt[0] - row_coef * means[0]) * inv_stds[0];
                if (sel >= best_sel) {
                    best_sel = sel;
                    best = 0;
                }
            }
        } else {
            if (off > start) {
                double a = values[off - 1];
                double b = values[off + window - 1];
                for (j = count - 1; j >= 1; j--)
                    qt[j] = (qt[j - 1] - a * values[j - 1]) + b * values[j + window - 1];
                qt[0] = first_col[off];
            }
            if (query_std == 0.0) {
                for (j = 0; j < count; j++) {
                    double sel;
                    if (j >= lo && j < hi)
                        continue;
                    sel = (stds[j] == 0.0) ? 1.0 : 0.5;
                    if (sel > best_sel) {
                        best_sel = sel;
                        best = j;
                    }
                }
            } else {
                double row_coef = coef[off];
                double half_wq = 0.5 * (window_d * query_std);
                for (j = 0; j < count; j++) {
                    double sel;
                    if (j >= lo && j < hi)
                        continue;
                    sel = (stds[j] == 0.0)
                              ? half_wq
                              : (qt[j] - row_coef * means[j]) * inv_stds[j];
                    if (sel > best_sel) {
                        best_sel = sel;
                        best = j;
                    }
                }
            }
        }
        if (best >= 0 && best_sel != -INFINITY) {
            profile[off - start] =
                winner_distance(qt[best], window_d, means[off], means[best],
                                query_std, stds[best], compensated, sqrt_window);
            indices[off - start] = best;
        }
    }
}

/* One reseed segment of an AB-join sweep: rows [start, stop) of series A
 * advanced against all of series B with the cross-series recurrence
 *
 *     QT[i, j] = QT[i-1, j-1] - A[i-1]*B[j-1] + A[i+m-1]*B[j+m-1]
 *
 * Transcribed from the numpy join kernel in kernels.py under the same
 * bit-for-bit constraints as repro_stomp_segment above.  Both series are
 * pre-shifted by B's global mean on the Python side; there is no
 * exclusion zone (the series are distinct), so every row has a winner. */
void repro_ab_join_segment(const double *values_a, const double *values_b,
                           i64 window, i64 count_b, const double *means_a,
                           const double *stds_a, const double *means_b,
                           const double *stds_b, const double *inv_stds_b,
                           const double *coef_a, const double *first_col,
                           double *qt, i64 start, i64 stop, int compensated,
                           int has_const, double *profile, i64 *indices) {
    double window_d = (double)window;
    double sqrt_window = sqrt(window_d);
    i64 off;
    for (off = start; off < stop; off++) {
        i64 j, best = 0;
        double best_sel = -INFINITY;
        double query_std = stds_a[off];
        if (off > start && query_std != 0.0 && !has_const) {
            /* Common case: fused advance + descending '>=' scan, exactly
             * like the self-join kernel but with A-scalars against
             * B-slices and no exclusion-zone test in the loop. */
            double a = values_a[off - 1];
            double b = values_a[off + window - 1];
            double row_coef = coef_a[off];
            double sel;
            for (j = count_b - 1; j >= 1; j--) {
                double q =
                    (qt[j - 1] - a * values_b[j - 1]) + b * values_b[j + window - 1];
                qt[j] = q;
                sel = (q - row_coef * means_b[j]) * inv_stds_b[j];
                if (sel >= best_sel) {
                    best_sel = sel;
                    best = j;
                }
            }
            qt[0] = first_col[off];
            sel = (qt[0] - row_coef * means_b[0]) * inv_stds_b[0];
            if (sel >= best_sel) {
                best_sel = sel;
                best = 0;
            }
        } else {
            if (off > start) {
                double a = values_a[off - 1];
                double b = values_a[off + window - 1];
                for (j = count_b - 1; j >= 1; j--)
                    qt[j] =
                        (qt[j - 1] - a * values_b[j - 1]) + b * values_b[j + window - 1];
                qt[0] = first_col[off];
            }
            if (query_std == 0.0) {
                for (j = 0; j < count_b; j++) {
                    double sel = (stds_b[j] == 0.0) ? 1.0 : 0.5;
                    if (sel > best_sel) {
                        best_sel = sel;
                        best = j;
                    }
                }
            } else {
                double row_coef = coef_a[off];
                double half_wq = 0.5 * (window_d * query_std);
                for (j = 0; j < count_b; j++) {
                    double sel = (stds_b[j] == 0.0)
                                     ? half_wq
                                     : (qt[j] - row_coef * means_b[j]) * inv_stds_b[j];
                    if (sel > best_sel) {
                        best_sel = sel;
                        best = j;
                    }
                }
            }
        }
        profile[off - start] =
            winner_distance(qt[best], window_d, means_a[off], means_b[best],
                            query_std, stds_b[best], compensated, sqrt_window);
        indices[off - start] = best;
    }
}

/* A sequence of SCRIMP diagonals folded into the profile state in order.
 *
 * Per diagonal d: dot products via one running product sum (the same
 * sequential accumulation as np.cumsum), distances through the shared
 * winner_distance transcription, then a row pass (entry j learns about
 * j + d) followed by a column pass (entry j + d learns about j), both
 * with strict '<' so earlier updates keep ties — the exact application
 * order of the historical Python loop, hence bit-identical state.
 * csum (n + 1 doubles) and dist (count doubles) are caller-provided
 * scratch. */
void repro_scrimp_block(const double *values, i64 n, i64 window, i64 count,
                        const double *means, const double *stds,
                        const i64 *diagonals, i64 num_diagonals, int compensated,
                        double *csum, double *dist, double *distances,
                        i64 *indices) {
    double window_d = (double)window;
    double sqrt_window = sqrt(window_d);
    i64 t, i, j;
    for (t = 0; t < num_diagonals; t++) {
        i64 d = diagonals[t];
        i64 cnt = count - d;
        i64 len = n - d;
        double acc = 0.0;
        if (cnt <= 0)
            continue;
        csum[0] = 0.0;
        for (i = 0; i < len; i++) {
            acc += values[i] * values[i + d];
            csum[i + 1] = acc;
        }
        for (j = 0; j < cnt; j++) {
            double qt = csum[j + window] - csum[j];
            dist[j] = winner_distance(qt, window_d, means[j], means[j + d], stds[j],
                                      stds[j + d], compensated, sqrt_window);
        }
        for (j = 0; j < cnt; j++) {
            if (dist[j] < distances[j]) {
                distances[j] = dist[j];
                indices[j] = j + d;
            }
        }
        for (j = 0; j < cnt; j++) {
            if (dist[j] < distances[j + d]) {
                distances[j + d] = dist[j];
                indices[j + d] = j;
            }
        }
    }
}
