"""Brute-force matrix profile and distance profile.

The ``O(n²·m)`` definitions, kept deliberately simple: they are the
correctness oracle every faster algorithm (STOMP, STAMP, VALMOD, the
baselines) is tested against, and they double as the exact-but-slow end of the
benchmark comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.matrix_profile.profile import MatrixProfile
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.distance import znorm_euclidean
from repro.stats.znorm import znormalize_subsequences

__all__ = ["brute_force_distance_profile", "brute_force_matrix_profile"]


def brute_force_distance_profile(series, query_offset: int, window: int) -> np.ndarray:
    """Distance profile computed directly from the definition (no exclusion zone)."""
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    count = values.size - window + 1
    if query_offset < 0 or query_offset >= count:
        raise InvalidParameterError(
            f"query offset {query_offset} out of range [0, {count})"
        )
    query = values[query_offset : query_offset + window]
    profile = np.empty(count, dtype=np.float64)
    for j in range(count):
        profile[j] = znorm_euclidean(query, values[j : j + window])
    return profile


def brute_force_matrix_profile(
    series, window: int, *, exclusion_radius: int | None = None
) -> MatrixProfile:
    """Matrix profile computed directly from the definition.

    Uses a single materialisation of all z-normalised subsequences, so it is
    memory-hungry; intended for series of at most a few thousand points.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    radius = default_exclusion_radius(window) if exclusion_radius is None else int(exclusion_radius)
    normalised = znormalize_subsequences(values, window)
    count = normalised.shape[0]
    profile = np.full(count, np.inf, dtype=np.float64)
    indices = np.full(count, -1, dtype=np.int64)
    for i in range(count):
        diffs = normalised - normalised[i]
        distances = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))
        apply_exclusion_zone(distances, i, radius)
        best = int(np.argmin(distances))
        if np.isfinite(distances[best]):
            profile[i] = distances[best]
            indices[i] = best
    return MatrixProfile(
        distances=profile, indices=indices, window=window, exclusion_radius=radius
    )
