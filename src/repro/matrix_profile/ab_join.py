"""AB-joins — matrix profiles between two different series.

The self-join matrix profile answers "where does this series repeat itself?";
the AB-join answers "where does series ``A`` occur in series ``B``?".  Every
entry ``i`` of the AB-join profile is the z-normalised distance between
``A[i:i+m]`` and its nearest neighbour among the subsequences of ``B`` (no
exclusion zone is needed because the two series are distinct).

The VALMOD demo only shows self-joins, but the underlying C library (like
every matrix-profile implementation) exposes joins as well, and two library
features rely on them:

* :func:`repro.matrix_profile.mpdist.mpdist` builds its distance measure from
  the two one-sided joins;
* the analysis helpers use joins to locate a discovered motif inside another
  recording (e.g. "does the heartbeat found in recording 1 appear in
  recording 2?").

The inner loop lives in :mod:`repro.matrix_profile.kernels`
(:func:`~repro.matrix_profile.kernels.run_join_sweep`): the historical
one-MASS-call-per-subsequence loop is the ``"oracle"`` kernel, and the
``"numpy"``/``"native"`` kernels replace the per-row FFTs with the
``O(|A|·|B|)`` cross-series STOMP recurrence.  ``engine="parallel"``
additionally block-partitions the A-rows across cores through
:func:`repro.engine.batch.compute_profiles`, the same data plane self-joins
use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.kernels import (
    DEFAULT_JOIN_RESEED_INTERVAL,
    run_join_sweep,
    validate_kernel,
)
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.sliding import SlidingStats

__all__ = ["JoinProfile", "ab_join", "ab_join_both", "join_sweep_rows"]


@dataclass(frozen=True)
class JoinProfile:
    """The one-sided AB-join profile of ``series_a`` against ``series_b``.

    Attributes
    ----------
    distances:
        ``distances[i]`` is the distance between ``A[i:i+window]`` and its
        nearest neighbour among the subsequences of ``B``.
    indices:
        Offset (in ``B``) of that nearest neighbour.
    window:
        Subsequence length of the join.
    """

    distances: np.ndarray
    indices: np.ndarray
    window: int

    def __post_init__(self) -> None:
        distances = np.asarray(self.distances, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.int64)
        if distances.ndim != 1 or indices.ndim != 1 or distances.shape != indices.shape:
            raise InvalidParameterError(
                "distances and indices must be 1-D arrays of identical length"
            )
        if self.window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {self.window}")
        object.__setattr__(self, "distances", distances)
        object.__setattr__(self, "indices", indices)

    def __len__(self) -> int:
        return int(self.distances.size)

    def best(self) -> tuple[int, int, float]:
        """The closest cross-series pair as ``(offset_in_a, offset_in_b, distance)``."""
        finite = np.isfinite(self.distances)
        if not finite.any():
            raise EmptyResultError("the join profile contains no finite entries")
        offset = int(np.argmin(np.where(finite, self.distances, np.inf)))
        return (offset, int(self.indices[offset]), float(self.distances[offset]))

    def top_matches(self, k: int = 3) -> List[tuple[int, int, float]]:
        """The ``k`` closest cross-series pairs as ``(offset_a, offset_b, distance)``."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        order = np.argsort(self.distances, kind="stable")
        matches: List[tuple[int, int, float]] = []
        for offset in order.tolist():
            if not np.isfinite(self.distances[offset]):
                break
            matches.append(
                (int(offset), int(self.indices[offset]), float(self.distances[offset]))
            )
            if len(matches) == k:
                break
        return matches

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "window": self.window,
            "distances": self.distances.tolist(),
            "indices": self.indices.tolist(),
        }


def join_sweep_rows(
    series_a,
    series_b,
    window: int,
    start: int,
    stop: int,
    *,
    stats_a: SlidingStats | None = None,
    stats_b: SlidingStats | None = None,
    kernel: str | None = None,
    reseed_interval: int | None = None,
) -> JoinProfile:
    """AB-join of query rows ``[start, stop)`` of ``series_a`` against ``series_b``.

    The row-range primitive behind :func:`ab_join` and the engine's block
    partitioning: it prepares the B-centered inputs (both series shifted by
    ``stats_b.center`` — z-normalised distances are shift-invariant and the
    centered products avoid the large-offset cancellation) and hands the rows
    to :func:`~repro.matrix_profile.kernels.run_join_sweep`.  The returned
    profile covers only the requested rows; ``indices`` are offsets in ``B``.
    """
    values_a = validate_series(series_a, name="series_a")
    values_b = validate_series(series_b, name="series_b")
    window = validate_subsequence_length(min(values_a.size, values_b.size), window)
    if stats_a is None:
        stats_a = SlidingStats(values_a)
    if stats_b is None:
        stats_b = SlidingStats(values_b)
    means_a, stds_a = stats_a.mean_std(window)

    center = stats_b.center
    shifted_a = values_a - center
    shifted_means_a = means_a - center
    centered_b = stats_b.centered_values
    centered_means_b, stds_b = stats_b.centered_mean_std(window)
    compensated = stats_b.conversion_compensated(window)

    distances, indices = run_join_sweep(
        shifted_a,
        centered_b,
        window,
        shifted_means_a,
        stds_a,
        centered_means_b,
        stds_b,
        start,
        stop,
        kernel=kernel,
        compensated=compensated,
        reseed_interval=reseed_interval,
    )
    return JoinProfile(distances=distances, indices=indices, window=window)


def ab_join(
    series_a,
    series_b,
    window: int,
    *,
    stats_a: SlidingStats | None = None,
    stats_b: SlidingStats | None = None,
    kernel: str | None = None,
    reseed_interval: int | None = None,
    engine: str | None = None,
    n_jobs: int | None = None,
    block_size: int | None = None,
) -> JoinProfile:
    """One-sided AB-join: nearest neighbour in ``series_b`` of every subsequence of ``series_a``.

    ``kernel`` selects the inner loop (see
    :func:`~repro.matrix_profile.kernels.run_join_sweep`): ``"oracle"`` is the
    historical STAMP-style loop — one MASS call per subsequence of ``A``,
    ``O(|A|·|B| log |B|)`` — while ``"numpy"``/``"native"`` advance the
    cross-series STOMP recurrence for ``O(|A|·|B|)``.  ``engine="parallel"``
    (or ``"auto"``) block-partitions the A-rows through
    :func:`repro.engine.batch.compute_profiles`; ``reseed_interval=0`` makes
    every kernel and any block partitioning bit-for-bit equal to the oracle
    (each row is then seeded by the identical FFT).
    """
    values_a = validate_series(series_a, name="series_a")
    values_b = validate_series(series_b, name="series_b")
    window = validate_subsequence_length(min(values_a.size, values_b.size), window)
    validate_kernel(kernel)
    count_a = values_a.size - window + 1

    if engine is not None and engine != "serial":
        from repro.engine import batch as engine_batch
        from repro.engine.partition import default_block_size, plan_blocks

        jobs_hint = n_jobs if n_jobs is not None else (os.cpu_count() or 1)
        width = (
            int(block_size)
            if block_size is not None
            else default_block_size(count_a, max(1, int(jobs_hint)))
        )
        interval = (
            DEFAULT_JOIN_RESEED_INTERVAL if reseed_interval is None else reseed_interval
        )
        jobs = [
            engine_batch.ProfileJob(
                series=values_a,
                series_b=values_b,
                window=window,
                row_range=(block_start, block_stop),
                kernel=kernel,
                reseed_interval=interval,
            )
            for block_start, block_stop in plan_blocks(count_a, width)
        ]
        outcomes = engine_batch.compute_profiles(jobs, executor=engine, n_jobs=n_jobs)
        parts = [outcome.unwrap() for outcome in outcomes]
        return JoinProfile(
            distances=np.concatenate([part.distances for part in parts]),
            indices=np.concatenate([part.indices for part in parts]),
            window=window,
        )

    return join_sweep_rows(
        values_a,
        values_b,
        window,
        0,
        count_a,
        stats_a=stats_a,
        stats_b=stats_b,
        kernel=kernel,
        reseed_interval=reseed_interval,
    )


def ab_join_both(
    series_a,
    series_b,
    window: int,
    *,
    stats_a: SlidingStats | None = None,
    stats_b: SlidingStats | None = None,
    kernel: str | None = None,
    reseed_interval: int | None = None,
    engine: str | None = None,
    n_jobs: int | None = None,
    block_size: int | None = None,
) -> tuple[JoinProfile, JoinProfile]:
    """Both one-sided joins ``(A -> B, B -> A)``, sharing the sliding statistics.

    Each series' :class:`~repro.stats.sliding.SlidingStats` is built (or taken
    from ``stats_a=``/``stats_b=``) exactly once and reused across both join
    directions — one set of prefix sums and centered values per series instead
    of one per direction.
    """
    values_a = validate_series(series_a, name="series_a")
    values_b = validate_series(series_b, name="series_b")
    window = validate_subsequence_length(min(values_a.size, values_b.size), window)
    if stats_a is None:
        stats_a = SlidingStats(values_a)
    if stats_b is None:
        stats_b = SlidingStats(values_b)
    options = dict(
        kernel=kernel,
        reseed_interval=reseed_interval,
        engine=engine,
        n_jobs=n_jobs,
        block_size=block_size,
    )
    forward = ab_join(
        values_a, values_b, window, stats_a=stats_a, stats_b=stats_b, **options
    )
    backward = ab_join(
        values_b, values_a, window, stats_a=stats_b, stats_b=stats_a, **options
    )
    return forward, backward
