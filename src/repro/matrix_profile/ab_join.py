"""AB-joins — matrix profiles between two different series.

The self-join matrix profile answers "where does this series repeat itself?";
the AB-join answers "where does series ``A`` occur in series ``B``?".  Every
entry ``i`` of the AB-join profile is the z-normalised distance between
``A[i:i+m]`` and its nearest neighbour among the subsequences of ``B`` (no
exclusion zone is needed because the two series are distinct).

The VALMOD demo only shows self-joins, but the underlying C library (like
every matrix-profile implementation) exposes joins as well, and two library
features rely on them:

* :func:`repro.matrix_profile.mpdist.mpdist` builds its distance measure from
  the two one-sided joins;
* the analysis helpers use joins to locate a discovered motif inside another
  recording (e.g. "does the heartbeat found in recording 1 appear in
  recording 2?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.distance_profile import distances_from_dot_products
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.fft import sliding_dot_product
from repro.stats.sliding import SlidingStats

__all__ = ["JoinProfile", "ab_join", "ab_join_both"]


@dataclass(frozen=True)
class JoinProfile:
    """The one-sided AB-join profile of ``series_a`` against ``series_b``.

    Attributes
    ----------
    distances:
        ``distances[i]`` is the distance between ``A[i:i+window]`` and its
        nearest neighbour among the subsequences of ``B``.
    indices:
        Offset (in ``B``) of that nearest neighbour.
    window:
        Subsequence length of the join.
    """

    distances: np.ndarray
    indices: np.ndarray
    window: int

    def __post_init__(self) -> None:
        distances = np.asarray(self.distances, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.int64)
        if distances.ndim != 1 or indices.ndim != 1 or distances.shape != indices.shape:
            raise InvalidParameterError(
                "distances and indices must be 1-D arrays of identical length"
            )
        if self.window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {self.window}")
        object.__setattr__(self, "distances", distances)
        object.__setattr__(self, "indices", indices)

    def __len__(self) -> int:
        return int(self.distances.size)

    def best(self) -> tuple[int, int, float]:
        """The closest cross-series pair as ``(offset_in_a, offset_in_b, distance)``."""
        finite = np.isfinite(self.distances)
        if not finite.any():
            raise EmptyResultError("the join profile contains no finite entries")
        offset = int(np.argmin(np.where(finite, self.distances, np.inf)))
        return (offset, int(self.indices[offset]), float(self.distances[offset]))

    def top_matches(self, k: int = 3) -> List[tuple[int, int, float]]:
        """The ``k`` closest cross-series pairs as ``(offset_a, offset_b, distance)``."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        order = np.argsort(self.distances, kind="stable")
        matches: List[tuple[int, int, float]] = []
        for offset in order.tolist():
            if not np.isfinite(self.distances[offset]):
                break
            matches.append(
                (int(offset), int(self.indices[offset]), float(self.distances[offset]))
            )
            if len(matches) == k:
                break
        return matches

    def as_dict(self) -> dict:
        """Plain-dict form for reports and serialization."""
        return {
            "window": self.window,
            "distances": self.distances.tolist(),
            "indices": self.indices.tolist(),
        }


def ab_join(
    series_a,
    series_b,
    window: int,
    *,
    stats_b: SlidingStats | None = None,
) -> JoinProfile:
    """One-sided AB-join: nearest neighbour in ``series_b`` of every subsequence of ``series_a``.

    The computation is STAMP-style — one MASS call (an FFT convolution against
    ``series_b``) per subsequence of ``series_a`` — which keeps the memory
    footprint at ``O(|B|)`` and the cost at ``O(|A| · |B| log |B|)``.
    """
    values_a = validate_series(series_a, name="series_a")
    values_b = validate_series(series_b, name="series_b")
    window = validate_subsequence_length(min(values_a.size, values_b.size), window)
    if stats_b is None:
        stats_b = SlidingStats(values_b)
    stats_a = SlidingStats(values_a)
    means_a, stds_a = stats_a.mean_std(window)

    # Shift both series by one common constant before taking dot products:
    # z-normalised distances are shift-invariant and the centered products
    # avoid the large-offset cancellation (see SlidingStats.centered_values).
    center = stats_b.center
    centered_b = stats_b.centered_values
    centered_means_b, stds_b = stats_b.centered_mean_std(window)
    compensated = stats_b.conversion_compensated(window)

    count_a = values_a.size - window + 1
    distances = np.full(count_a, np.inf, dtype=np.float64)
    indices = np.full(count_a, -1, dtype=np.int64)
    for offset in range(count_a):
        query = values_a[offset : offset + window] - center
        dot_products = sliding_dot_product(query, centered_b)
        profile = distances_from_dot_products(
            dot_products,
            window,
            float(means_a[offset]) - center,
            float(stds_a[offset]),
            centered_means_b,
            stds_b,
            compensated=compensated,
        )
        best = int(np.argmin(profile))
        distances[offset] = float(profile[best])
        indices[offset] = best

    return JoinProfile(distances=distances, indices=indices, window=window)


def ab_join_both(
    series_a,
    series_b,
    window: int,
) -> tuple[JoinProfile, JoinProfile]:
    """Both one-sided joins ``(A -> B, B -> A)``, sharing the sliding statistics."""
    values_a = validate_series(series_a, name="series_a")
    values_b = validate_series(series_b, name="series_b")
    window = validate_subsequence_length(min(values_a.size, values_b.size), window)
    forward = ab_join(values_a, values_b, window, stats_b=SlidingStats(values_b))
    backward = ab_join(values_b, values_a, window, stats_b=SlidingStats(values_a))
    return forward, backward
