"""STAMP — the anytime predecessor of STOMP.

STAMP (Yeh et al., ICDM 2016) computes one full distance profile per
subsequence with MASS, in any order, which makes it an *anytime* algorithm:
stopping early yields an approximate profile.  It is ``O(n² log n)``, slower
than STOMP, but the independent per-offset computation makes it a useful
cross-check and a natural fit for randomised anytime experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.distance_profile import distance_profile
from repro.matrix_profile.exclusion import default_exclusion_radius
from repro.matrix_profile.profile import MatrixProfile
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.sliding import SlidingStats

__all__ = ["stamp"]


def stamp(
    series,
    window: int,
    *,
    exclusion_radius: int | None = None,
    order: np.ndarray | None = None,
    max_profiles: int | None = None,
    random_state: np.random.Generator | int | None = None,
    stats: SlidingStats | None = None,
) -> MatrixProfile:
    """Matrix profile via repeated MASS calls (anytime algorithm).

    Parameters
    ----------
    order:
        Optional explicit order in which query offsets are processed.  When
        omitted and ``max_profiles`` is given, a random permutation drawn from
        ``random_state`` is used (the classic anytime setting); otherwise the
        natural order is used.
    max_profiles:
        Process only this many query offsets.  The result is then an
        *approximate* (upper-bound) profile: unprocessed offsets keep the best
        distance seen so far from the symmetric updates, possibly ``inf``.
    """
    values = validate_series(series)
    window = validate_subsequence_length(values.size, window)
    radius = default_exclusion_radius(window) if exclusion_radius is None else int(exclusion_radius)
    if stats is None:
        stats = SlidingStats(values)
    count = values.size - window + 1

    if order is None:
        if max_profiles is not None:
            rng = np.random.default_rng(random_state)
            order = rng.permutation(count)
        else:
            order = np.arange(count)
    else:
        order = np.asarray(order, dtype=np.int64)
        if order.ndim != 1 or np.any(order < 0) or np.any(order >= count):
            raise InvalidParameterError("order must contain valid query offsets")

    if max_profiles is not None:
        if max_profiles < 1:
            raise InvalidParameterError(f"max_profiles must be >= 1, got {max_profiles}")
        order = order[:max_profiles]

    profile = np.full(count, np.inf, dtype=np.float64)
    indices = np.full(count, -1, dtype=np.int64)

    for offset in order.tolist():
        distances = distance_profile(
            values, offset, window, stats=stats, exclusion_radius=radius
        )
        best = int(np.argmin(distances))
        if np.isfinite(distances[best]) and distances[best] < profile[offset]:
            profile[offset] = distances[best]
            indices[offset] = best
        # Symmetric update: the distance between offset and j also bounds the
        # profile entry of j (this is what makes partial STAMP useful).
        improved = distances < profile
        if improved.any():
            profile[improved] = distances[improved]
            indices[improved] = offset

    return MatrixProfile(
        distances=profile, indices=indices, window=window, exclusion_radius=radius
    )
