"""MPdist — a matrix-profile-based distance between whole series.

MPdist (Gharghabi et al., ICDM 2018) measures how similar two series are by
asking how many of their subsequences have a close match in the other series:
it concatenates the two one-sided AB-join profiles and reports the ``k``-th
smallest value, with ``k`` a small fraction (5 % by default) of the combined
length.  Unlike the Euclidean distance it tolerates differing lengths,
shifts, and a minority of dissimilar regions, which makes it the natural
whole-series companion of motif analysis: two recordings that share the same
repeated pattern have a small MPdist even if the rest of their content
differs.

The measure is symmetric and non-negative, equals zero for identical series,
but does not satisfy the triangle inequality (it is a dissimilarity, not a
metric) — the tests check exactly these properties.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.matrix_profile.ab_join import ab_join_both
from repro.series.validation import validate_series, validate_subsequence_length
from repro.stats.sliding import SlidingStats

__all__ = ["mpdist", "mpdist_profile"]


def mpdist(
    series_a,
    series_b,
    window: int,
    *,
    percentile: float = 0.05,
    stats_a: SlidingStats | None = None,
    stats_b: SlidingStats | None = None,
    kernel: str | None = None,
    reseed_interval: int | None = None,
    engine: str | None = None,
    n_jobs: int | None = None,
) -> float:
    """MPdist between two series for subsequences of length ``window``.

    Parameters
    ----------
    series_a, series_b:
        The two series; they may have different lengths (both must be at
        least ``window`` points long).
    window:
        Subsequence length used for the underlying joins.
    percentile:
        Fraction of the combined join profile whose value is reported
        (``0.05`` in the original paper).  ``0`` degenerates to the closest
        cross-pair distance, ``1`` to the largest value of the combined
        profile.
    stats_a, stats_b:
        Optional precomputed sliding statistics of each series; whatever is
        missing is built once here and shared by both join directions.
    kernel, reseed_interval, engine, n_jobs:
        Forwarded to the underlying joins (see
        :func:`~repro.matrix_profile.ab_join.ab_join`): ``kernel`` picks the
        oracle MASS loop or the O(|A|·|B|) recurrence kernels, ``engine``
        spreads the A-rows of each join across cores.
    """
    if not 0.0 <= percentile <= 1.0:
        raise InvalidParameterError(f"percentile must be in [0, 1], got {percentile}")
    values_a = validate_series(series_a, name="series_a")
    values_b = validate_series(series_b, name="series_b")
    window = validate_subsequence_length(min(values_a.size, values_b.size), window)

    forward, backward = ab_join_both(
        values_a,
        values_b,
        window,
        stats_a=stats_a,
        stats_b=stats_b,
        kernel=kernel,
        reseed_interval=reseed_interval,
        engine=engine,
        n_jobs=n_jobs,
    )
    combined = np.concatenate([forward.distances, backward.distances])
    combined = np.sort(combined)
    k = int(np.ceil(percentile * (values_a.size + values_b.size)))
    k = min(max(k, 1), combined.size)
    return float(combined[k - 1])


def mpdist_profile(
    series,
    query,
    window: int,
    *,
    percentile: float = 0.05,
    step: int = 1,
    kernel: str | None = None,
) -> np.ndarray:
    """Sliding MPdist of ``query`` against every window of ``series`` of ``len(query)``.

    Entry ``i`` is ``mpdist(series[i : i + len(query)], query, window)``; the
    optional ``step`` evaluates every ``step``-th position only (the skipped
    positions are filled with the nearest evaluated value), which is how the
    original authors make the profile affordable on long series.

    This supports query-by-content over long recordings: the minima of the
    profile are the regions of ``series`` most similar to ``query`` as a
    whole, even when the query's patterns appear shifted or re-ordered.
    """
    series_values = validate_series(series, name="series")
    query_values = validate_series(query, name="query")
    window = validate_subsequence_length(query_values.size, window)
    if step < 1:
        raise InvalidParameterError(f"step must be >= 1, got {step}")
    segment = query_values.size
    if segment > series_values.size:
        raise InvalidParameterError(
            f"query (length {segment}) is longer than the series ({series_values.size})"
        )
    count = series_values.size - segment + 1
    profile = np.full(count, np.nan, dtype=np.float64)
    evaluated = list(range(0, count, step))
    if evaluated[-1] != count - 1:
        evaluated.append(count - 1)
    # The query is the same at every position — build its stats once.
    query_stats = SlidingStats(query_values)
    for position in evaluated:
        profile[position] = mpdist(
            series_values[position : position + segment],
            query_values,
            window,
            percentile=percentile,
            stats_b=query_stats,
            kernel=kernel,
        )
    # Fill skipped positions with the nearest evaluated neighbour.
    if step > 1:
        indices = np.arange(count)
        known = np.array(evaluated)
        nearest = known[np.argmin(np.abs(indices[:, np.newaxis] - known), axis=1)]
        profile = profile[nearest]
    return profile
