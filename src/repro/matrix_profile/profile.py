"""Matrix-profile result objects.

:class:`MatrixProfile` is the fixed-length analogue of the paper's Figure 1
(left): the profile of minimum distances, the index profile of best-match
offsets, plus the operations the demo front-end offers on them — extracting
the top-k motif pairs, the top discords, and a length-normalised view that
can be compared across lengths (the building block of VALMAP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

import numpy as np

from repro.exceptions import EmptyResultError, InvalidParameterError
from repro.matrix_profile.exclusion import apply_exclusion_zone, default_exclusion_radius
from repro.stats.distance import length_normalized

__all__ = ["MotifPair", "MatrixProfile"]


@dataclass(frozen=True, order=True)
class MotifPair:
    """A motif pair: the two closest (non-trivially matching) subsequences.

    Ordering is by ``distance`` so lists of pairs can be sorted directly.
    ``offset_a < offset_b`` by construction.
    """

    distance: float
    offset_a: int = field(compare=False)
    offset_b: int = field(compare=False)
    window: int = field(compare=False)

    def __post_init__(self) -> None:
        if self.offset_a == self.offset_b:
            raise InvalidParameterError("a motif pair must join two distinct offsets")
        if self.offset_a > self.offset_b:
            first, second = self.offset_b, self.offset_a
            object.__setattr__(self, "offset_a", first)
            object.__setattr__(self, "offset_b", second)
        if self.window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {self.window}")
        if self.distance < 0:
            raise InvalidParameterError(f"distance must be >= 0, got {self.distance}")

    @property
    def normalized_distance(self) -> float:
        """Length-normalised distance ``d / sqrt(window)`` (paper, Section 2)."""
        return float(length_normalized(self.distance, self.window))

    @property
    def offsets(self) -> tuple[int, int]:
        """The two subsequence offsets as a tuple ``(offset_a, offset_b)``."""
        return (self.offset_a, self.offset_b)

    def overlaps(self, other: "MotifPair", radius: int | None = None) -> bool:
        """True when any member of ``self`` trivially matches a member of ``other``."""
        if radius is None:
            radius = default_exclusion_radius(min(self.window, other.window))
        for mine in self.offsets:
            for theirs in other.offsets:
                if abs(mine - theirs) <= radius:
                    return True
        return False

    def as_dict(self) -> dict:
        """Plain-dict form used by reports and serialization."""
        return {
            "offset_a": self.offset_a,
            "offset_b": self.offset_b,
            "window": self.window,
            "distance": self.distance,
            "normalized_distance": self.normalized_distance,
        }


@dataclass(frozen=True)
class MatrixProfile:
    """The matrix profile of one series at one subsequence length.

    Attributes
    ----------
    distances:
        ``distances[i]`` is the z-normalised Euclidean distance between the
        subsequence at offset ``i`` and its nearest non-trivial match.
    indices:
        ``indices[i]`` is the offset of that nearest match (``-1`` when no
        valid match exists, which only happens for degenerate inputs).
    window:
        The subsequence length the profile was computed for.
    exclusion_radius:
        The trivial-match radius used during the computation.
    """

    distances: np.ndarray
    indices: np.ndarray
    window: int
    exclusion_radius: int

    def __post_init__(self) -> None:
        distances = np.asarray(self.distances, dtype=np.float64)
        indices = np.asarray(self.indices, dtype=np.int64)
        if distances.ndim != 1 or indices.ndim != 1:
            raise InvalidParameterError("profile arrays must be one-dimensional")
        if distances.shape != indices.shape:
            raise InvalidParameterError(
                f"distances and indices must have equal length, got "
                f"{distances.shape} and {indices.shape}"
            )
        if self.window < 1:
            raise InvalidParameterError(f"window must be >= 1, got {self.window}")
        if self.exclusion_radius < 0:
            raise InvalidParameterError(
                f"exclusion radius must be >= 0, got {self.exclusion_radius}"
            )
        object.__setattr__(self, "distances", distances)
        object.__setattr__(self, "indices", indices)

    def __len__(self) -> int:
        return int(self.distances.size)

    def __iter__(self) -> Iterator[tuple[float, int]]:
        return iter(zip(self.distances.tolist(), self.indices.tolist()))

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @property
    def normalized_distances(self) -> np.ndarray:
        """Length-normalised profile ``MP / sqrt(window)`` (used by VALMAP)."""
        return np.asarray(length_normalized(self.distances, self.window))

    def best(self) -> MotifPair:
        """The motif pair: the global minimum of the profile."""
        finite = np.isfinite(self.distances)
        if not finite.any():
            raise EmptyResultError("the matrix profile contains no finite entries")
        offset = int(np.argmin(np.where(finite, self.distances, np.inf)))
        match = int(self.indices[offset])
        if match < 0:
            raise EmptyResultError(f"offset {offset} has no recorded match")
        return MotifPair(
            distance=float(self.distances[offset]),
            offset_a=offset,
            offset_b=match,
            window=self.window,
        )

    def motifs(self, k: int = 3, *, exclusion_radius: int | None = None) -> List[MotifPair]:
        """Top-``k`` motif pairs, excluding trivial matches of earlier pairs.

        The standard matrix-profile procedure: repeatedly take the global
        minimum and mask an exclusion zone around both of its members before
        looking for the next pair.  Fewer than ``k`` pairs may be returned on
        short series.
        """
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        radius = self.exclusion_radius if exclusion_radius is None else exclusion_radius
        working = np.array(self.distances, dtype=np.float64)
        pairs: List[MotifPair] = []
        while len(pairs) < k:
            finite = np.isfinite(working)
            if not finite.any():
                break
            offset = int(np.argmin(np.where(finite, working, np.inf)))
            if not np.isfinite(working[offset]):
                break
            match = int(self.indices[offset])
            if match < 0:
                apply_exclusion_zone(working, offset, radius)
                continue
            pairs.append(
                MotifPair(
                    distance=float(self.distances[offset]),
                    offset_a=offset,
                    offset_b=match,
                    window=self.window,
                )
            )
            apply_exclusion_zone(working, offset, radius)
            apply_exclusion_zone(working, match, radius)
        return pairs

    def discords(self, k: int = 3, *, exclusion_radius: int | None = None) -> List[int]:
        """Offsets of the top-``k`` discords (largest nearest-neighbour distance)."""
        if k < 1:
            raise InvalidParameterError(f"k must be >= 1, got {k}")
        radius = self.exclusion_radius if exclusion_radius is None else exclusion_radius
        working = np.array(self.distances, dtype=np.float64)
        working[~np.isfinite(working)] = -np.inf
        discords: List[int] = []
        while len(discords) < k:
            offset = int(np.argmax(working))
            if working[offset] == -np.inf:
                break
            discords.append(offset)
            apply_exclusion_zone(working, offset, radius, value=-np.inf)
        return discords

    def as_dict(self) -> dict:
        """Plain-dict form used by serialization."""
        return {
            "window": self.window,
            "exclusion_radius": self.exclusion_radius,
            "distances": self.distances.tolist(),
            "indices": self.indices.tolist(),
        }
