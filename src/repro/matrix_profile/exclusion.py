"""Trivial-match exclusion zones.

A subsequence trivially matches itself and its immediate neighbours; motif
discovery must ignore those matches.  The matrix-profile convention is to
exclude every candidate whose offset is within ``ceil(m / factor)`` of the
query offset, with ``factor = 4`` by default (an exclusion *radius* of a
quarter of the subsequence length on each side).
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError

__all__ = ["default_exclusion_radius", "apply_exclusion_zone"]

#: Default denominator of the exclusion radius: radius = ceil(m / 4).
DEFAULT_EXCLUSION_FACTOR = 4


def default_exclusion_radius(window: int, factor: int = DEFAULT_EXCLUSION_FACTOR) -> int:
    """Exclusion radius for subsequences of length ``window``.

    A radius of ``r`` means offsets ``[i - r, i + r]`` are treated as trivial
    matches of offset ``i``.
    """
    if window < 1:
        raise InvalidParameterError(f"window must be >= 1, got {window}")
    if factor < 1:
        raise InvalidParameterError(f"exclusion factor must be >= 1, got {factor}")
    return int(math.ceil(window / factor))


def apply_exclusion_zone(
    distances: np.ndarray,
    center: int,
    radius: int,
    value: float = np.inf,
) -> np.ndarray:
    """Set ``distances[center - radius : center + radius + 1]`` to ``value`` in place.

    Returns the same array for convenient chaining.
    """
    if radius < 0:
        raise InvalidParameterError(f"exclusion radius must be >= 0, got {radius}")
    start = max(0, center - radius)
    stop = min(distances.shape[0], center + radius + 1)
    if start < stop:
        distances[start:stop] = value
    return distances
