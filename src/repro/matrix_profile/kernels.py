"""Pluggable sweep kernels for the STOMP recurrence.

Every STOMP-shaped computation in the library — the serial sweep in
:mod:`repro.matrix_profile.stomp`, the engine's row blocks in
:mod:`repro.engine.partition`, and through them VALMOD's base pass,
``stomp-range`` and SKIMP — advances the same dot-product recurrence::

    QT[i, j] = QT[i-1, j-1] - T[i-1]·T[j-1] + T[i+m-1]·T[j+m-1]

and reduces each row to one ``(profile, index)`` pair.  This module owns
that inner loop.  :func:`run_sweep` drives a row range ``[start, stop)``
through one of three interchangeable kernels:

``"oracle"``
    The original per-row loop: one full distance row per query offset via
    :func:`~repro.matrix_profile.distance_profile.distances_from_dot_products`.
    It is the frozen reference the fast kernels are pinned against, the
    benchmark baseline, and the only kernel that can feed
    ``profile_callback`` (which wants the full distance row).
``"numpy"``
    The batched row-block kernel: rows advance through a preallocated 2-D
    QT block (a ring of row buffers, so each row is computed from the
    cache-hot previous row), the row reduction happens immediately in a
    cheap *selection space* (see below) while the row is still resident,
    and the winners of a whole reseed segment are converted to distances
    in one deferred vectorized pass.  No per-row allocations — the
    per-row cost drops from "allocate + fill three O(n) temporaries"
    (each above the allocator's mmap threshold, i.e. a page-fault storm
    per row) to a handful of writes into reused buffers, worth ~10x on a
    32k sweep (see ``benchmarks/test_engine_scaling.py``).  A variant
    that advanced ``k`` rows before reducing any of them was measured ~2x
    slower: by the time the block was reduced, its first rows had been
    evicted from L2 and every byte was read back from DRAM.
``"native"``
    A small C translation of the numpy kernel, compiled on demand with the
    system C compiler and loaded through :mod:`ctypes`
    (:mod:`repro.matrix_profile._native`).  Optional: when no compiler is
    available (or ``REPRO_NO_NATIVE=1``), requests for it fall back to
    ``"numpy"`` with a one-time :class:`RuntimeWarning`.

``"auto"`` resolves to ``"native"`` when the compiled kernel is loadable
and ``"numpy"`` otherwise; a ``kernel=None`` default additionally honours
the ``REPRO_KERNEL`` environment variable.

Bit-for-bit equality across kernels
-----------------------------------
The three kernels produce **identical** profiles and indices, not merely
close ones (``tests/test_kernels.py`` pins this).  Two ingredients make
that possible:

* Every kernel picks each row's winner by ``argmax`` over the same
  *selection scores* ``sel[j] = (QT[j] - m·μ_i·μ_j) / σ_j`` — the
  numerator of the Pearson correlation scaled by the row-constant
  ``1 / (m·σ_i)``, evaluated with the exact same floating-point operation
  sequence everywhere (the C kernel is compiled with ``-ffp-contract=off``
  so no FMA contraction can reorder a rounding).  Constant-subsequence
  conventions are injected *in selection space*: a constant target column
  scores ``0.5·m·σ_i`` (the sel value whose distance is exactly
  ``sqrt(m)``) and a constant query row scores ``1.0`` against constant
  columns and ``0.5`` otherwise, mirroring the ``0 / sqrt(m)`` distance
  convention of ``distances_from_dot_products``.  Excluded columns score
  ``-inf``; a row whose best score is ``-inf`` has no valid match.
* The winner's *distance* is then computed by a transcription of the
  exact ``distances_from_dot_products`` arithmetic — vectorized over all
  winners at once in the numpy kernel, scalar in the C kernel, and
  including the Dekker-compensated centering when the sweep-level
  :func:`~repro.stats.distance.compensation_needed` decision is on — so
  the reported value carries the same bits the oracle's full row would.

Buffer-ownership contract (the ``qt`` aliasing fix)
---------------------------------------------------
The recurrence mutates its dot-product buffers in place, so handing them
to hooks used to be a use-after-advance hazard.  The contract is now:

* ``profile_callback(offset, dot_products, distances)`` receives a
  **read-only copy** of the row's dot products — safe to keep across
  rows — and a fresh ``distances`` array it owns outright.
* ``ingest_store.ingest_centered_profile(offset, dot_products)`` receives
  a **read-only view** that is only valid for the duration of the call
  (the store copies what it retains); consuming it during the call is the
  whole contract.

``tests/test_kernels.py`` holds references across rows to enforce both.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Callable

import numpy as np

from repro import obs
from repro.exceptions import InvalidParameterError
from repro.matrix_profile.distance_profile import distances_from_dot_products
from repro.matrix_profile.exclusion import apply_exclusion_zone
from repro.stats.distance import centered_dot_products, compensation_needed
from repro.stats.fft import sliding_dot_product

__all__ = [
    "DEFAULT_DIAG_BLOCK",
    "DEFAULT_JOIN_RESEED_INTERVAL",
    "DIAG_BATCH_MAX_N",
    "KERNEL_NAMES",
    "available_kernels",
    "resolve_kernel",
    "validate_kernel",
    "run_diagonal_sweep",
    "run_join_sweep",
    "run_sweep",
]

#: Accepted ``kernel=`` spellings, in resolution order of preference.
KERNEL_NAMES = ("auto", "oracle", "numpy", "native")

#: Environment override consulted when no explicit kernel is requested.
KERNEL_ENV = "REPRO_KERNEL"

# Sweep telemetry (the ``kernel`` metric family).  Recording happens once
# per sweep *call* — a block of hundreds of rows — never per row, and the
# whole path is guarded by one flag check so a disabled registry costs two
# branches per block (the ``BENCH_obs_overhead`` gate).
_KERNEL_METRICS = obs.scope("kernel")
_SWEEP_SECONDS = _KERNEL_METRICS.histogram("sweep_seconds")
_SWEEP_ROWS = _KERNEL_METRICS.counter("sweep_rows")
_SWEEPS = _KERNEL_METRICS.counter("sweeps")
_SWEEP_RATE = _KERNEL_METRICS.gauge("sweep_rows_per_second")
_JOIN_SECONDS = _KERNEL_METRICS.histogram("join_sweep_seconds")
_JOIN_ROWS = _KERNEL_METRICS.counter("join_sweep_rows")
_JOINS = _KERNEL_METRICS.counter("join_sweeps")
_JOIN_RATE = _KERNEL_METRICS.gauge("join_sweep_rows_per_second")


def _record_sweep(
    span_name: str,
    kernel_name: str,
    rows: int,
    started_wall: float,
    started_at: float,
    seconds: "obs.Histogram",
    row_counter: "obs.Counter",
    call_counter: "obs.Counter",
    rate: "obs.Gauge",
) -> None:
    elapsed = time.perf_counter() - started_at
    seconds.observe(elapsed)
    row_counter.inc(rows)
    call_counter.inc()
    if elapsed > 0.0:
        rate.set(rows / elapsed)
    obs.record_span(
        span_name, started_wall, elapsed, rows=rows, kernel=kernel_name
    )


def validate_kernel(kernel: "str | None") -> "str | None":
    """Check a ``kernel=`` argument, returning it unchanged.

    ``None`` (resolve at run time, honouring :data:`KERNEL_ENV`) and the
    names in :data:`KERNEL_NAMES` are accepted.
    """
    if kernel is not None and kernel not in KERNEL_NAMES:
        raise InvalidParameterError(
            f"unknown kernel {kernel!r}; expected one of {list(KERNEL_NAMES)} or None"
        )
    return kernel


def _native_lib():
    """The loaded native kernel library, or ``None`` when unavailable."""
    from repro.matrix_profile import _native

    return _native.load()


def available_kernels() -> tuple:
    """The concrete kernels usable right now (``"auto"`` excluded)."""
    names = ["oracle", "numpy"]
    if _native_lib() is not None:
        names.append("native")
    return tuple(names)


_warned_native_fallback = False


def resolve_kernel(kernel: "str | None") -> str:
    """Resolve a ``kernel=`` argument to a concrete kernel name.

    ``None`` reads :data:`KERNEL_ENV` (default ``"auto"``); ``"auto"``
    prefers the native kernel when loadable and falls back to
    ``"numpy"``.  An explicit ``"native"`` request that cannot be served
    warns once per process and degrades to ``"numpy"`` — callers never
    have to guard on compiler availability.
    """
    global _warned_native_fallback
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV) or "auto"
    validate_kernel(kernel)
    if kernel == "auto":
        return "native" if _native_lib() is not None else "numpy"
    if kernel == "native" and _native_lib() is None:
        if not _warned_native_fallback:
            from repro.matrix_profile import _native

            warnings.warn(
                "native STOMP kernel unavailable "
                f"({_native.unavailable_reason()}); falling back to the "
                "numpy row-block kernel",
                RuntimeWarning,
                stacklevel=2,
            )
            _warned_native_fallback = True
        return "numpy"
    return kernel


class _SweepContext:
    """Per-sweep precomputation shared by every kernel.

    All arrays live in mean-centered space (``values`` is
    ``SlidingStats.centered_values``), which is where the recurrence runs.
    """

    __slots__ = (
        "values",
        "window",
        "count",
        "radius",
        "means",
        "stds",
        "first_col",
        "compensated",
        "coef",
        "inv_stds",
        "half_wq",
        "const_cols",
        "has_const",
        "const_row_sel",
        "sqrt_window",
    )

    def __init__(self, values, window, radius, means, stds, first_col, compensated):
        self.values = values
        self.window = int(window)
        self.count = int(means.size)
        self.radius = int(radius)
        self.means = means
        self.stds = stds
        self.first_col = first_col
        self.compensated = bool(compensated)
        # Row/column coefficients of the selection scores.  ``inv_stds``
        # holds 0 (not inf) at constant columns so the blocked multiply
        # never manufactures inf/NaN; those columns are overwritten with
        # their convention score before the argmax either way.
        self.coef = window * means
        constant = stds == 0.0
        self.inv_stds = np.zeros_like(stds)
        np.divide(1.0, stds, out=self.inv_stds, where=~constant)
        self.half_wq = 0.5 * (window * stds)
        self.const_cols = np.flatnonzero(constant)
        self.has_const = self.const_cols.size > 0
        # Selection scores of a constant *query* row: distance 0 to the
        # constant columns, sqrt(m) to everything else — any strictly
        # decreasing map of the distance convention works, 1.0 / 0.5 is
        # the cheapest.
        self.const_row_sel = np.where(constant, 1.0, 0.5)
        self.sqrt_window = float(np.sqrt(window))


def _readonly_view(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


def _seed_into(ctx: _SweepContext, out: np.ndarray, offset: int) -> None:
    """Fresh MASS seed of row ``offset`` into ``out``.

    Row 0's seed *is* the first-row products; any other row costs one FFT.
    """
    if offset == 0:
        np.copyto(out, ctx.first_col)
    else:
        np.copyto(
            out,
            sliding_dot_product(ctx.values[offset : offset + ctx.window], ctx.values),
        )


def _advance_into(
    ctx: _SweepContext, prev: np.ndarray, out: np.ndarray, offset: int, tmp: np.ndarray
) -> None:
    """One recurrence step ``prev`` (row ``offset-1``) → ``out`` (row ``offset``).

    The operation order replicates the oracle's vectorised expression
    ``(qt[:-1] - a·u) + b·v`` exactly, so the fast kernels accumulate the
    same rounding as the reference.  ``tmp`` is a reused scratch buffer.
    """
    values = ctx.values
    count = ctx.count
    window = ctx.window
    scratch = tmp[: count - 1]
    np.multiply(values[offset - 1], values[: count - 1], out=scratch)
    np.subtract(prev[: count - 1], scratch, out=out[1:])
    np.multiply(values[offset + window - 1], values[window : window + count - 1], out=scratch)
    np.add(out[1:], scratch, out=out[1:])
    out[0] = ctx.first_col[offset]


def _fill_selection_row(
    ctx: _SweepContext, qt: np.ndarray, offset: int, sel: np.ndarray
) -> None:
    """Selection scores of one row into ``sel`` (exclusion zone applied)."""
    if ctx.stds[offset] == 0.0:
        np.copyto(sel, ctx.const_row_sel)
    else:
        np.multiply(ctx.coef[offset], ctx.means, out=sel)
        np.subtract(qt, sel, out=sel)
        np.multiply(sel, ctx.inv_stds, out=sel)
        if ctx.has_const:
            sel[ctx.const_cols] = ctx.half_wq[offset]
    apply_exclusion_zone(sel, offset, ctx.radius, value=-np.inf)


def _transcribed_distances(
    window: int,
    qt_best: np.ndarray,
    query_means: np.ndarray,
    query_stds: np.ndarray,
    target_means: np.ndarray,
    target_stds: np.ndarray,
    compensated: bool,
    sqrt_window: float,
) -> np.ndarray:
    """Winner distances from winner dot products, bit-equal to oracle rows.

    Vectorised transcription of the element-wise arithmetic of
    :func:`~repro.matrix_profile.distance_profile.distances_from_dot_products`
    (including the compensated centering of
    :func:`~repro.stats.distance.centered_dot_products` when the sweep
    decided it is needed), preserving the operation order so each result
    carries the identical bits the oracle's full row would.  Query and
    target statistics are explicit arrays, so the same transcription
    serves the self-join sweep (both sides indexed into one series) and
    the AB-join sweep (query stats from ``A``, target stats from ``B``).
    """
    centered = centered_dot_products(
        qt_best,
        window,
        query_means,
        target_means,
        compensated=compensated,
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        correlation = centered / ((window * query_stds) * target_stds)
    np.clip(correlation, -1.0, 1.0, out=correlation)
    squared = 2.0 * window * (1.0 - correlation)
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared)
    query_constant = query_stds == 0.0
    target_constant = target_stds == 0.0
    distances[query_constant | target_constant] = sqrt_window
    distances[query_constant & target_constant] = 0.0
    return distances


def _winner_distances(
    ctx: _SweepContext, offsets: np.ndarray, bests: np.ndarray, qt_best: np.ndarray
) -> np.ndarray:
    """Distances of the ``(offsets[r], bests[r])`` winners of a self-join sweep."""
    return _transcribed_distances(
        ctx.window,
        qt_best,
        ctx.means[offsets],
        ctx.stds[offsets],
        ctx.means[bests],
        ctx.stds[bests],
        ctx.compensated,
        ctx.sqrt_window,
    )


# --------------------------------------------------------------------- #
# kernels (one reseed segment each)
# --------------------------------------------------------------------- #
def _oracle_segment(
    ctx,
    qt,
    sel,
    seg_start,
    seg_stop,
    base,
    profile,
    indices,
    profile_callback,
    ingest,
):
    """Reference per-row sweep: full distance rows, shared selection."""
    for offset in range(seg_start, seg_stop):
        if offset > seg_start:
            qt[1:] = (
                qt[:-1]
                - ctx.values[offset - 1] * ctx.values[: ctx.count - 1]
                + ctx.values[offset + ctx.window - 1]
                * ctx.values[ctx.window : ctx.window + ctx.count - 1]
            )
            qt[0] = ctx.first_col[offset]
        distances = distances_from_dot_products(
            qt,
            ctx.window,
            float(ctx.means[offset]),
            float(ctx.stds[offset]),
            ctx.means,
            ctx.stds,
            compensated=ctx.compensated,
        )
        if ingest is not None:
            ingest.ingest_centered_profile(offset, _readonly_view(qt))
        if profile_callback is not None:
            snapshot = qt.copy()
            snapshot.flags.writeable = False
            profile_callback(offset, snapshot, distances)
        _fill_selection_row(ctx, qt, offset, sel)
        best = int(np.argmax(sel))
        if sel[best] != -np.inf:
            profile[offset - base] = distances[best]
            indices[offset - base] = best


def _numpy_segment(
    ctx,
    workspace,
    seg_start,
    seg_stop,
    base,
    best,
    best_qt,
    valid,
    ingest,
):
    """Row-pipelined sweep of one reseed segment.

    Each row is advanced from the still cache-hot previous row (the two
    rows of the QT block ping-pong: the advance reads one and writes the
    other, so nothing aliases), scored and reduced immediately, and only
    the winner's ``(column, dot product)`` pair is recorded.  Winner
    *distances* are not computed here — the driver converts every
    recorded winner in one vectorized :func:`_winner_distances` pass
    after the sweep.
    """
    qt_block, sel, tmp = workspace
    prev = None
    t = 0
    for offset in range(seg_start, seg_stop):
        row = qt_block[t]
        t ^= 1
        if prev is None:
            _seed_into(ctx, row, offset)
        else:
            _advance_into(ctx, prev, row, offset, tmp)
        prev = row
        if ingest is not None:
            ingest.ingest_centered_profile(offset, _readonly_view(row))
        _fill_selection_row(ctx, row, offset, sel)
        winner = int(np.argmax(sel))
        if sel[winner] != -np.inf:
            pos = offset - base
            valid[pos] = True
            best[pos] = winner
            best_qt[pos] = row[winner]


def _native_segment(ctx, lib, qt, seg_start, seg_stop, base, profile, indices):
    """Dispatch one reseed segment to the compiled kernel."""
    lib.repro_stomp_segment(
        ctx.values,
        ctx.window,
        ctx.count,
        ctx.means,
        ctx.stds,
        ctx.inv_stds,
        ctx.coef,
        ctx.first_col,
        qt,
        seg_start,
        seg_stop,
        ctx.radius,
        1 if ctx.compensated else 0,
        1 if ctx.has_const else 0,
        profile[seg_start - base : seg_stop - base],
        indices[seg_start - base : seg_stop - base],
    )


# --------------------------------------------------------------------- #
# the driver
# --------------------------------------------------------------------- #
def run_sweep(
    values: np.ndarray,
    window: int,
    radius: int,
    means: np.ndarray,
    stds: np.ndarray,
    first_row_dots: np.ndarray,
    start: int,
    stop: int,
    *,
    kernel: "str | None" = None,
    compensated: "bool | None" = None,
    reseed_interval: "int | None" = None,
    profile_callback: "Callable[[int, np.ndarray, np.ndarray], None] | None" = None,
    ingest=None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Profile/index arrays for query rows ``[start, stop)``.

    Parameters
    ----------
    values:
        The **mean-centered** series the recurrence runs on
        (``SlidingStats.centered_values``).
    means, stds:
        Per-window statistics of the centered series.
    first_row_dots:
        ``QT[0, j]`` for every ``j`` — by self-join symmetry also the
        ``QT[i, 0]`` column the recurrence cannot reach.
    reseed_interval:
        Rows advanced by the recurrence before a fresh MASS seed;
        ``None`` keeps one unbroken chain (the serial-sweep contract).
        Segment boundaries are part of the numerical result, so all
        kernels share them: bit-for-bit equality holds per
        ``(start, stop, reseed_interval)`` shape.
    profile_callback, ingest:
        Per-row hooks (see the module docstring for the buffer-ownership
        contract).  A ``profile_callback`` needs full distance rows and
        therefore always runs on the oracle kernel; an ``ingest`` object
        (a :class:`~repro.core.partial_profile.PartialProfileStore` or
        fragment) is fed row views by the oracle and numpy kernels, so a
        native request with ingest runs the numpy kernel.

    Returns
    -------
    (profile, indices):
        Arrays of length ``stop - start``; rows with no valid match
        (fully excluded) hold ``inf`` / ``-1``.
    """
    count = int(means.size)
    length = int(stop) - int(start)
    if length < 0 or start < 0 or stop > count:
        raise InvalidParameterError(
            f"row range [{start}, {stop}) out of bounds for {count} rows"
        )
    profile = np.full(length, np.inf, dtype=np.float64)
    indices = np.full(length, -1, dtype=np.int64)
    if length == 0:
        return profile, indices

    name = resolve_kernel(kernel)
    if profile_callback is not None:
        name = "oracle"
    elif ingest is not None and name == "native":
        name = "numpy"

    observing = obs.metrics_enabled() or obs.tracing_active()
    if observing:
        started_wall = time.time()
        started_at = time.perf_counter()

    if compensated is None:
        compensated = compensation_needed(means, means, stds)
    ctx = _SweepContext(values, window, radius, means, stds, first_row_dots, compensated)

    # Segment layout replicates the historical reseed loop: a fresh seed
    # row followed by ``reseed_interval`` recurrence advances.
    interval = length if reseed_interval is None else int(reseed_interval)
    seg_len = interval + 1

    lib = _native_lib() if name == "native" else None
    if name == "native" and lib is None:  # pragma: no cover - racy unload guard
        name = "numpy"

    if name == "numpy":
        workspace = (
            np.empty((2, count), dtype=np.float64),
            np.empty(count, dtype=np.float64),
            np.empty(count, dtype=np.float64),
        )
        best = np.empty(length, dtype=np.int64)
        best_qt = np.empty(length, dtype=np.float64)
        valid = np.zeros(length, dtype=bool)
    else:
        qt = np.empty(count, dtype=np.float64)
        sel = np.empty(count, dtype=np.float64) if name == "oracle" else None

    seg_start = start
    while seg_start < stop:
        seg_stop = min(seg_start + seg_len, stop)
        if name == "numpy":
            _numpy_segment(
                ctx, workspace, seg_start, seg_stop, start, best, best_qt, valid, ingest
            )
        else:
            _seed_into(ctx, qt, seg_start)
            if name == "native":
                _native_segment(ctx, lib, qt, seg_start, seg_stop, start, profile, indices)
            else:
                _oracle_segment(
                    ctx,
                    qt,
                    sel,
                    seg_start,
                    seg_stop,
                    start,
                    profile,
                    indices,
                    profile_callback,
                    ingest,
                )
        seg_start = seg_stop

    if name == "numpy":
        chosen = np.flatnonzero(valid)
        if chosen.size:
            profile[chosen] = _winner_distances(
                ctx, chosen + start, best[chosen], best_qt[chosen]
            )
            indices[chosen] = best[chosen]
    if observing:
        _record_sweep(
            "kernel.sweep",
            name,
            length,
            started_wall,
            started_at,
            _SWEEP_SECONDS,
            _SWEEP_ROWS,
            _SWEEPS,
            _SWEEP_RATE,
        )
    return profile, indices


# --------------------------------------------------------------------- #
# AB-join sweep (cross-series STOMP recurrence)
# --------------------------------------------------------------------- #
#: Rows advanced by the join recurrence before a fresh MASS re-seed — the
#: same drift bound as the engine's ``DEFAULT_RESEED_INTERVAL`` (defined
#: here rather than imported: :mod:`repro.engine.partition` imports this
#: module).  ``0`` re-seeds every row, which makes the fast join kernels
#: bit-for-bit equal to the per-row oracle loop (each row then comes from
#: the identical FFT instead of recurrence steps).
DEFAULT_JOIN_RESEED_INTERVAL = 512


class _JoinContext:
    """Per-sweep precomputation of an AB-join, shared by every kernel.

    All arrays live in ``B``-centered space — both series shifted by
    ``stats_b.center``, which is the space the historical per-offset MASS
    loop computes in (z-normalised distances are shift-invariant; one
    common shift keeps the dot products small).  Query rows come from
    ``A``; target columns from ``B``.  There is no exclusion zone: the two
    series are distinct, so every column is a legal match and every row
    has a winner.
    """

    __slots__ = (
        "values_a",
        "values_b",
        "window",
        "count_a",
        "count_b",
        "means_a",
        "stds_a",
        "means_b",
        "stds_b",
        "first_col",
        "compensated",
        "coef_a",
        "inv_stds_b",
        "half_wq_a",
        "const_cols",
        "has_const",
        "const_row_sel",
        "sqrt_window",
    )

    def __init__(
        self, values_a, values_b, window, means_a, stds_a, means_b, stds_b, compensated
    ):
        self.values_a = values_a
        self.values_b = values_b
        self.window = int(window)
        self.count_a = int(means_a.size)
        self.count_b = int(means_b.size)
        self.means_a = means_a
        self.stds_a = stds_a
        self.means_b = means_b
        self.stds_b = stds_b
        # QT[i, 0] for every A-row i — the column the recurrence cannot
        # reach.  Only the recurrence kernels need it (the oracle seeds
        # every row fresh), so it is computed lazily by run_join_sweep.
        self.first_col = None
        self.compensated = bool(compensated)
        # Row/column coefficients of the selection scores
        # sel[j] = (QT[j] - m*mu_a[i]*mu_b[j]) / sigma_b[j]; same
        # conventions as the self-join context, with the row side from A
        # and the column side from B.
        self.coef_a = window * means_a
        constant = stds_b == 0.0
        self.inv_stds_b = np.zeros_like(stds_b)
        np.divide(1.0, stds_b, out=self.inv_stds_b, where=~constant)
        self.half_wq_a = 0.5 * (window * stds_a)
        self.const_cols = np.flatnonzero(constant)
        self.has_const = self.const_cols.size > 0
        self.const_row_sel = np.where(constant, 1.0, 0.5)
        self.sqrt_window = float(np.sqrt(window))


def _seed_join_into(ctx: _JoinContext, out: np.ndarray, offset: int) -> None:
    """Fresh MASS seed of A-row ``offset`` against all of B, into ``out``.

    This is byte-for-byte the FFT call of the historical per-offset loop,
    so a sweep that seeds every row (``reseed_interval=0``) reproduces the
    oracle's dot products exactly.
    """
    np.copyto(
        out,
        sliding_dot_product(
            ctx.values_a[offset : offset + ctx.window], ctx.values_b
        ),
    )


def _advance_join_into(
    ctx: _JoinContext, prev: np.ndarray, out: np.ndarray, offset: int, tmp: np.ndarray
) -> None:
    """One join recurrence step ``prev`` (row ``offset-1``) → ``out``.

    ``QT[i, j] = QT[i-1, j-1] - A[i-1]·B[j-1] + A[i+m-1]·B[j+m-1]`` with
    the exact ``(prev - a·u) + b·v`` operation order of the self-join
    kernels, so the numpy and native kernels accumulate identical
    rounding.
    """
    values_b = ctx.values_b
    count_b = ctx.count_b
    window = ctx.window
    scratch = tmp[: count_b - 1]
    np.multiply(ctx.values_a[offset - 1], values_b[: count_b - 1], out=scratch)
    np.subtract(prev[: count_b - 1], scratch, out=out[1:])
    np.multiply(
        ctx.values_a[offset + window - 1],
        values_b[window : window + count_b - 1],
        out=scratch,
    )
    np.add(out[1:], scratch, out=out[1:])
    out[0] = ctx.first_col[offset]


def _fill_join_selection_row(
    ctx: _JoinContext, qt: np.ndarray, offset: int, sel: np.ndarray
) -> None:
    """Selection scores of one join row into ``sel`` (no exclusion zone)."""
    if ctx.stds_a[offset] == 0.0:
        np.copyto(sel, ctx.const_row_sel)
    else:
        np.multiply(ctx.coef_a[offset], ctx.means_b, out=sel)
        np.subtract(qt, sel, out=sel)
        np.multiply(sel, ctx.inv_stds_b, out=sel)
        if ctx.has_const:
            sel[ctx.const_cols] = ctx.half_wq_a[offset]


def _oracle_join_rows(ctx, qt, start, stop, profile, indices):
    """Reference per-row join: the historical ab_join loop, verbatim.

    One MASS call and one full ``distances_from_dot_products`` row per
    query offset, winner by ``argmin`` over the distances — exactly the
    arithmetic (and tie-breaking) of the pre-kernel ``ab_join``, which is
    why this path ignores ``reseed_interval``: the historical loop never
    advanced a recurrence.
    """
    for offset in range(start, stop):
        _seed_join_into(ctx, qt, offset)
        distances = distances_from_dot_products(
            qt,
            ctx.window,
            float(ctx.means_a[offset]),
            float(ctx.stds_a[offset]),
            ctx.means_b,
            ctx.stds_b,
            compensated=ctx.compensated,
        )
        best = int(np.argmin(distances))
        profile[offset - start] = float(distances[best])
        indices[offset - start] = best


def _numpy_join_segment(ctx, workspace, seg_start, seg_stop, base, best, best_qt):
    """Row-pipelined join sweep of one reseed segment.

    Same shape as the self-join numpy kernel: ping-pong QT rows, immediate
    selection-space reduction, winner distances deferred to one vectorized
    :func:`_transcribed_distances` pass after the sweep.  Every row has a
    winner (no exclusion zone), so no validity mask is needed.
    """
    qt_block, sel, tmp = workspace
    prev = None
    t = 0
    for offset in range(seg_start, seg_stop):
        row = qt_block[t]
        t ^= 1
        if prev is None:
            _seed_join_into(ctx, row, offset)
        else:
            _advance_join_into(ctx, prev, row, offset, tmp)
        prev = row
        _fill_join_selection_row(ctx, row, offset, sel)
        winner = int(np.argmax(sel))
        pos = offset - base
        best[pos] = winner
        best_qt[pos] = row[winner]


def _native_join_segment(ctx, lib, qt, seg_start, seg_stop, base, profile, indices):
    """Dispatch one join reseed segment to the compiled kernel."""
    lib.repro_ab_join_segment(
        ctx.values_a,
        ctx.values_b,
        ctx.window,
        ctx.count_b,
        ctx.means_a,
        ctx.stds_a,
        ctx.means_b,
        ctx.stds_b,
        ctx.inv_stds_b,
        ctx.coef_a,
        ctx.first_col,
        qt,
        seg_start,
        seg_stop,
        1 if ctx.compensated else 0,
        1 if ctx.has_const else 0,
        profile[seg_start - base : seg_stop - base],
        indices[seg_start - base : seg_stop - base],
    )


def run_join_sweep(
    values_a: np.ndarray,
    values_b: np.ndarray,
    window: int,
    means_a: np.ndarray,
    stds_a: np.ndarray,
    means_b: np.ndarray,
    stds_b: np.ndarray,
    start: int,
    stop: int,
    *,
    kernel: "str | None" = None,
    compensated: "bool | None" = None,
    reseed_interval: "int | None" = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """AB-join profile/index arrays for query rows ``[start, stop)`` of A.

    Parameters
    ----------
    values_a, values_b:
        Both series shifted by **B's** global mean (``stats_b.center``) —
        the space the historical per-offset MASS loop computes in.
    means_a, stds_a:
        Window statistics of the *shifted* A (``means_a - center_b``, raw
        standard deviations — shifts do not change sigma).
    means_b, stds_b:
        Centered window statistics of B
        (``SlidingStats.centered_mean_std``).
    kernel:
        ``"oracle"`` (the historical per-row MASS loop), ``"numpy"`` (the
        O(|A|·|B|) STOMP recurrence across A-rows), ``"native"`` (its C
        translation), ``"auto"`` / ``None`` as in :func:`resolve_kernel`.
    reseed_interval:
        Rows advanced by the recurrence before a fresh MASS re-seed;
        ``None`` uses :data:`DEFAULT_JOIN_RESEED_INTERVAL`, ``0`` re-seeds
        every row (which makes the fast kernels bit-for-bit equal to the
        oracle — same FFTs, no recurrence rounding).  The oracle kernel
        ignores it (the historical loop is always per-row seeded).  As
        with :func:`run_sweep`, segment boundaries are part of the
        numerical result: the fast kernels are bit-for-bit identical to
        each other per ``(start, stop, reseed_interval)`` shape.

    Returns
    -------
    (profile, indices):
        Arrays of length ``stop - start``; ``indices[r]`` is the offset in
        B of the nearest neighbour of A-row ``start + r``.
    """
    count_a = int(means_a.size)
    count_b = int(means_b.size)
    length = int(stop) - int(start)
    if length < 0 or start < 0 or stop > count_a:
        raise InvalidParameterError(
            f"row range [{start}, {stop}) out of bounds for {count_a} rows"
        )
    profile = np.full(length, np.inf, dtype=np.float64)
    indices = np.full(length, -1, dtype=np.int64)
    if length == 0:
        return profile, indices

    name = resolve_kernel(kernel)
    observing = obs.metrics_enabled() or obs.tracing_active()
    if observing:
        started_wall = time.time()
        started_at = time.perf_counter()
    if compensated is None:
        compensated = compensation_needed(means_b, means_b, stds_b)
    ctx = _JoinContext(
        values_a, values_b, window, means_a, stds_a, means_b, stds_b, compensated
    )

    if name == "oracle":
        qt = np.empty(count_b, dtype=np.float64)
        _oracle_join_rows(ctx, qt, start, stop, profile, indices)
        if observing:
            _record_sweep(
                "kernel.join_sweep",
                name,
                length,
                started_wall,
                started_at,
                _JOIN_SECONDS,
                _JOIN_ROWS,
                _JOINS,
                _JOIN_RATE,
            )
        return profile, indices

    if reseed_interval is None:
        reseed_interval = DEFAULT_JOIN_RESEED_INTERVAL
    interval = int(reseed_interval)
    if interval < 0:
        raise InvalidParameterError(
            f"reseed_interval must be >= 0, got {reseed_interval}"
        )
    seg_len = interval + 1

    lib = _native_lib() if name == "native" else None
    if name == "native" and lib is None:  # pragma: no cover - racy unload guard
        name = "numpy"

    # The recurrence cannot reach column 0, so the advances refresh it from
    # QT[:, 0] = B[0:m] . A[i:i+m] — one extra FFT, only needed when a
    # segment actually advances (seg_len > 1); the native kernel takes the
    # array unconditionally.
    if seg_len > 1 or name == "native":
        ctx.first_col = sliding_dot_product(values_b[:window], values_a)

    if name == "numpy":
        workspace = (
            np.empty((2, count_b), dtype=np.float64),
            np.empty(count_b, dtype=np.float64),
            np.empty(count_b, dtype=np.float64),
        )
        best = np.empty(length, dtype=np.int64)
        best_qt = np.empty(length, dtype=np.float64)
    else:
        qt = np.empty(count_b, dtype=np.float64)

    seg_start = start
    while seg_start < stop:
        seg_stop = min(seg_start + seg_len, stop)
        if name == "numpy":
            _numpy_join_segment(ctx, workspace, seg_start, seg_stop, start, best, best_qt)
        else:
            _seed_join_into(ctx, qt, seg_start)
            _native_join_segment(ctx, lib, qt, seg_start, seg_stop, start, profile, indices)
        seg_start = seg_stop

    if name == "numpy":
        offsets = np.arange(start, stop)
        profile[:] = _transcribed_distances(
            ctx.window,
            best_qt,
            ctx.means_a[offsets],
            ctx.stds_a[offsets],
            ctx.means_b[best],
            ctx.stds_b[best],
            ctx.compensated,
            ctx.sqrt_window,
        )
        indices[:] = best
    if observing:
        _record_sweep(
            "kernel.join_sweep",
            name,
            length,
            started_wall,
            started_at,
            _JOIN_SECONDS,
            _JOIN_ROWS,
            _JOINS,
            _JOIN_RATE,
        )
    return profile, indices


# --------------------------------------------------------------------- #
# SCRIMP diagonal sweep (batched anytime kernel)
# --------------------------------------------------------------------- #
#: Diagonals processed per batched-kernel call.  Peak extra memory of the
#: numpy kernel is ~``3 * DEFAULT_DIAG_BLOCK * n`` doubles (products,
#: prefix sums, distances); 32 keeps that ~0.8 MB per 1k points while
#: amortising the per-call numpy overhead over a full block.
DEFAULT_DIAG_BLOCK = 32

#: Above this series length the default numpy path processes diagonals one
#: at a time instead of in padded batches.  The batch pads every diagonal
#: to the full series length (a diagonal ``d`` only has ``n - d`` valid
#: lanes), so once the vectorized work dominates the per-call numpy
#: overhead the padding costs more than the batching saves; the two
#: schedules are bit-identical, so the switch is purely a speed choice.
#: An explicit ``block_size`` always forces the batch.
DIAG_BATCH_MAX_N = 1024


def _diagonal_distances(qt, window, means_a, stds_a, means_b, stds_b, compensated):
    """Distances along diagonals, honouring the constant-subsequence rules.

    The exact arithmetic of SCRIMP's historical per-diagonal helper
    (:mod:`repro.matrix_profile.scrimp` now imports it from here), written
    to broadcast: 1-D inputs give one diagonal, a 2-D ``qt`` with gathered
    2-D B-side stats gives a whole block with bit-identical lanes.
    """
    a_constant = stds_a == 0.0
    b_constant = stds_b == 0.0
    centered = centered_dot_products(
        qt, window, means_a, means_b, compensated=compensated
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        correlation = centered / (window * stds_a * stds_b)
    np.clip(correlation, -1.0, 1.0, out=correlation)
    squared = 2.0 * window * (1.0 - correlation)
    np.maximum(squared, 0.0, out=squared)
    distances = np.sqrt(squared)
    both_constant = a_constant & b_constant
    one_constant = a_constant ^ b_constant
    distances[both_constant] = 0.0
    distances[one_constant] = np.sqrt(window)
    return distances


def _oracle_diagonal(values, window, means, stds, diagonal, distances, indices, compensated):
    """One diagonal of the historical SCRIMP loop, verbatim.

    Dot products via one elementwise product and a cumulative sum, then a
    row pass (entry ``i`` learns about ``i + d``) followed by a column
    pass (entry ``i + d`` learns about ``i``), both with strict ``<`` so
    an earlier diagonal keeps ties.
    """
    count = distances.size - diagonal
    if count <= 0:
        return
    products = values[: values.size - diagonal] * values[diagonal:]
    csum = np.concatenate(([0.0], np.cumsum(products)))
    qt = csum[window : window + count] - csum[:count]
    diag = _diagonal_distances(
        qt, window, means[:count], stds[:count], means[diagonal:], stds[diagonal:], compensated
    )
    rows = np.arange(count)
    columns = rows + diagonal

    better_rows = diag < distances[rows]
    distances[rows[better_rows]] = diag[better_rows]
    indices[rows[better_rows]] = columns[better_rows]

    better_columns = diag < distances[columns]
    distances[columns[better_columns]] = diag[better_columns]
    indices[columns[better_columns]] = rows[better_columns]


def _numpy_diagonal_block(values, window, means, stds, block, distances, indices, compensated):
    """One block of diagonals, batched — bit-equal to processing them one
    by one.

    Distances along a diagonal do not depend on the evolving profile
    state, so the whole block is computed as a 2-D batch (padded products,
    per-row prefix sums, gathered B-side stats; garbage lanes masked to
    ``inf``).  The sequential row/column passes are then reproduced by one
    ``argmin`` over an interleaved stack — layer 0 is the current state,
    layers ``2t+1``/``2t+2`` are diagonal ``t``'s row/column candidates in
    application order — because each pass writes each profile entry at
    most once: the survivor at an entry is simply the minimum over
    (state, candidates in order), ties to the earliest, which is exactly
    ``argmin``'s first-occurrence rule.
    """
    n = values.size
    count = distances.size
    k = block.size
    lanes = np.arange(n)
    gather = np.minimum(lanes[None, :] + block[:, None], n - 1)
    products = values[None, :] * values[gather]
    products[lanes[None, :] >= (n - block)[:, None]] = 0.0
    csum = np.empty((k, n + 1), dtype=np.float64)
    csum[:, 0] = 0.0
    np.cumsum(products, axis=1, out=csum[:, 1:])
    qt = csum[:, window:] - csum[:, :count]

    positions = np.arange(count)
    col_gather = np.minimum(positions[None, :] + block[:, None], count - 1)
    diag = _diagonal_distances(
        qt, window, means, stds, means[col_gather], stds[col_gather], compensated
    )
    diag[positions[None, :] >= (count - block)[:, None]] = np.inf

    stacked = np.full((2 * k + 1, count), np.inf, dtype=np.float64)
    stacked[0] = distances
    for t in range(k):
        cnt = count - int(block[t])
        stacked[2 * t + 1, :cnt] = diag[t, :cnt]
        stacked[2 * t + 2, count - cnt :] = diag[t, :cnt]
    winner = np.argmin(stacked, axis=0)
    updated = winner > 0
    if not updated.any():
        return
    distances[:] = stacked[winner, positions]
    offsets = block[np.maximum(winner - 1, 0) // 2]
    new_indices = np.where(winner % 2 == 1, positions + offsets, positions - offsets)
    indices[:] = np.where(updated, new_indices, indices)


def run_diagonal_sweep(
    values: np.ndarray,
    window: int,
    means: np.ndarray,
    stds: np.ndarray,
    diagonals: np.ndarray,
    distances: np.ndarray,
    indices: np.ndarray,
    *,
    kernel: "str | None" = None,
    compensated: "bool | None" = None,
    block_size: "int | None" = None,
) -> None:
    """Fold a sequence of SCRIMP diagonals into ``distances``/``indices``.

    The arrays are updated **in place** (they are the mutable state of an
    anytime run); ``diagonals`` is visited in the given order, so a
    randomized permutation keeps its anytime convergence behaviour.  All
    kernels produce bit-identical state for any ``block_size``: diagonal
    distances are state-independent and every kernel resolves collisions
    by the same (value, earliest-application) rule, so batching changes
    the schedule but not one output bit — which is why the anytime
    ``fraction``/resume contract survives kernelization untouched.

    ``kernel`` follows :func:`resolve_kernel`; ``"oracle"`` is the
    historical one-diagonal-at-a-time loop.  ``compensated`` is the
    sweep-level Dekker-compensation decision (``None`` recomputes it from
    the stats); ``block_size`` only affects the numpy kernel's batch width
    (default :data:`DEFAULT_DIAG_BLOCK`).
    """
    if diagonals.size == 0:
        return
    name = resolve_kernel(kernel)
    if compensated is None:
        compensated = compensation_needed(means, means, stds)

    if name == "oracle":
        for diagonal in diagonals.tolist():
            _oracle_diagonal(
                values, window, means, stds, diagonal, distances, indices, compensated
            )
        return

    if name == "native":
        lib = _native_lib()
        if lib is None:  # pragma: no cover - racy unload guard
            name = "numpy"
        else:
            diags = np.ascontiguousarray(diagonals, dtype=np.int64)
            lib.repro_scrimp_block(
                values,
                int(values.size),
                int(window),
                int(distances.size),
                means,
                stds,
                diags,
                int(diags.size),
                1 if compensated else 0,
                np.empty(values.size + 1, dtype=np.float64),
                np.empty(distances.size, dtype=np.float64),
                distances,
                indices,
            )
            return

    if block_size is None:
        if values.size > DIAG_BATCH_MAX_N:
            # Bit-identical by the argument above; see DIAG_BATCH_MAX_N for
            # why padded batches lose once the series is long.
            for diagonal in diagonals.tolist():
                _oracle_diagonal(
                    values, window, means, stds, diagonal, distances, indices, compensated
                )
            return
        block_size = DEFAULT_DIAG_BLOCK
    width = int(block_size)
    if width < 1:
        raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
    for start in range(0, diagonals.size, width):
        block = np.ascontiguousarray(diagonals[start : start + width], dtype=np.int64)
        _numpy_diagonal_block(
            values, window, means, stds, block, distances, indices, compensated
        )
