"""Hierarchical trace spans with cross-process and cross-host propagation.

A **span** is one timed region of work with a name, a parent, and optional
attributes::

    with obs.span("engine.block", rows=512):
        ...

Spans nest through a :class:`contextvars.ContextVar`, so the hierarchy
follows the actual control flow — through nested calls, through ``asyncio``
tasks, and (explicitly) across process and HTTP boundaries:

* **process pools** — a dispatcher stamps :func:`current_payload` onto the
  task (the engine carries it in ``ProfileJob.trace`` / the block-task
  payload); the worker wraps execution in :func:`remote_task`, which
  buffers the spans it opens *and* captures the worker registry's metric
  delta, and ships both back with the result for the parent to
  :func:`absorb`;
* **HTTP** — a traced :class:`~repro.service.client.ServiceClient` sends
  the context as the ``X-Repro-Trace: <trace_id>/<span_id>`` header
  (:func:`format_trace_header`); the server adopts it around the request
  (:func:`parse_trace_header` → :func:`remote_task`) and returns its spans
  in the response envelope, so the client's flame view contains the
  server's — and the server's process workers' — spans under one root.

Recording is **off unless someone is collecting**: with no active
:class:`TraceCollector` (started by :func:`trace` — the CLI's ``--trace
out.json``) and no adopted remote context, :func:`span` returns a shared
no-op context manager.  Span timestamps are wall-clock (`obs.clock.now`
semantics do not apply — traces are real recordings), durations come from
``perf_counter``, and the export is Chrome trace-event JSON: load the file
at ``chrome://tracing`` or https://ui.perfetto.dev for the flame view.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterable, List, Mapping

from repro.obs import registry as _registry

__all__ = [
    "TRACE_HEADER",
    "TraceCollector",
    "span",
    "record_span",
    "trace",
    "tracing_active",
    "start_collecting",
    "stop_collecting",
    "current_payload",
    "remote_task",
    "absorb",
    "absorb_events",
    "format_trace_header",
    "parse_trace_header",
    "chrome_trace_document",
]

#: The HTTP propagation header: ``X-Repro-Trace: <trace_id>/<span_id>``.
TRACE_HEADER = "X-Repro-Trace"

#: The (trace_id, span_id) pair of the innermost open span in this context.
_CURRENT: "ContextVar[tuple | None]" = ContextVar("repro_obs_current", default=None)

#: Event sink of an adopted remote task (takes precedence over the global
#: collector so worker spans travel back to their dispatcher).
_BUFFER: "ContextVar[list | None]" = ContextVar("repro_obs_buffer", default=None)

_COLLECTOR: "TraceCollector | None" = None
_COLLECTOR_LOCK = threading.Lock()

_ID_LOCK = threading.Lock()
_NEXT_SPAN = 0


def _new_span_id() -> str:
    """Process-unique, cross-process-collision-free span id."""
    global _NEXT_SPAN
    with _ID_LOCK:
        _NEXT_SPAN += 1
        sequence = _NEXT_SPAN
    return f"{os.getpid():x}.{sequence:x}"


def _new_trace_id() -> str:
    return os.urandom(8).hex()


class TraceCollector:
    """An in-memory sink of finished span events (plain dicts)."""

    def __init__(self) -> None:
        self.events: List[dict] = []  # list.append is atomic under the GIL

    def absorb(self, events: "Iterable[Mapping] | None") -> None:
        """Adopt events harvested from a worker or a service response."""
        if events:
            self.events.extend(dict(event) for event in events)

    def spans(self) -> List[dict]:
        return list(self.events)

    def chrome_document(self) -> dict:
        return chrome_trace_document(self.events)

    def export(self, path) -> None:
        """Write the Chrome trace-event JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_document(), handle)


def chrome_trace_document(events: Iterable[Mapping]) -> dict:
    """Chrome trace-event JSON (``chrome://tracing`` / Perfetto) from the
    internal span-event dicts."""
    trace_events = []
    for event in events:
        args = dict(event.get("args") or {})
        args["span_id"] = event["span_id"]
        if event.get("parent_id") is not None:
            args["parent_id"] = event["parent_id"]
        args["trace_id"] = event["trace_id"]
        trace_events.append(
            {
                "name": event["name"],
                "ph": "X",
                "ts": event["ts"] * 1e6,
                "dur": event["dur"] * 1e6,
                "pid": event["pid"],
                "tid": event["tid"],
                "cat": event["name"].partition(".")[0],
                "args": args,
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# --------------------------------------------------------------------- #
# spans
# --------------------------------------------------------------------- #
class _NullSpan:
    """Shared no-op context manager: the disabled-path span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = (
        "name",
        "attrs",
        "sink",
        "trace_id",
        "span_id",
        "parent_id",
        "_token",
        "_wall",
        "_t0",
    )

    def __enter__(self) -> "_Span":
        parent = _CURRENT.get()
        if parent is None:
            self.trace_id = _new_trace_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = parent
        self.span_id = _new_span_id()
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self._wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        _CURRENT.reset(self._token)
        self.sink.append(
            {
                "name": self.name,
                "ts": self._wall,
                "dur": duration,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "args": self.attrs,
            }
        )
        return False


def _sink() -> "list | None":
    buffer = _BUFFER.get()
    if buffer is not None:
        return buffer
    collector = _COLLECTOR
    return collector.events if collector is not None else None


def tracing_active() -> bool:
    """Whether a span opened now would actually be recorded."""
    return _BUFFER.get() is not None or _COLLECTOR is not None


def span(name: str, **attrs):
    """A context manager timing one region (no-op when nobody collects)."""
    sink = _sink()
    if sink is None:
        return _NULL_SPAN
    record = _Span()
    record.name = name
    record.attrs = attrs
    record.sink = sink
    return record


def record_span(name: str, started_wall: float, duration: float, **attrs) -> None:
    """Append one already-finished **leaf** span under the innermost open
    span — the hot-loop form: the caller times itself with two
    ``perf_counter`` reads and only touches the trace machinery afterwards,
    so nothing context-managed sits inside a kernel."""
    sink = _sink()
    if sink is None:
        return
    current = _CURRENT.get()
    if current is None:
        trace_id, parent = _new_trace_id(), None
    else:
        trace_id, parent = current
    sink.append(
        {
            "name": name,
            "ts": started_wall,
            "dur": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "trace_id": trace_id,
            "span_id": _new_span_id(),
            "parent_id": parent,
            "args": attrs,
        }
    )


# --------------------------------------------------------------------- #
# collection sessions
# --------------------------------------------------------------------- #
def start_collecting() -> TraceCollector:
    """Install (and return) a fresh process-global collector."""
    global _COLLECTOR
    with _COLLECTOR_LOCK:
        _COLLECTOR = TraceCollector()
        return _COLLECTOR


def stop_collecting() -> "TraceCollector | None":
    """Remove and return the active collector (``None`` when absent)."""
    global _COLLECTOR
    with _COLLECTOR_LOCK:
        collector, _COLLECTOR = _COLLECTOR, None
        return collector


@contextmanager
def trace(path=None):
    """Collect every span opened inside the block; optionally export the
    Chrome JSON to ``path`` on exit (the CLI's ``--trace out.json``)."""
    collector = start_collecting()
    try:
        yield collector
    finally:
        with _COLLECTOR_LOCK:
            global _COLLECTOR
            if _COLLECTOR is collector:
                _COLLECTOR = None
        if path is not None:
            collector.export(path)


# --------------------------------------------------------------------- #
# cross-process / cross-host propagation
# --------------------------------------------------------------------- #
def current_payload() -> "tuple | None":
    """The picklable context to stamp onto a cross-process task.

    ``None`` when there is nothing to carry (no collection, metrics off) —
    the cue for dispatchers to skip the whole harvest round-trip.  The
    tuple is ``(want_trace, trace_id, parent_span_id, want_metrics, pid)``
    — the origin pid lets :func:`remote_task` recognise a task that never
    actually left the process (a degraded pool) and stand down, so nothing
    is buffered or merged twice.
    """
    want_trace = tracing_active()
    want_metrics = _registry.metrics_enabled()
    if not want_trace and not want_metrics:
        return None
    current = _CURRENT.get() if want_trace else None
    trace_id = parent = None
    if current is not None:
        trace_id, parent = current
    return (want_trace, trace_id, parent, want_metrics, os.getpid())


def format_trace_header(payload: "tuple | None") -> "str | None":
    """``trace_id/span_id`` for :data:`TRACE_HEADER` — ``None`` when the
    payload carries no open trace position."""
    if payload is None or not payload[0] or payload[1] is None:
        return None
    return f"{payload[1]}/{payload[2]}"


def parse_trace_header(value: "str | None") -> "tuple | None":
    """The inbound half: an ``X-Repro-Trace`` header value to a payload."""
    if not value:
        return None
    trace_id, sep, parent = str(value).strip().partition("/")
    if not sep or not trace_id or not parent:
        return None
    # pid None: the far side of an HTTP hop is never "the same process".
    return (True, trace_id, parent, _registry.metrics_enabled(), None)


class _RemoteTask:
    """Adopted remote context: buffers spans, captures the metric delta.

    ``capture_metrics=False`` is for same-process adoption (the service's
    thread workers): their recordings already land in the live registry,
    so shipping a delta back would double-count.  ``skip_same_process=True``
    (pool dispatch sites) makes the whole adoption a no-op when the task
    never left its origin process — a degraded pool runs tasks inline,
    where the ambient context already records everything once.
    """

    __slots__ = (
        "_payload",
        "_capture_metrics",
        "_skip_same_process",
        "_buffer",
        "_before",
        "_tokens",
        "_blob",
    )

    def __init__(
        self,
        payload: "tuple | None",
        capture_metrics: bool = True,
        skip_same_process: bool = False,
    ) -> None:
        self._payload = payload
        self._capture_metrics = capture_metrics
        self._skip_same_process = skip_same_process
        self._buffer = None
        self._before = None
        self._tokens = []
        self._blob = None

    def __enter__(self) -> "_RemoteTask":
        if self._payload is None:
            return self
        want_trace, trace_id, parent, want_metrics = self._payload[:4]
        origin_pid = self._payload[4] if len(self._payload) > 4 else None
        if (
            self._skip_same_process
            and origin_pid is not None
            and origin_pid == os.getpid()
        ):
            return self
        if want_trace:
            self._buffer = []
            self._tokens.append((_BUFFER, _BUFFER.set(self._buffer)))
            if trace_id is not None:
                self._tokens.append((_CURRENT, _CURRENT.set((trace_id, parent))))
        if want_metrics and self._capture_metrics:
            self._before = _registry.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        for var, token in reversed(self._tokens):
            var.reset(token)
        blob = {}
        if self._buffer:
            blob["events"] = self._buffer
        if self._before is not None:
            delta = _registry.snapshot_delta(_registry.snapshot(), self._before)
            delta.pop("since", None)
            blob["metrics"] = delta
        self._blob = blob or None
        return False

    def harvest(self) -> "dict | None":
        """The ``{"events": ..., "metrics": ...}`` blob to ship back with
        the task result (``None`` when there is nothing to ship)."""
        return self._blob


def remote_task(
    payload: "tuple | None",
    capture_metrics: bool = True,
    skip_same_process: bool = False,
) -> _RemoteTask:
    """Adopt a stamped context around one unit of remote work."""
    return _RemoteTask(payload, capture_metrics, skip_same_process)


def absorb_events(events: "Iterable[Mapping] | None") -> None:
    """Route harvested span events into whatever is collecting here."""
    if not events:
        return
    sink = _sink()
    if sink is not None:
        sink.extend(dict(event) for event in events)


def absorb(blob: "Mapping | None") -> None:
    """Fold one worker's harvest back in: spans to the active sink,
    metric deltas into the live registry."""
    if not blob:
        return
    absorb_events(blob.get("events"))
    _registry.merge_snapshot(blob.get("metrics"))
