"""The process-wide metrics registry: counters, gauges, log-bucket histograms.

This generalises the latency histogram PR 8 grew inside ``server.py`` into
a layer every subsystem records into under one namespace::

    from repro import obs
    _METRICS = obs.scope("engine")
    _BLOCKS = _METRICS.counter("blocks")          # "engine.blocks"
    _SWEEP = _METRICS.histogram("sweep_seconds")  # "engine.sweep_seconds"

Design constraints, in priority order:

* **cheap when disabled** — every recording call (``inc`` / ``set`` /
  ``observe``) starts with one shared-flag check and returns without
  taking a lock or allocating anything, so instrumentation woven into the
  kernels costs nothing measurable when the registry is off (the
  ``BENCH_obs_overhead`` gate holds the disabled path under 2% of a 16k
  STOMP);
* **snapshot / delta semantics** — :meth:`MetricsRegistry.snapshot`
  captures the whole registry as one plain dict; :func:`snapshot_delta`
  subtracts an earlier snapshot, which is what gives ``GET /metrics`` its
  ``?since=`` windowed form (the PR 8 follow-up: counters used to be
  process-lifetime only);
* **associative merge** — :func:`merge_snapshots` folds worker-process
  snapshots into the parent's; counters and histograms add, gauges are
  last-writer-wins, and the operation is associative so a tree of workers
  can merge in any grouping and agree on the totals.

Metric identity is the dotted name; the segment before the first dot is
the metric's **family** (``engine``, ``kernel``, ``cache``, ``store``,
``index``, ``service``, ``valmod``), which is how ``/metrics`` groups the
document.  One module-level default registry serves the process; code
that needs isolation (tests, merges) builds its own
:class:`MetricsRegistry`.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Dict, List, Mapping

from repro.obs import clock

__all__ = [
    "LATENCY_BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Scope",
    "get_registry",
    "counter",
    "gauge",
    "histogram",
    "scope",
    "metrics_enabled",
    "set_metrics_enabled",
    "snapshot",
    "merge_snapshot",
    "snapshot_delta",
    "merge_snapshots",
    "group_families",
]

#: Histogram bucket upper bounds (seconds): 25 log-spaced buckets, four per
#: decade, 100 microseconds to 100 seconds — exactly the bounds the service
#: latency histograms shipped with in PR 8, now shared by every family so
#: ``/metrics`` keeps serving one ``bounds`` array.
LATENCY_BUCKET_BOUNDS = tuple(10.0 ** (-4 + i / 4) for i in range(25))


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_on", "_lock", "_value")

    def __init__(self, name: str, on: List[bool], lock: threading.Lock) -> None:
        self.name = name
        self._on = on
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (no-op, no allocation, when the registry is off)."""
        if not self._on[0]:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (last write wins, also across merges)."""

    __slots__ = ("name", "_on", "_lock", "_value")

    def __init__(self, name: str, on: List[bool], lock: threading.Lock) -> None:
        self.name = name
        self._on = on
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the current value (no-op when the registry is off)."""
        if not self._on[0]:
            return
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Log-bucket histogram (count, sum, per-bucket counts).

    The bucket layout is ``len(bounds) + 1`` counts: observations larger
    than the last bound land in the overflow bucket, mirroring the PR 8
    service histogram bit for bit.
    """

    __slots__ = ("name", "bounds", "_on", "_lock", "_counts", "_count", "_sum")

    def __init__(
        self,
        name: str,
        on: List[bool],
        lock: threading.Lock,
        bounds: tuple = LATENCY_BUCKET_BOUNDS,
    ) -> None:
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self._on = on
        self._lock = lock
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (no-op when the registry is off)."""
        if not self._on[0]:
            return
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding the
        q-th observation (``inf`` for the overflow bucket, 0.0 when empty)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            seen = 0
            for index, bucket in enumerate(self._counts):
                seen += bucket
                if seen >= rank and bucket:
                    if index >= len(self.bounds):
                        return float("inf")
                    return self.bounds[index]
        return float("inf")

    def as_dict(self) -> dict:
        """JSON-ready ``{"count", "sum", "counts"}`` (the PR 8 wire shape)."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "counts": list(self._counts),
            }


class Scope:
    """A named prefix over a registry: ``scope("engine").counter("blocks")``
    registers ``engine.blocks``."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(self, name: str, bounds: tuple = LATENCY_BUCKET_BOUNDS) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", bounds=bounds)


class MetricsRegistry:
    """One process's metric namespace.

    ``enabled`` defaults to the ``REPRO_OBS`` environment variable (on
    unless set to ``0`` / ``off`` / ``false``) so worker processes spawned
    by a pool inherit the parent's choice through the environment.
    """

    def __init__(self, enabled: "bool | None" = None) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_OBS", "1").strip().lower() not in (
                "0",
                "off",
                "false",
                "no",
            )
        self._lock = threading.Lock()
        # The enabled flag lives in a one-element list shared with every
        # metric object: the recording fast path reads one cell, no
        # attribute chain back through the registry.
        self._on: List[bool] = [bool(enabled)]
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name, self._on, self._lock)
            return metric

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name, self._on, self._lock)
            return metric

    def histogram(self, name: str, bounds: tuple = LATENCY_BUCKET_BOUNDS) -> Histogram:
        """Get or create the named histogram."""
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(
                    name, self._on, self._lock, bounds
                )
            return metric

    def scope(self, prefix: str) -> Scope:
        """A dotted-prefix view (``scope("engine").counter("blocks")``)."""
        return Scope(self, prefix)

    # ------------------------------------------------------------------ #
    # enable / disable
    # ------------------------------------------------------------------ #
    @property
    def enabled(self) -> bool:
        return self._on[0]

    def set_enabled(self, flag: bool) -> None:
        self._on[0] = bool(flag)

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """The whole registry as one plain (picklable, JSON-ready) dict."""
        with self._lock:
            return {
                "at": clock.now(),
                "counters": {
                    name: metric._value for name, metric in self._counters.items()
                },
                "gauges": {
                    name: metric._value for name, metric in self._gauges.items()
                },
                "histograms": {
                    name: {
                        "bounds": list(metric.bounds),
                        "count": metric._count,
                        "sum": metric._sum,
                        "counts": list(metric._counts),
                    }
                    for name, metric in self._histograms.items()
                },
            }

    def merge_snapshot(self, delta: "Mapping | None") -> None:
        """Fold a snapshot (typically a worker's delta) into the live
        registry: counters and histograms add, gauges overwrite."""
        if not delta:
            return
        for name, amount in delta.get("counters", {}).items():
            if amount:
                metric = self.counter(name)
                with self._lock:
                    metric._value += int(amount)
        for name, value in delta.get("gauges", {}).items():
            metric = self.gauge(name)
            with self._lock:
                metric._value = value
        for name, payload in delta.get("histograms", {}).items():
            if not payload.get("count"):
                continue
            metric = self.histogram(name, bounds=tuple(payload["bounds"]))
            with self._lock:
                if len(payload["counts"]) == len(metric._counts):
                    for index, bucket in enumerate(payload["counts"]):
                        metric._counts[index] += bucket
                    metric._count += int(payload["count"])
                    metric._sum += float(payload["sum"])

    def reset(self) -> None:
        """Zero every metric (tests; production windows use deltas instead)."""
        with self._lock:
            for metric in self._counters.values():
                metric._value = 0
            for metric in self._gauges.values():
                metric._value = 0.0
            for metric in self._histograms.values():
                metric._counts = [0] * len(metric._counts)
                metric._count = 0
                metric._sum = 0.0


def snapshot_delta(current: Mapping, earlier: "Mapping | None") -> dict:
    """``current - earlier`` for counters/histograms; gauges keep their
    current value but only appear when they *changed* inside the window.

    The changed-only gauge rule matters for worker harvests: a pool
    worker's delta would otherwise carry every gauge its registry merely
    *declared* (at import time, value 0.0), and the last-wins gauge merge
    in :func:`merge_snapshots` / :meth:`MetricsRegistry.merge_snapshot`
    would clobber a value the parent actually set (e.g. the service's
    ``prewarm_seconds``, which only the parent ever writes).

    ``earlier=None`` returns ``current`` unchanged (the full window).  A
    metric absent from ``earlier`` contributes its full current value.
    """
    if not earlier:
        return dict(current)
    earlier_counters = earlier.get("counters", {})
    earlier_gauges = earlier.get("gauges", {})
    earlier_histograms = earlier.get("histograms", {})
    delta = {
        "at": current.get("at"),
        "since": earlier.get("at"),
        "counters": {
            name: value - earlier_counters.get(name, 0)
            for name, value in current.get("counters", {}).items()
        },
        "gauges": {
            name: value
            for name, value in current.get("gauges", {}).items()
            if name not in earlier_gauges or earlier_gauges[name] != value
        },
        "histograms": {},
    }
    for name, payload in current.get("histograms", {}).items():
        before = earlier_histograms.get(name)
        if before is None or before.get("bounds") != payload.get("bounds"):
            delta["histograms"][name] = dict(payload)
            continue
        delta["histograms"][name] = {
            "bounds": list(payload["bounds"]),
            "count": payload["count"] - before["count"],
            "sum": payload["sum"] - before["sum"],
            "counts": [
                bucket - prior
                for bucket, prior in zip(payload["counts"], before["counts"])
            ],
        }
    return delta


def merge_snapshots(first: "Mapping | None", second: "Mapping | None") -> dict:
    """Combine two snapshots: counters/histograms add, gauges last-wins.

    Associative by construction (addition is, and gauge overwrite composes
    left to right), so worker snapshots can fold into the parent in any
    grouping — the property the cross-process merge tests pin.
    """
    if not first:
        return dict(second or {"counters": {}, "gauges": {}, "histograms": {}})
    if not second:
        return dict(first)
    merged = {
        "at": max(first.get("at") or 0.0, second.get("at") or 0.0),
        "counters": dict(first.get("counters", {})),
        "gauges": dict(first.get("gauges", {})),
        "histograms": {
            name: dict(payload)
            for name, payload in first.get("histograms", {}).items()
        },
    }
    for name, value in second.get("counters", {}).items():
        merged["counters"][name] = merged["counters"].get(name, 0) + value
    merged["gauges"].update(second.get("gauges", {}))
    for name, payload in second.get("histograms", {}).items():
        existing = merged["histograms"].get(name)
        if existing is None or existing.get("bounds") != payload.get("bounds"):
            merged["histograms"][name] = dict(payload)
            continue
        merged["histograms"][name] = {
            "bounds": list(payload["bounds"]),
            "count": existing["count"] + payload["count"],
            "sum": existing["sum"] + payload["sum"],
            "counts": [
                mine + theirs
                for mine, theirs in zip(existing["counts"], payload["counts"])
            ],
        }
    return merged


def group_families(snapshot: "Mapping | None") -> dict:
    """A snapshot regrouped by metric family.

    The family is the name segment before the first dot (``engine``,
    ``cache``, ``store``, ``valmod``, ...), so a consumer — ``GET
    /metrics``, the ``metrics`` CLI command — can pick one layer without
    knowing every metric name in advance.  Each family maps to
    ``{"counters": ..., "gauges": ..., "histograms": ...}`` keyed by the
    remainder of the metric name.
    """
    families: dict = {}
    if not snapshot:
        return families
    for section in ("counters", "gauges", "histograms"):
        for name, value in (snapshot.get(section) or {}).items():
            family, _, rest = name.partition(".")
            slot = families.setdefault(
                family, {"counters": {}, "gauges": {}, "histograms": {}}
            )
            slot[section][rest or name] = value
    return families


# --------------------------------------------------------------------- #
# the process-default registry
# --------------------------------------------------------------------- #
_DEFAULT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-default registry every module-level scope records into."""
    return _DEFAULT


def counter(name: str) -> Counter:
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    return _DEFAULT.gauge(name)


def histogram(name: str, bounds: tuple = LATENCY_BUCKET_BOUNDS) -> Histogram:
    return _DEFAULT.histogram(name, bounds=bounds)


def scope(prefix: str) -> Scope:
    return _DEFAULT.scope(prefix)


def metrics_enabled() -> bool:
    return _DEFAULT.enabled


def set_metrics_enabled(flag: bool) -> None:
    _DEFAULT.set_enabled(flag)


def snapshot() -> dict:
    return _DEFAULT.snapshot()


def merge_snapshot(delta: "Mapping | None") -> None:
    _DEFAULT.merge_snapshot(delta)
