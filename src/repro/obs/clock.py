"""The observability clock: one wall-clock source the whole stack shares.

Every timestamp the observability layer emits — metric snapshot times,
trace span start times, the index catalog's ``ingested_at`` column — goes
through :func:`now` instead of calling :func:`time.time` directly.  That
indirection exists for exactly one reason: tests (and reproducible
benchmarks) can **freeze** the clock (:func:`freeze` / :func:`frozen`) and
assert on exact timestamps instead of sleeping around tolerances.

Durations are a different quantity than instants: they come from
:func:`perf` (``time.perf_counter``), which is monotonic and deliberately
*not* freezable — a frozen duration would make every span and histogram
observation zero-width, which is never what a test wants.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["now", "perf", "freeze", "unfreeze", "frozen"]

_FROZEN: "float | None" = None


def now() -> float:
    """Seconds since the epoch — or the frozen instant, when frozen."""
    return time.time() if _FROZEN is None else _FROZEN


def perf() -> float:
    """Monotonic high-resolution timer for durations (never frozen)."""
    return time.perf_counter()


def freeze(at: float) -> None:
    """Pin :func:`now` to ``at`` until :func:`unfreeze` (tests only)."""
    global _FROZEN
    _FROZEN = float(at)


def unfreeze() -> None:
    """Let :func:`now` follow the real clock again."""
    global _FROZEN
    _FROZEN = None


@contextmanager
def frozen(at: float):
    """Context-managed :func:`freeze` that restores the previous state."""
    global _FROZEN
    previous = _FROZEN
    _FROZEN = float(at)
    try:
        yield
    finally:
        _FROZEN = previous
